// Chaos soak harness (PR 4): live chain + reorgs + fault injection + bundle
// traffic, all at once, checked against the robustness invariants.
//
// One soak run drives a seeded single-producer interleaving of
//   engine.submit(bundle)  and  node.tick(block_txs)
// against a NodeSimulator on a reorg schedule, with a PR 2 FaultPlan
// corrupting the ORAM backend underneath, then settles everything with a
// final resync() + drain(). The run must satisfy, with zero violations:
//
//   I1  exactly one outcome per submitted bundle id (no drops, no dupes);
//   I2  no outcome stands against an orphaned root: every nonzero
//       state_root is canonical at drain time, and a zero state_root only
//       appears on refusals that never executed (kUnavailable / kStale);
//   I3  the ORAM store is never ahead of its commit: max page epoch <=
//       committed store epoch;
//   I4  replay determinism: the identical seeded interleaving at 1 worker
//       and at 8 workers resolves every bundle bit-identically;
//   I5  chaos coverage: the schedule actually reorged (otherwise the soak
//       proved nothing) whenever reorgs were requested.
//
// A baseline phase (no ticks, no faults) additionally holds the engine
// bit-identical to execute_serial(), pinning the PR 1 contract.
//
// Usage: bench_soak [--bundles N] [--blocks N] [--reorg-rate R]
//                   [--reorg-depth D] [--fault-rate R] [--seed S] [--out FILE]
// Writes BENCH_soak.json. Exit 1 on any invariant violation.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "faults/fault_plan.hpp"
#include "service/engine.hpp"

using namespace hardtape;

namespace {

struct SoakOptions {
  size_t bundles = 200;
  size_t blocks = 50;
  double reorg_rate = 0.25;
  int reorg_depth = 3;  // acceptance cap: <= 4
  double fault_rate = 0.01;
  uint64_t seed = 0x50a7;
  std::string out_path = "BENCH_soak.json";
};

struct SoakRun {
  std::vector<service::SessionOutcome> outcomes;
  service::EngineMetrics metrics;
  uint64_t reorgs = 0;
  uint64_t head_number = 0;
  uint64_t store_epoch = 0;
  uint64_t max_page_epoch = 0;
  std::vector<std::string> violations;
};

service::EngineConfig soak_config(int workers, faults::FaultPlan* plan) {
  service::EngineConfig config;
  config.security = service::SecurityConfig::full();
  config.num_hevms = workers;
  config.queue_depth = 16;
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 8192,
                                 .max_stash_blocks = 512};
  config.seal_mode = oram::SealMode::kChaChaHmac;
  config.perform_channel_crypto = false;
  config.fault_plan = plan;
  // The breaker counts CONSECUTIVE faulted attempts, which depends on how
  // workers interleave completions — disable it so the 1-vs-8 comparison
  // (I4) exercises only the deterministic paths. Faults still resolve
  // per-bundle via requeue + terminal statuses.
  config.breaker_threshold = 0;
  config.max_head_lag = 2;
  return config;
}

// One full soak pass. Everything here is a function of (opts, workers-free
// inputs): the node, workload, schedule, fault plan, and the interleaving
// are rebuilt from the same seeds, so two calls differ only in pool width.
SoakRun run_soak(const SoakOptions& opts, int workers) {
  node::NodeSimulator node;
  workload::WorkloadGenerator gen(workload::GeneratorConfig{
      .seed = opts.seed,
      .user_accounts = 16,
      .erc20_contracts = 8,
      .dex_pairs = 4,
      .routers = 4,
      .txs_per_block = 8,
  });
  gen.deploy(node.world());
  node.produce_block({});
  node.set_schedule({.seed = opts.seed ^ 0xb10c,
                     .reorg_rate = opts.reorg_rate,
                     .max_reorg_depth = opts.reorg_depth});

  // Source both bundle traffic and block traffic from the generator's
  // evaluation set — deterministic, and block txs mutate accounts the
  // bundles read, so reorgs genuinely change outcomes.
  const size_t txs_needed = opts.bundles + opts.blocks;
  const auto blocks = gen.generate_evaluation_set(txs_needed / 8 + 2);
  std::vector<evm::Transaction> txs;
  for (const auto& block : blocks) txs.insert(txs.end(), block.begin(), block.end());

  faults::FaultPlanConfig fault_config;
  fault_config.seed = opts.seed ^ 0xfa17;
  fault_config.fault_rate = opts.fault_rate;
  fault_config.weight_stale_proof = 0;  // keep sync/delta passes clean
  faults::FaultPlan plan(fault_config);

  service::PreExecutionEngine engine(
      node, soak_config(workers, opts.fault_rate > 0 ? &plan : nullptr));
  SoakRun run;
  if (engine.synchronize() != Status::kOk) {
    run.violations.push_back("initial synchronize() failed");
    return run;
  }
  engine.start();

  const size_t tick_every = std::max<size_t>(1, opts.bundles / std::max<size_t>(1, opts.blocks));
  size_t ticks_done = 0;
  for (size_t i = 0; i < opts.bundles; ++i) {
    engine.submit({txs[i % txs.size()]});
    if ((i + 1) % tick_every == 0 && ticks_done < opts.blocks) {
      node.tick({txs[(opts.bundles + ticks_done) % txs.size()]});
      ++ticks_done;
    }
  }
  while (ticks_done < opts.blocks) {  // late blocks orphan settled outcomes
    node.tick({txs[(opts.bundles + ticks_done) % txs.size()]});
    ++ticks_done;
  }
  if (engine.resync() != Status::kOk) {
    run.violations.push_back("final resync() failed");
  }
  run.outcomes = engine.drain();
  run.metrics = engine.snapshot();
  run.reorgs = node.reorgs();
  run.head_number = node.head_number();
  run.store_epoch = engine.epoch_registry().store_epoch();
  run.max_page_epoch = engine.epoch_registry().max_page_epoch();

  // I1: one outcome per bundle id.
  if (run.outcomes.size() != opts.bundles) {
    run.violations.push_back("I1: " + std::to_string(run.outcomes.size()) +
                             " outcomes for " + std::to_string(opts.bundles) +
                             " bundles");
  }
  std::set<uint64_t> ids;
  for (const auto& o : run.outcomes) {
    if (!ids.insert(o.bundle_id).second) {
      run.violations.push_back("I1: duplicate outcome for bundle " +
                               std::to_string(o.bundle_id));
    }
  }
  // I2: no outcome against an orphaned root.
  for (const auto& o : run.outcomes) {
    if (o.state_root == H256{}) {
      if (o.status != Status::kUnavailable && o.status != Status::kStale) {
        run.violations.push_back("I2: bundle " + std::to_string(o.bundle_id) +
                                 " executed against no root (status " +
                                 std::string(to_string(o.status)) + ")");
      }
    } else if (!node.is_canonical_root(o.state_root)) {
      run.violations.push_back("I2: bundle " + std::to_string(o.bundle_id) +
                               " outcome stands against orphaned root " +
                               o.state_root.hex());
    }
  }
  // I3: store never ahead of its commit.
  if (run.max_page_epoch > run.store_epoch) {
    run.violations.push_back("I3: page epoch " + std::to_string(run.max_page_epoch) +
                             " > store epoch " + std::to_string(run.store_epoch));
  }
  // I5: the chaos actually happened.
  if (opts.reorg_rate > 0 && opts.blocks >= 10 && run.reorgs == 0) {
    run.violations.push_back("I5: schedule produced no reorgs");
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions opts;
  for (int i = 1; i < argc - 1; ++i) {
    if (!std::strcmp(argv[i], "--bundles")) opts.bundles = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--blocks")) opts.blocks = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--reorg-rate")) opts.reorg_rate = std::strtod(argv[i + 1], nullptr);
    if (!std::strcmp(argv[i], "--reorg-depth")) opts.reorg_depth = int(std::strtol(argv[i + 1], nullptr, 10));
    if (!std::strcmp(argv[i], "--fault-rate")) opts.fault_rate = std::strtod(argv[i + 1], nullptr);
    if (!std::strcmp(argv[i], "--seed")) opts.seed = std::strtoull(argv[i + 1], nullptr, 0);
    if (!std::strcmp(argv[i], "--out")) opts.out_path = argv[i + 1];
  }

  // --- baseline: static chain, no faults — engine == execute_serial ---
  bool baseline_ok = true;
  {
    SoakOptions quiet = opts;
    quiet.reorg_rate = 0;
    quiet.fault_rate = 0;
    node::NodeSimulator node;
    workload::WorkloadGenerator gen(workload::GeneratorConfig{
        .seed = quiet.seed, .user_accounts = 16, .erc20_contracts = 8,
        .dex_pairs = 4, .routers = 4, .txs_per_block = 8});
    gen.deploy(node.world());
    node.produce_block({});
    const auto blocks = gen.generate_evaluation_set(quiet.bundles / 8 + 2);
    std::vector<evm::Transaction> txs;
    for (const auto& block : blocks) txs.insert(txs.end(), block.begin(), block.end());
    std::vector<std::vector<evm::Transaction>> bundles;
    for (size_t i = 0; i < quiet.bundles; ++i) bundles.push_back({txs[i % txs.size()]});

    service::PreExecutionEngine serial(node, soak_config(1, nullptr));
    if (serial.synchronize() != Status::kOk) return 1;
    const auto reference = serial.execute_serial(bundles);

    service::PreExecutionEngine engine(node, soak_config(4, nullptr));
    if (engine.synchronize() != Status::kOk) return 1;
    engine.start();
    for (const auto& bundle : bundles) engine.submit(bundle);
    const auto outcomes = engine.drain();
    baseline_ok = outcomes.size() == reference.size();
    for (size_t i = 0; baseline_ok && i < outcomes.size(); ++i) {
      baseline_ok = service::outcomes_bit_identical(outcomes[i], reference[i]);
    }
  }

  // --- soak: same seeded chaos at 1 and 8 workers ---
  const auto one = run_soak(opts, 1);
  const auto eight = run_soak(opts, 8);

  bool identical = one.outcomes.size() == eight.outcomes.size();
  size_t first_divergence = SIZE_MAX;
  for (size_t i = 0; identical && i < one.outcomes.size(); ++i) {
    if (!service::outcomes_bit_identical(one.outcomes[i], eight.outcomes[i])) {
      identical = false;
      first_divergence = i;
    }
  }

  auto count_status = [](const SoakRun& run, Status s) {
    size_t n = 0;
    for (const auto& o : run.outcomes) n += o.status == s;
    return n;
  };

  bench::Table table({"workers", "outcomes", "ok", "stale", "reorgs", "resyncs",
                      "resims", "store epoch", "faults", "violations"});
  for (const auto* run : {&one, &eight}) {
    table.add_row({run == &one ? "1" : "8", std::to_string(run->outcomes.size()),
                   std::to_string(count_status(*run, Status::kOk)),
                   std::to_string(run->metrics.bundles_stale),
                   std::to_string(run->reorgs), std::to_string(run->metrics.resyncs),
                   std::to_string(run->metrics.bundle_resims),
                   std::to_string(run->store_epoch),
                   std::to_string(run->metrics.faults_injected),
                   std::to_string(run->violations.size())});
  }
  table.print("Chaos soak (blocks + reorgs + faults + bundle traffic)");

  for (const auto* run : {&one, &eight}) {
    for (const auto& v : run->violations) {
      std::fprintf(stderr, "violation (%s workers): %s\n",
                   run == &one ? "1" : "8", v.c_str());
    }
  }
  if (!identical) {
    std::fprintf(stderr, "violation (I4): 1-worker and 8-worker outcomes diverge%s\n",
                 first_divergence == SIZE_MAX
                     ? " in count"
                     : (" at bundle index " + std::to_string(first_divergence)).c_str());
  }
  if (!baseline_ok) {
    std::fprintf(stderr, "violation (baseline): static-chain engine diverged "
                         "from execute_serial\n");
  }

  const bool ok = baseline_ok && identical && one.violations.empty() &&
                  eight.violations.empty();

  std::ofstream json(opts.out_path);
  json << "{\n  \"bench\": \"soak\",\n  \"bundles\": " << opts.bundles
       << ",\n  \"blocks\": " << opts.blocks
       << ",\n  \"reorg_rate\": " << opts.reorg_rate
       << ",\n  \"reorg_depth\": " << opts.reorg_depth
       << ",\n  \"fault_rate\": " << opts.fault_rate
       << ",\n  \"seed\": " << opts.seed
       << ",\n  \"baseline_bit_identical_to_serial\": " << (baseline_ok ? "true" : "false")
       << ",\n  \"identical_1v8\": " << (identical ? "true" : "false")
       << ",\n  \"runs\": [\n";
  bool first = true;
  for (const auto* run : {&one, &eight}) {
    const auto& m = run->metrics;
    json << (first ? "" : ",\n") << "    {\"workers\": " << (run == &one ? 1 : 8)
         << ", \"outcomes\": " << run->outcomes.size()
         << ", \"ok\": " << count_status(*run, Status::kOk)
         << ", \"stale\": " << m.bundles_stale
         << ", \"recovered\": " << m.bundles_recovered
         << ", \"aborted\": " << m.bundles_aborted
         << ", \"reorgs\": " << run->reorgs
         << ", \"head_number\": " << run->head_number
         << ", \"resyncs\": " << m.resyncs
         << ", \"bundle_resims\": " << m.bundle_resims
         << ", \"store_epoch\": " << run->store_epoch
         << ", \"max_page_epoch\": " << run->max_page_epoch
         << ", \"faults_injected\": " << m.faults_injected
         << ", \"violations\": " << run->violations.size() << "}";
    first = false;
  }
  json << "\n  ],\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", opts.out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", opts.out_path.c_str());
  std::printf("soak verdict: %s\n", ok ? "all invariants hold" : "VIOLATIONS");
  return ok ? 0 : 1;
}
