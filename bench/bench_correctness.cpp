// Reproduces Section VI-B: pre-execution correctness. The HEVM's step-level
// traces (PC, opcode, gas, depth, stack size — the debug_traceTransaction
// fields) are compared against the ground-truth software node ("Geth role")
// for the whole evaluation set. Rollup transactions may legitimately abort
// with the Memory Overflow Error; those are reported separately, as in the
// paper ("support for these contracts is left as future work").
#include "bench_common.hpp"
#include "hevm/baseline.hpp"
#include "hevm/hevm_core.hpp"

using namespace hardtape;

int main() {
  bench::EvaluationSetup setup(/*block_count=*/4, /*txs_per_block=*/50);
  // Append giant rollup transactions whose single frame exceeds half of the
  // 1 MB layer-2 memory — the paper's Memory Overflow case (§VI-B).
  {
    std::vector<evm::Transaction> rollup_block;
    for (int i = 0; i < 3; ++i) {
      evm::Transaction tx;
      tx.from = setup.generator.users()[0];
      tx.to = setup.generator.rollup();
      tx.data = workload::rollup_submit(u256{1} << 32, 8, /*extra_payload=*/600 * 1024);
      tx.gas_limit = 25'000'000;
      rollup_block.push_back(tx);
    }
    setup.blocks.push_back(rollup_block);
  }

  sim::SimClock clock;
  hevm::HevmCore::Config core_config;
  core_config.record_steps = true;
  hevm::HevmCore core(0, clock, core_config);
  crypto::AesKey128 session_key{};

  // Ground truth role shares state but runs independently.
  sim::SimClock geth_clock;
  hevm::GethRole geth(setup.node.world(), setup.node.block_context(), geth_clock,
                      /*record_steps=*/true);

  uint64_t compared = 0, identical = 0, mismatched = 0, overflows = 0;
  uint64_t steps_compared = 0;

  for (const auto& block : setup.blocks) {
    for (const auto& tx : block) {
      // Each tx as its own bundle against pristine state (both sides reset).
      core.assign(setup.node.world(), setup.node.block_context(), session_key, compared);
      const auto hevm_report = core.execute_bundle({tx});
      core.release();
      hevm::GethRole fresh_geth(setup.node.world(), setup.node.block_context(),
                                geth_clock, true);
      const auto geth_result = fresh_geth.execute(tx);

      ++compared;
      const auto& hevm_tx = hevm_report.transactions[0];
      if (hevm_tx.status == evm::VmStatus::kMemoryOverflow) {
        ++overflows;  // rollup exceeding the layer-2 frame limit (§VI-B)
        continue;
      }
      bool equal = hevm_tx.steps.size() == geth_result.steps.size() &&
                   hevm_tx.gas_used == geth_result.tx.gas_used &&
                   hevm_tx.status == geth_result.tx.status &&
                   hevm_tx.return_data == geth_result.tx.output;
      if (equal) {
        for (size_t i = 0; i < hevm_tx.steps.size(); ++i) {
          if (!(hevm_tx.steps[i] == geth_result.steps[i])) {
            equal = false;
            break;
          }
        }
        steps_compared += hevm_tx.steps.size();
      }
      equal ? ++identical : ++mismatched;
    }
  }

  bench::Table table({"metric", "value"});
  table.add_row({"transactions compared", std::to_string(compared)});
  table.add_row({"trace-identical", std::to_string(identical)});
  table.add_row({"mismatched", std::to_string(mismatched)});
  table.add_row({"Memory Overflow (rollups, excluded)", std::to_string(overflows)});
  table.add_row({"total steps compared", std::to_string(steps_compared)});
  table.print("Section VI-B: HEVM vs ground-truth node traces");

  std::printf("\n%s: all executable transactions produce identical traces.\n",
              mismatched == 0 ? "PASS" : "FAIL");
  return mismatched == 0 ? 0 : 1;
}
