// Obliviousness-audit smoke over the obs tracing layer (threats A5/A7).
//
// Two harnesses, each run faithful and ablated:
//
//  1. Engine / prefetch channel (A7): two workloads of identical public
//     shape — single-tx ERC-20 transfer bundles on one shared token — whose
//     SECRET differs (which accounts transact). Both run through the full
//     PreExecutionEngine with tracing on; the SP projections of the traced
//     query streams must audit indistinguishable (exact type sequence, gap
//     KS, per-trace type-gap z). The ablated view rebuilds the projection
//     from the DEMAND timeline — what the SP would see with the pagewise
//     code prefetcher disabled — and must FAIL the audit (code fetches
//     become timing-predictable: the type-gap z channel).
//
//  2. Pager / swap-padding channel (A5): two secret call-stack shapes
//     (frames of 3 vs 4 pages) driven through CallStackPager with a small
//     layer 2, many sessions each. With noisy padding (max_noise_pages = 8)
//     the observed swap-size distributions must be statistically
//     indistinguishable (KS); with padding ablated (max_noise_pages = 0)
//     the observed counts ARE the secret frame sizes and the audit must
//     FAIL on swap_size_ks.
//
//  3. Sharded-store / shard-routing channel (PR 6): the sharded frontend's
//     adversary view is a (shard, leaf) stream. A skewed workload (a few hot
//     pages taking most accesses) drives a ShardedOramStore directly: with
//     the faithful per-access shard redraw the stream must audit uniform
//     (audit_shard_obliviousness PASS); with pin_shard_assignment the hot
//     pages hammer their fixed shards and the shard_balance_z channel must
//     FAIL. The session streams of the two engine runs from harness 1 are
//     additionally audited per shard — the full system's view, not just the
//     store in isolation, must stay uniform.
//
// Usage: bench_obs [--out FILE] [--artifacts-dir DIR]
// Writes BENCH_obs_audit.json plus artifacts: TRACE_obs_intent_{a,b}.jsonl,
// TRACE_obs_pager.jsonl, METRICS_obs.prom, METRICS_obs.json.
// Exit 1 when a faithful audit FAILS or an ablated audit PASSES (either
// means the leakage regression gate is broken).
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/random.hpp"
#include "memlayer/pager.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"
#include "oram/sharded.hpp"
#include "service/engine.hpp"
#include "workload/contracts.hpp"

using namespace hardtape;

namespace {

service::EngineConfig engine_config(obs::TraceSink* sink) {
  service::EngineConfig config;
  config.security = service::SecurityConfig::full();
  config.num_hevms = 1;  // one worker: ring 0 holds the whole SP timeline in order
  config.queue_depth = 16;
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 8192,
                                 .max_stash_blocks = 512};
  config.seal_mode = oram::SealMode::kChaChaHmac;
  config.perform_channel_crypto = false;
  config.trace = sink;
  return config;
}

// Bundles of fixed public shape: each is [ERC-20 transfer, DEX swap,
// depth-6 router chain] against SHARED contracts, with fixed amounts and
// depths. The secret intent is WHICH accounts transact: `user_offset`
// rotates the participant set. Only users with addresses 1..30 are used so
// every balance slot lands in the token's storage group 0 — the public
// query shape (profile sequence, record counts, call depths) is then
// identical by construction across intents, which is exactly the
// precondition the exact audit channels assume. The mixed profiles matter:
// the deeper calls spread code fetches through the timeline, giving the
// timing channels something real to measure (cf. bench_ablation_oram
// ablation 3, which uses the full evaluation mix).
std::vector<std::vector<evm::Transaction>> make_intent(
    const workload::WorkloadGenerator& gen, size_t user_offset, size_t bundles) {
  const auto& users = gen.users();
  const Address token = gen.tokens().front();
  const Address dex = gen.dexes().front();
  const Address router = gen.routers().front();
  const size_t usable = std::min<size_t>(users.size(), 30);
  auto user = [&](size_t i) { return users[(user_offset + i) % usable]; };
  std::vector<std::vector<evm::Transaction>> out;
  for (size_t i = 0; i < bundles; ++i) {
    auto tx = [&](const Address& from, const Address& to, Bytes data,
                  uint64_t gas = 2'000'000) {
      evm::Transaction t;
      t.from = from;
      t.to = to;
      t.data = std::move(data);
      t.gas_limit = gas;
      t.gas_price = u256{10};
      return t;
    };
    std::vector<evm::Transaction> bundle;
    bundle.push_back(tx(user(3 * i), token, workload::erc20_transfer(user(3 * i + 1), u256{1000})));
    bundle.push_back(tx(user(3 * i + 1), dex, workload::dex_swap(u256{50'000})));
    bundle.push_back(tx(user(3 * i + 2), router,
                        workload::router_route(4, token, user(3 * i), u256{10}),
                        5'000'000));
    out.push_back(std::move(bundle));
  }
  return out;
}

/// The sharded store's adversary view of one engine run: every session-phase
/// walk as (shard, shard-local leaf), plus the public geometry.
struct ShardView {
  std::vector<std::pair<uint32_t, uint64_t>> walks;
  uint32_t shard_count = 0;
  uint64_t leaf_count = 0;
};

bool run_intent(node::NodeSimulator& node,
                const std::vector<std::vector<evm::Transaction>>& bundles,
                obs::TraceSink& sink, std::vector<service::SessionOutcome>& outcomes,
                std::string* prom, std::string* json, ShardView* shards = nullptr) {
  service::PreExecutionEngine engine(node, engine_config(&sink));
  if (engine.synchronize() != Status::kOk) return false;
  // Audit the session-visible stream only: the sync-phase bulk install is a
  // one-time public event, not part of the per-session view.
  engine.oram_store().clear_observations();
  engine.start();
  for (const auto& bundle : bundles) engine.submit(bundle);
  outcomes = engine.drain();
  if (prom != nullptr) *prom = engine.metrics_prometheus();
  if (json != nullptr) *json = engine.metrics_json();
  if (shards != nullptr) {
    shards->walks = engine.oram_store().observed_walks();
    shards->shard_count = static_cast<uint32_t>(engine.oram_store().shard_count());
    shards->leaf_count = engine.oram_store().leaf_count();
  }
  for (const auto& outcome : outcomes) {
    if (outcome.status != Status::kOk) return false;
  }
  return true;
}

// The SP's view with the prefetcher ablated: code queries fire at demand
// time. prefetcher.schedule() is a pure function of the demand timeline, so
// the demand timeline IS the observed stream of a prefetch-disabled build.
obs::SpTrace project_demand(const std::vector<service::SessionOutcome>& outcomes) {
  obs::SpTrace sp;
  for (const auto& outcome : outcomes) {
    sp.session_starts.push_back(sp.queries.size());
    for (const auto& q : outcome.query_stats.demand_timeline) {
      sp.queries.push_back({q.time_ns, static_cast<uint8_t>(q.type)});
    }
  }
  return sp;
}

// Drives one secret call-stack shape through the pager: `sessions` sessions
// of `depth` frames of `frame_pages` pages each, traced into `ring`. The
// small layer 2 (16 pages) forces spills, so the observed swap counts are
// frame_pages + noise — the A5 channel in isolation.
obs::SpTrace pager_trace(size_t frame_pages, size_t max_noise, obs::TraceRing& ring) {
  constexpr size_t kSessions = 32;
  constexpr int kDepth = 12;
  for (uint64_t session = 0; session < kSessions; ++session) {
    memlayer::MemLayerConfig config;
    config.l2_bytes = 16 * 1024;  // 16 pages; frame limit 8
    config.max_noise_pages = max_noise;
    config.rng_seed = memlayer::noise_stream(0x0b5eed, session, /*attempt=*/0);
    config.trace = &ring;
    const crypto::AesKey128 key{};
    memlayer::CallStackPager pager(config, key);
    for (int d = 0; d < kDepth; ++d) {
      if (pager.push_frame(frame_pages) != Status::kOk) return {};
    }
    for (int d = 0; d < kDepth; ++d) pager.pop_frame();
  }
  return obs::SpTrace::project(ring.events());
}

// Harness 3 driver: a skewed workload (4 hot pages take ~60% of accesses)
// against a ShardedOramStore, faithful or pinned. The access pattern is
// IDENTICAL across the two modes (same seed); only the routing policy
// differs — so a verdict flip is attributable to the redraw alone.
obs::AuditReport shard_store_audit(bool pin_shard_assignment) {
  auto config = oram::ShardedOramStore::partition(
      oram::OramConfig{.block_size = 64, .capacity = 4096, .max_stash_blocks = 512},
      /*shard_count=*/8);
  config.pin_shard_assignment = pin_shard_assignment;
  oram::ShardedOramStore store(config, crypto::AesKey128{}, /*rng_seed=*/0x0b5,
                               oram::SealMode::kChaChaHmac);
  Random rng(0x7a1e);
  std::vector<oram::BlockId> ids;
  for (uint64_t i = 0; i < 64; ++i) {
    ids.push_back(crypto::keccak256(u256{i + 1}.to_be_bytes_vec()).to_u256());
    store.write(ids.back(), Bytes(64, static_cast<uint8_t>(i)));
  }
  store.clear_observations();
  for (int i = 0; i < 4096; ++i) {
    const size_t pick = rng.uniform(10) < 6 ? rng.uniform(4) : rng.uniform(64);
    store.read(ids[pick]);
  }
  return obs::audit_shard_obliviousness(store.observed_walks(),
                                        static_cast<uint32_t>(store.shard_count()),
                                        store.leaf_count());
}

void add_rows(bench::Table& table, const std::string& name, const obs::AuditReport& report,
              bool expect_pass) {
  const bool ok = report.pass == expect_pass;
  table.add_row({name, report.pass ? "PASS" : "FAIL", expect_pass ? "PASS" : "FAIL",
                 ok ? "yes" : "NO"});
}

void write_file(const std::string& path, const std::string& content, bool& ok) {
  std::ofstream out(path);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", path.c_str());
    ok = false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_obs_audit.json";
  std::string artifacts_dir = ".";
  for (int i = 1; i < argc - 1; ++i) {
    if (!std::strcmp(argv[i], "--out")) out_path = argv[i + 1];
    if (!std::strcmp(argv[i], "--artifacts-dir")) artifacts_dir = argv[i + 1];
  }

  // --- harness 1: engine, prefetch channel ---
  bench::EvaluationSetup setup(/*block_count=*/1, /*txs_per_block=*/8);
  constexpr size_t kBundles = 24;
  const auto intent_a = make_intent(setup.generator, /*user_offset=*/0, kBundles);
  const auto intent_b = make_intent(setup.generator, /*user_offset=*/15, kBundles);

  // Big rings: per-opcode retire events share the ring with the SP timeline
  // and must not evict it.
  obs::TraceSink sink_a({.ring_capacity = 1 << 17});
  obs::TraceSink sink_b({.ring_capacity = 1 << 17});
  std::vector<service::SessionOutcome> outcomes_a, outcomes_b;
  std::string metrics_prom, metrics_json;
  ShardView shards_a, shards_b;
  if (!run_intent(setup.node, intent_a, sink_a, outcomes_a, &metrics_prom, &metrics_json,
                  &shards_a) ||
      !run_intent(setup.node, intent_b, sink_b, outcomes_b, nullptr, nullptr, &shards_b)) {
    std::fprintf(stderr, "error: engine run failed\n");
    return 1;
  }
  if (sink_a.total_dropped() != 0 || sink_b.total_dropped() != 0) {
    std::fprintf(stderr, "error: trace ring dropped events (capacity too small)\n");
    return 1;
  }

  const obs::AuditConfig audit_config;  // defaults; exact swap schedule relaxed
  const auto sp_a = obs::SpTrace::project(sink_a.ring(0).events());
  const auto sp_b = obs::SpTrace::project(sink_b.ring(0).events());
  const auto engine_faithful = obs::audit_obliviousness(sp_a, sp_b, audit_config);
  const auto engine_ablated =
      obs::audit_obliviousness(project_demand(outcomes_a), project_demand(outcomes_b),
                               audit_config);

  // --- harness 2: pager, swap-padding channel ---
  obs::TraceSink pager_sink({.ring_capacity = 1 << 14});
  const auto pager_a8 = pager_trace(/*frame_pages=*/3, /*max_noise=*/8, pager_sink.ring(10));
  const auto pager_b8 = pager_trace(/*frame_pages=*/4, /*max_noise=*/8, pager_sink.ring(11));
  const auto pager_a0 = pager_trace(/*frame_pages=*/3, /*max_noise=*/0, pager_sink.ring(12));
  const auto pager_b0 = pager_trace(/*frame_pages=*/4, /*max_noise=*/0, pager_sink.ring(13));
  const auto pager_faithful = obs::audit_obliviousness(pager_a8, pager_b8, audit_config);
  const auto pager_ablated = obs::audit_obliviousness(pager_a0, pager_b0, audit_config);

  // --- harness 3: sharded store, shard-routing channel ---
  const auto shard_faithful = shard_store_audit(/*pin_shard_assignment=*/false);
  const auto shard_pinned = shard_store_audit(/*pin_shard_assignment=*/true);
  const auto shard_engine_a = obs::audit_shard_obliviousness(
      shards_a.walks, shards_a.shard_count, shards_a.leaf_count);
  const auto shard_engine_b = obs::audit_shard_obliviousness(
      shards_b.walks, shards_b.shard_count, shards_b.leaf_count);

  // --- report ---
  bench::Table table({"audit", "result", "expected", "ok"});
  add_rows(table, "engine faithful (prefetch on)", engine_faithful, true);
  add_rows(table, "engine ablated (prefetch off)", engine_ablated, false);
  add_rows(table, "pager faithful (noise=8)", pager_faithful, true);
  add_rows(table, "pager ablated (noise=0)", pager_ablated, false);
  add_rows(table, "shard store faithful (redraw)", shard_faithful, true);
  add_rows(table, "shard store ablated (pinned)", shard_pinned, false);
  add_rows(table, "shard engine intent a", shard_engine_a, true);
  add_rows(table, "shard engine intent b", shard_engine_b, true);
  table.print("Obliviousness audit (faithful must PASS, ablated must FAIL)");
  std::printf("\n-- engine faithful --\n%s", engine_faithful.summary().c_str());
  std::printf("\n-- engine prefetch-ablated --\n%s", engine_ablated.summary().c_str());
  std::printf("\n-- pager faithful --\n%s", pager_faithful.summary().c_str());
  std::printf("\n-- pager noise-ablated --\n%s", pager_ablated.summary().c_str());
  std::printf("\n-- shard store faithful --\n%s", shard_faithful.summary().c_str());
  std::printf("\n-- shard store pinned --\n%s", shard_pinned.summary().c_str());
  std::printf("\n-- shard engine intent a --\n%s", shard_engine_a.summary().c_str());
  std::printf("\n-- shard engine intent b --\n%s", shard_engine_b.summary().c_str());

  bool artifacts_ok = true;
  {
    std::ofstream trace_a(artifacts_dir + "/TRACE_obs_intent_a.jsonl");
    sink_a.write_jsonl(trace_a);
    trace_a.flush();
    artifacts_ok &= bool(trace_a);
    std::ofstream trace_b(artifacts_dir + "/TRACE_obs_intent_b.jsonl");
    sink_b.write_jsonl(trace_b);
    trace_b.flush();
    artifacts_ok &= bool(trace_b);
    std::ofstream trace_p(artifacts_dir + "/TRACE_obs_pager.jsonl");
    pager_sink.write_jsonl(trace_p);
    trace_p.flush();
    artifacts_ok &= bool(trace_p);
  }
  write_file(artifacts_dir + "/METRICS_obs.prom", metrics_prom, artifacts_ok);
  write_file(artifacts_dir + "/METRICS_obs.json", metrics_json, artifacts_ok);

  const bool ok = engine_faithful.pass && !engine_ablated.pass && pager_faithful.pass &&
                  !pager_ablated.pass && shard_faithful.pass && !shard_pinned.pass &&
                  shard_engine_a.pass && shard_engine_b.pass && artifacts_ok;
  {
    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"obs_audit\",\n"
         << "  \"bundles\": " << kBundles << ",\n"
         << "  \"trace_events\": " << (sink_a.total_emitted() + sink_b.total_emitted())
         << ",\n"
         << "  \"engine_faithful\": " << engine_faithful.json() << ",\n"
         << "  \"engine_prefetch_ablated\": " << engine_ablated.json() << ",\n"
         << "  \"pager_faithful\": " << pager_faithful.json() << ",\n"
         << "  \"pager_noise_ablated\": " << pager_ablated.json() << ",\n"
         << "  \"shard_store_faithful\": " << shard_faithful.json() << ",\n"
         << "  \"shard_store_pinned\": " << shard_pinned.json() << ",\n"
         << "  \"shard_engine_intent_a\": " << shard_engine_a.json() << ",\n"
         << "  \"shard_engine_intent_b\": " << shard_engine_b.json() << ",\n"
         << "  \"shard_walks\": " << shards_a.walks.size() << ",\n"
         << "  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
    json.flush();
    if (!json) {
      std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::printf("\nwrote %s (+ trace/metrics artifacts in %s)\n", out_path.c_str(),
              artifacts_dir.c_str());
  std::printf("audit gate: %s\n", ok ? "OK" : "BROKEN");
  return ok ? 0 : 1;
}
