// Crash drill (PR 5): seeded power-loss sweep over the durability layer,
// measuring warm restart against cold re-sync and holding the recovery
// invariants at every crash point.
//
// One trial = one seeded power loss. A rehearsal run (no crash) records the
// filesystem op stream; targeted crash points are aimed at its semantically
// interesting ops (journal tail, checkpoint tmp write, the checkpoint
// rename, a group-commit fsync, a delta-sync install, a directory sync) and
// a further batch of uniformly seeded points covers the rest. The drive is
// serialized (submit, then resync as a barrier) so the op stream — and
// therefore what each crash point means — is identical across runs.
//
// Per trial, with the crash resolved by the seeded CrashPlan stream:
//
//   R1  Recovery::replay is fail-closed: it always yields a usable image,
//       and every recovered page tag is <= the recovered committed epoch;
//   R2  warm restart lands on the live head: pinned root == node head, and
//       the engine's max page epoch <= its committed store epoch;
//   R3  bundles whose resolve mark survived keep their pre-crash outcomes
//       (checked against the rehearsal, same timeline);
//   R4  bundles re-admitted after the crash resolve semantically identical
//       to a cold engine executing them at the same head — the warm path
//       is transparent;
//   R5  exactly one combined outcome per submitted bundle id;
//   R6  aggregate wall time: warm recovery (replay + adopt + warm_restart)
//       beats cold synchronize() summed over trials with a recoverable
//       image — the journal must buy the availability it promises.
//
// Paged mode (PR 10, --paged): the same drill with every state layer routed
// through the paged backend — the node's trie over a PagedNodeStore, the
// engine's ORAM slots over PagedSlotStore segments on the SAME crash-armed
// fs, and the DurableStore mirror in incremental-checkpoint mode. --scale N
// multiplies the deployed state population (the big-state drill runs at
// 10x), and the run additionally reports the memory-bound evidence the CI
// gate checks: analytic pool budget vs the measured peak resident bytes,
// the full-image size vs the last incremental checkpoint's cost, and a
// 1-vs-8-worker rehearsal image comparison (bit-identical by construction
// of the serialized drive).
//
// Usage: bench_crash [--quick] [--paged] [--scale N] [--pool-pages N]
//                    [--bundles N] [--blocks N] [--trials N]
//                    [--seed S] [--out FILE]
// Writes BENCH_crash.json. Exit 1 on any invariant violation.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "durability/checkpoint.hpp"
#include "durability/durable_store.hpp"
#include "durability/recovery.hpp"
#include "durability/vfs.hpp"
#include "faults/crash_plan.hpp"
#include "service/engine.hpp"
#include "trie/paged_node_store.hpp"

using namespace hardtape;
using durability::DurableStore;
using durability::SimFs;

namespace {

struct CrashOptions {
  size_t bundles = 24;
  size_t blocks = 6;
  size_t uniform_trials = 8;
  uint64_t seed = 0xc4a5;
  std::string out_path = "BENCH_crash.json";
  /// Paged state backend everywhere (trie + ORAM slots + incremental
  /// checkpoints). Off by default: the plain drill stays bit-identical to
  /// the pre-paging bench.
  bool paged = false;
  /// Deployed-state multiplier (accounts/contracts/pairs); the ORAM
  /// capacity scales with it so the bigger world still fits the tree.
  size_t scale = 1;
  /// Buffer-pool cap (pages/buckets) for every paged layer. Each ORAM
  /// shard still raises this to its walk working set when set lower.
  size_t pool_pages = 64;
};

struct TrialResult {
  uint64_t trial = 0;
  std::string label;
  uint64_t crash_at_op = 0;
  durability::RecoveryStats recovery;
  bool recovered_history = false;  ///< image carried at least one epoch
  bool cold_fallback = false;      ///< warm_restart declined; cold sync used
  size_t resolved_durably = 0;
  size_t resubmitted = 0;
  uint64_t warm_ns = 0;  ///< replay + adopt + warm_restart
  uint64_t cold_ns = 0;  ///< reference engine's cold synchronize()
  /// Deterministic work comparison: Merkle-verified slots to get live again.
  uint64_t warm_verified_slots = 0;
  uint64_t cold_verified_slots = 0;
  uint64_t pages_restored = 0;
  std::vector<std::string> violations;
};

uint64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint64_t kCheckpointEvery = 512;

// `oram_fs` is where a paged engine spills ORAM slot segments. The crash
// engine gets the ARMED fs (a power loss must take the slot spill with it);
// the warm/reference engines get their own fresh fs.
service::EngineConfig engine_config(DurableStore* durable, SimFs* oram_fs,
                                    const CrashOptions& opts) {
  service::EngineConfig config;
  config.security = service::SecurityConfig::full();
  config.num_hevms = 1;  // one worker -> one deterministic fs op stream
  config.oram = oram::OramConfig{.block_size = oram::kPageSize,
                                 .capacity = 8192 * opts.scale,
                                 .max_stash_blocks = 512};
  if (opts.paged && oram_fs != nullptr) {
    config.oram.backend = oram::SlotBackend::kPaged;
    config.oram.backing_fs = oram_fs;
    config.oram.buffer_pool_pages = opts.pool_pages;
  }
  config.seal_mode = oram::SealMode::kChaChaHmac;
  config.perform_channel_crypto = false;
  config.durable = durable;
  return config;
}

durability::DurableConfig durable_config(const CrashOptions& opts) {
  // Paged mode checkpoints on a tighter cadence: an incremental checkpoint
  // costs O(dirty pages), so rolling often is cheap and keeps the measured
  // "last checkpoint" a steady-state CoW delta instead of the initial
  // full-sync image.
  return {.checkpoint_every_records = opts.paged ? kCheckpointEvery / 32
                                                 : kCheckpointEvery,
          .incremental_checkpoints = opts.paged,
          .buffer_pool_pages = opts.pool_pages};
}

// Memory-bound evidence for the paged drill (CI gates these against the
// full-image size: the pool budget must sit strictly below full state, and
// the pools must honor it).
struct PagedMetrics {
  uint64_t pool_budget_bytes = 0;       ///< analytic cap across every pool
  uint64_t peak_pool_bytes = 0;         ///< measured high-water, summed
  uint64_t full_image_bytes = 0;        ///< serialized full image (v1 cost)
  uint64_t incremental_ckpt_bytes = 0;  ///< newest CoW checkpoint's cost
  uint64_t checkpoints_written = 0;
  bool workers_identical = true;  ///< 1-worker vs 8-worker rehearsal image
};


// The identical serialized drive used by the rehearsal and by every trial:
// submit one bundle, barrier on resync() (quiesces the pool), and advance
// the chain at fixed points. Returns outcomes keyed by bundle id.
std::map<uint64_t, service::SessionOutcome> drive(
    service::PreExecutionEngine& engine, node::NodeSimulator& node,
    const std::vector<evm::Transaction>& txs, const CrashOptions& opts) {
  engine.start();
  const size_t tick_every =
      std::max<size_t>(1, opts.bundles / std::max<size_t>(1, opts.blocks));
  size_t ticks_done = 0;
  for (size_t i = 0; i < opts.bundles; ++i) {
    engine.submit({txs[i % txs.size()]});
    (void)engine.resync();  // barrier: the bundle resolves before we go on
    if ((i + 1) % tick_every == 0 && ticks_done < opts.blocks) {
      node.produce_block({txs[(opts.bundles + ticks_done) % txs.size()]});
      ++ticks_done;
    }
  }
  std::map<uint64_t, service::SessionOutcome> by_id;
  for (auto& outcome : engine.drain()) by_id[outcome.bundle_id] = outcome;
  return by_id;
}

// Fresh deterministic chain per run: every trial replays the exact same
// block history, so outcomes are comparable across rehearsal and trials.
// In paged mode the node's world lives on a PagedNodeStore over the node's
// OWN fs — never crash-armed (the node is the untrusted party; the drill
// crashes HarDTAPE's durable state, not the chain).
struct ChainFixture {
  durability::SimFs node_fs;
  std::unique_ptr<trie::PagedNodeStore> node_store;
  bench::EvaluationSetup setup;
  std::vector<evm::Transaction> txs;
  explicit ChainFixture(const CrashOptions& opts)
      : node_store(opts.paged
                       ? std::make_unique<trie::PagedNodeStore>(
                             node_fs, pagedstore::PagedStoreConfig{
                                          .name = "node-trie",
                                          .buffer_pool_pages = opts.pool_pages})
                       : nullptr),
        setup(4, 16, opts.seed, opts.scale, node_store.get()),
        txs(setup.all_transactions()) {}
};

// Summed high-water RAM across every buffer pool in play: the durable
// mirror, each ORAM shard's slot store, and the node's trie store.
uint64_t measured_pool_peak(service::PreExecutionEngine& engine,
                            const DurableStore& store, const ChainFixture& chain) {
  uint64_t total = 0;
  if (const auto s = store.pool_stats()) total += s->peak_resident_bytes;
  oram::ShardedOramStore& shards = engine.oram_store();
  for (size_t i = 0; i < shards.shard_count(); ++i) {
    if (const auto s = shards.server(i).slot_pool_stats()) {
      total += s->peak_resident_bytes;
    }
  }
  if (chain.node_store != nullptr) {
    total += chain.node_store->pool_stats().peak_resident_bytes;
  }
  return total;
}

// The analytic budget the measured peak must stay under: pages x payload
// bytes per pool, with each ORAM shard's cap raised to its walk working set
// exactly as PagedSlotStore raises it.
uint64_t analytic_pool_budget(service::PreExecutionEngine& engine,
                              const CrashOptions& opts) {
  uint64_t total = opts.pool_pages * oram::kPageSize;  // durable mirror
  oram::ShardedOramStore& shards = engine.oram_store();
  const oram::OramConfig& shard_cfg = shards.server(0).config();
  // One slot on a bucket page: 12B nonce + 16B tag + 4B length + ciphertext
  // (stream cipher: ciphertext == block_size).
  const uint64_t bucket_bytes =
      shard_cfg.bucket_capacity * (12 + 16 + 4 + shard_cfg.block_size);
  for (size_t i = 0; i < shards.shard_count(); ++i) {
    const size_t pages = std::max(
        opts.pool_pages, 2 * (shards.server(i).depth() + 1));
    total += pages * bucket_bytes;
  }
  total += opts.pool_pages * trie::PagedNodeStore::kDefaultPagePayload;
  return total;
}

struct TargetPoint {
  std::string label;
  uint64_t op = 0;
};

// Aim crashes at the rehearsal op stream's load-bearing moments.
std::vector<TargetPoint> targeted_points(const std::vector<durability::FsOpRecord>& log) {
  std::vector<TargetPoint> points;
  auto add = [&points](const char* label, std::optional<uint64_t> op) {
    if (op) points.push_back({label, *op});
  };
  std::optional<uint64_t> journal_tail, ckpt_tmp, ckpt_rename, commit_fsync,
      resync_install, dir_sync;
  for (const auto& record : log) {
    const bool wal = record.path.rfind("wal-", 0) == 0;
    if (record.op == durability::FsOp::kAppend && wal) {
      journal_tail = record.index;  // keeps the last one
      if (record.index > log.size() / 2 && !resync_install) resync_install = record.index;
    }
    if (record.op == durability::FsOp::kAppend &&
        record.path.find(".tmp") != std::string::npos && !ckpt_tmp) {
      ckpt_tmp = record.index;
    }
    if (record.op == durability::FsOp::kRename && !ckpt_rename) ckpt_rename = record.index;
    if (record.op == durability::FsOp::kFsync && wal &&
        record.index > log.size() / 3 && !commit_fsync) {
      commit_fsync = record.index;
    }
    if (record.op == durability::FsOp::kSyncDir) dir_sync = record.index;
  }
  add("journal-tail", journal_tail);
  add("ckpt-mid-write", ckpt_tmp);
  add("ckpt-publish-rename", ckpt_rename);
  add("epoch-commit-fsync", commit_fsync);
  add("mid-resync-install", resync_install);
  add("dir-sync", dir_sync);
  return points;
}

TrialResult run_trial(uint64_t trial, const std::string& label,
                      const durability::CrashConfig& crash,
                      const CrashOptions& opts,
                      const std::map<uint64_t, service::SessionOutcome>& baseline) {
  TrialResult result;
  result.trial = trial;
  result.label = label;
  result.crash_at_op = crash.crash_at_op;
  auto violate = [&result](const std::string& what) { result.violations.push_back(what); };

  ChainFixture chain(opts);
  SimFs fs;
  fs.arm(crash);

  std::map<uint64_t, service::SessionOutcome> crashed_outcomes;
  {
    DurableStore store(fs, durable_config(opts));
    service::PreExecutionEngine engine(chain.setup.node,
                                       engine_config(&store, &fs, opts));
    if (engine.synchronize() == Status::kOk) {
      crashed_outcomes = drive(engine, chain.setup.node, chain.txs, opts);
    } else if (!fs.crashed()) {
      // Power loss DURING the initial sync is a legitimate trial in paged
      // mode (the slot spill lives on the armed fs, so sync fails closed
      // once the fs dies); recovery below must still produce a usable
      // image. A sync failure on a live fs is a real violation.
      violate("pre-crash synchronize() failed");
      return result;
    }
  }
  if (!fs.crashed()) violate("armed crash point was never reached");

  // --- power back on: recover, adopt, warm restart ---
  fs.restart();
  const uint64_t warm_start = now_ns();
  const auto recovered = durability::Recovery::replay(fs);
  SimFs fs2;
  DurableStore store2(fs2, durable_config(opts));
  store2.adopt(recovered);
  service::PreExecutionEngine engine(chain.setup.node,
                                     engine_config(&store2, &fs2, opts));
  const Status warm = engine.warm_restart(recovered);
  result.warm_ns = now_ns() - warm_start;
  result.recovery = recovered.stats;
  result.recovered_history = !recovered.image.epoch_history.empty();

  if (warm != Status::kOk) {
    result.cold_fallback = true;
    if (engine.synchronize() != Status::kOk) {
      violate("warm restart AND cold fallback failed");
      return result;
    }
  }
  {
    const auto metrics = engine.snapshot();
    result.warm_verified_slots = metrics.sync_verified_slots;
    result.pages_restored = metrics.pages_restored;
  }

  // R1: fail-closed image — no page newer than the committed store epoch.
  const uint64_t committed_epoch =
      recovered.image.epoch_history.empty() ? 0
                                            : recovered.image.epoch_history.back().epoch;
  for (const auto& [id, epoch] : recovered.image.page_tags) {
    if (epoch > committed_epoch) {
      violate("R1: recovered page tagged epoch " + std::to_string(epoch) +
              " > committed " + std::to_string(committed_epoch));
      break;
    }
  }
  // R2: live again at the head, store never ahead of its commit.
  if (engine.pinned_header().state_root != chain.setup.node.head().state_root) {
    violate("R2: restarted engine not pinned to the node head");
  }
  if (engine.epoch_registry().max_page_epoch() > engine.epoch_registry().store_epoch()) {
    violate("R2: max page epoch > store epoch after restart");
  }

  // R3 + the resubmission set: a bundle is settled iff its resolve mark
  // survived (admitted in the image and no longer pending).
  std::vector<uint64_t> to_resubmit;
  for (uint64_t id = 0; id < opts.bundles; ++id) {
    const bool admitted = id < recovered.image.next_bundle_id;
    const bool pending = recovered.image.pending_bundles.count(id) != 0;
    if (admitted && !pending) {
      ++result.resolved_durably;
      const auto it = crashed_outcomes.find(id);
      const auto base = baseline.find(id);
      if (it == crashed_outcomes.end() || base == baseline.end() ||
          !service::outcomes_semantically_identical(it->second, base->second)) {
        violate("R3: durably resolved bundle " + std::to_string(id) +
                " diverged from the rehearsal");
      }
    } else {
      to_resubmit.push_back(id);
    }
  }
  result.resubmitted = to_resubmit.size();

  engine.start();
  for (uint64_t id : to_resubmit) {
    engine.resubmit(id, {chain.txs[id % chain.txs.size()]}, /*attempt=*/1);
  }
  std::map<uint64_t, service::SessionOutcome> readmitted;
  for (auto& outcome : engine.drain()) readmitted[outcome.bundle_id] = outcome;

  // R4 reference + cold timing: a fresh engine, no journal, same head.
  ChainFixture ref_chain(opts);
  for (uint64_t n = ref_chain.setup.node.head_number();
       n < chain.setup.node.head_number(); ++n) {
    ref_chain.setup.node.produce_block(
        {ref_chain.txs[(opts.bundles + (n - 1)) % ref_chain.txs.size()]});
  }
  SimFs ref_fs;
  service::PreExecutionEngine reference(ref_chain.setup.node,
                                        engine_config(nullptr, &ref_fs, opts));
  const uint64_t cold_start = now_ns();
  if (reference.synchronize() != Status::kOk) {
    violate("reference cold synchronize() failed");
    return result;
  }
  result.cold_ns = now_ns() - cold_start;
  result.cold_verified_slots = reference.snapshot().sync_verified_slots;
  // R6 (deterministic half): with a recovered image, getting live again must
  // re-verify strictly less than a cold full sync.
  if (result.recovered_history && !result.cold_fallback &&
      result.warm_verified_slots >= result.cold_verified_slots) {
    violate("R6: warm restart verified " + std::to_string(result.warm_verified_slots) +
            " slots, cold sync only " + std::to_string(result.cold_verified_slots));
  }
  reference.start();
  std::vector<uint64_t> reference_ids;
  for (uint64_t id : to_resubmit) {
    reference_ids.push_back(
        reference.submit({ref_chain.txs[id % ref_chain.txs.size()]}).bundle_id);
  }
  std::map<uint64_t, service::SessionOutcome> reference_outcomes;
  for (auto& outcome : reference.drain()) reference_outcomes[outcome.bundle_id] = outcome;

  for (size_t i = 0; i < to_resubmit.size(); ++i) {
    const auto got = readmitted.find(to_resubmit[i]);
    const auto want = reference_outcomes.find(reference_ids[i]);
    if (got == readmitted.end()) {
      violate("R5: no outcome for re-admitted bundle " + std::to_string(to_resubmit[i]));
      continue;
    }
    // The reference engine numbered the bundle afresh; identity is checked
    // by construction of the pairing, so align the id before comparing.
    service::SessionOutcome want_aligned;
    if (want != reference_outcomes.end()) {
      want_aligned = want->second;
      want_aligned.bundle_id = to_resubmit[i];
    }
    if (want == reference_outcomes.end() ||
        !service::outcomes_semantically_identical(got->second, want_aligned)) {
      violate("R4: re-admitted bundle " + std::to_string(to_resubmit[i]) +
              " diverged from a cold engine at the same head");
    }
  }
  // R5: one combined outcome per id, nothing extra.
  if (readmitted.size() != to_resubmit.size()) {
    violate("R5: " + std::to_string(readmitted.size()) + " readmitted outcomes for " +
            std::to_string(to_resubmit.size()) + " resubmissions");
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CrashOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      opts.bundles = 10;
      opts.blocks = 2;
      opts.uniform_trials = 3;
    }
    if (!std::strcmp(argv[i], "--paged")) opts.paged = true;
    if (i >= argc - 1) continue;
    if (!std::strcmp(argv[i], "--bundles")) opts.bundles = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--blocks")) opts.blocks = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--trials")) opts.uniform_trials = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--seed")) opts.seed = std::strtoull(argv[i + 1], nullptr, 0);
    if (!std::strcmp(argv[i], "--scale")) opts.scale = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--pool-pages")) opts.pool_pages = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--out")) opts.out_path = argv[i + 1];
  }
  if (opts.scale == 0) opts.scale = 1;

  // --- rehearsal: the uncrashed timeline every trial is measured against ---
  ChainFixture chain(opts);
  SimFs rehearsal_fs;
  std::map<uint64_t, service::SessionOutcome> baseline;
  PagedMetrics paged;
  Bytes rehearsal_image;
  {
    DurableStore store(rehearsal_fs, durable_config(opts));
    service::PreExecutionEngine engine(chain.setup.node,
                                       engine_config(&store, &rehearsal_fs, opts));
    if (engine.synchronize() != Status::kOk) {
      std::fprintf(stderr, "rehearsal synchronize() failed\n");
      return 1;
    }
    baseline = drive(engine, chain.setup.node, chain.txs, opts);
    if (opts.paged) {
      rehearsal_image = durability::checkpoint::serialize(0, store.image_snapshot());
      paged.full_image_bytes = rehearsal_image.size();
      paged.incremental_ckpt_bytes = store.stats().last_checkpoint_bytes;
      paged.checkpoints_written = store.stats().checkpoints_written;
      paged.peak_pool_bytes = measured_pool_peak(engine, store, chain);
      paged.pool_budget_bytes = analytic_pool_budget(engine, opts);
    }
  }
  // Determinism across worker counts: the drive is serialized (submit, then
  // resync as a barrier), so an 8-worker rehearsal must land on the exact
  // same durable image, byte for byte.
  if (opts.paged) {
    ChainFixture chain8(opts);
    SimFs fs8;
    DurableStore store8(fs8, durable_config(opts));
    auto config8 = engine_config(&store8, &fs8, opts);
    config8.num_hevms = 8;
    service::PreExecutionEngine engine8(chain8.setup.node, config8);
    if (engine8.synchronize() != Status::kOk) {
      std::fprintf(stderr, "8-worker rehearsal synchronize() failed\n");
      return 1;
    }
    (void)drive(engine8, chain8.setup.node, chain8.txs, opts);
    paged.workers_identical =
        durability::checkpoint::serialize(0, store8.image_snapshot()) ==
        rehearsal_image;
  }
  const uint64_t total_ops = rehearsal_fs.op_count();
  const auto op_log = rehearsal_fs.op_log();
  std::printf("rehearsal: %zu bundles, %llu fs ops\n", baseline.size(),
              static_cast<unsigned long long>(total_ops));

  faults::CrashPlan plan(faults::CrashPlanConfig{.seed = opts.seed});
  std::vector<TrialResult> trials;
  uint64_t trial_index = 0;
  for (const auto& point : targeted_points(op_log)) {
    trials.push_back(run_trial(trial_index, point.label,
                               plan.spec_at(trial_index, 0, point.op), opts, baseline));
    ++trial_index;
  }
  for (size_t i = 0; i < opts.uniform_trials; ++i) {
    trials.push_back(run_trial(trial_index, "uniform",
                               plan.spec(trial_index, 0, total_ops), opts, baseline));
    ++trial_index;
  }

  uint64_t warm_total_ns = 0, cold_total_ns = 0;
  size_t recoverable = 0, violations = 0;
  for (const auto& t : trials) {
    violations += t.violations.size();
    if (t.recovered_history && !t.cold_fallback) {
      warm_total_ns += t.warm_ns;
      cold_total_ns += t.cold_ns;
      ++recoverable;
    }
  }
  const double speedup =
      warm_total_ns > 0 ? double(cold_total_ns) / double(warm_total_ns) : 0.0;
  // R6: over the recoverable trials, warm recovery must beat cold re-sync.
  const bool warm_wins = recoverable == 0 || cold_total_ns > warm_total_ns;

  bench::Table table({"trial", "crash point", "op", "stop reason", "ckpt", "gen",
                      "replayed", "truncated", "settled", "resubmitted", "restored",
                      "slots w/c", "warm ms", "cold ms", "viol"});
  for (const auto& t : trials) {
    table.add_row({std::to_string(t.trial), t.label, std::to_string(t.crash_at_op),
                   t.recovery.stop_reason.empty() ? "-" : t.recovery.stop_reason,
                   t.recovery.used_checkpoint ? "y" : "n",
                   std::to_string(t.recovery.next_generation),
                   std::to_string(t.recovery.records_replayed),
                   std::to_string(t.recovery.bytes_truncated),
                   std::to_string(t.resolved_durably), std::to_string(t.resubmitted),
                   std::to_string(t.pages_restored),
                   std::to_string(t.warm_verified_slots) + "/" +
                       std::to_string(t.cold_verified_slots),
                   bench::fmt(t.warm_ns / 1e6, 2), bench::fmt(t.cold_ns / 1e6, 2),
                   std::to_string(t.violations.size())});
  }
  table.print("Crash drill (seeded power loss -> recovery -> warm restart)");
  std::printf("\nwarm total %.2f ms vs cold total %.2f ms over %zu recoverable "
              "trials (speedup %.2fx)\n",
              warm_total_ns / 1e6, cold_total_ns / 1e6, recoverable, speedup);

  for (const auto& t : trials) {
    for (const auto& v : t.violations) {
      std::fprintf(stderr, "violation (trial %llu, %s): %s\n",
                   static_cast<unsigned long long>(t.trial), t.label.c_str(), v.c_str());
    }
  }
  if (!warm_wins) {
    std::fprintf(stderr, "violation (R6): warm recovery slower than cold re-sync "
                         "in aggregate\n");
  }
  bool paged_ok = true;
  if (opts.paged) {
    std::printf("\npaged drill (scale %zux, pool %zu pages): budget %llu B, "
                "peak %llu B, full image %llu B, last incremental ckpt %llu B "
                "(%llu checkpoints), 8-worker image %s\n",
                opts.scale, opts.pool_pages,
                static_cast<unsigned long long>(paged.pool_budget_bytes),
                static_cast<unsigned long long>(paged.peak_pool_bytes),
                static_cast<unsigned long long>(paged.full_image_bytes),
                static_cast<unsigned long long>(paged.incremental_ckpt_bytes),
                static_cast<unsigned long long>(paged.checkpoints_written),
                paged.workers_identical ? "identical" : "DIVERGED");
    if (paged.peak_pool_bytes > paged.pool_budget_bytes) {
      std::fprintf(stderr, "violation (paged): pool peak exceeded the budget\n");
      paged_ok = false;
    }
    if (!paged.workers_identical) {
      std::fprintf(stderr, "violation (paged): 8-worker rehearsal image diverged "
                           "from the 1-worker image\n");
      paged_ok = false;
    }
  }
  const bool ok = violations == 0 && warm_wins && paged_ok;

  std::ofstream json(opts.out_path);
  json << "{\n  \"bench\": \"crash\",\n  \"bundles\": " << opts.bundles
       << ",\n  \"blocks\": " << opts.blocks
       << ",\n  \"seed\": " << opts.seed
       << ",\n  \"paged\": " << (opts.paged ? "true" : "false")
       << ",\n  \"scale\": " << opts.scale
       << ",\n  \"pool_pages\": " << opts.pool_pages
       << ",\n  \"pool_budget_bytes\": " << paged.pool_budget_bytes
       << ",\n  \"peak_pool_bytes\": " << paged.peak_pool_bytes
       << ",\n  \"full_image_bytes\": " << paged.full_image_bytes
       << ",\n  \"incremental_ckpt_bytes\": " << paged.incremental_ckpt_bytes
       << ",\n  \"checkpoints_written\": " << paged.checkpoints_written
       << ",\n  \"workers_identical\": " << (paged.workers_identical ? "true" : "false")
       << ",\n  \"rehearsal_fs_ops\": " << total_ops
       << ",\n  \"trials\": [\n";
  for (size_t i = 0; i < trials.size(); ++i) {
    const auto& t = trials[i];
    json << (i ? ",\n" : "") << "    {\"trial\": " << t.trial << ", \"label\": \""
         << t.label << "\", \"crash_at_op\": " << t.crash_at_op
         << ", \"stop_reason\": \"" << t.recovery.stop_reason
         << "\", \"used_checkpoint\": " << (t.recovery.used_checkpoint ? "true" : "false")
         << ", \"generation\": " << t.recovery.next_generation
         << ", \"records_replayed\": " << t.recovery.records_replayed
         << ", \"bytes_truncated\": " << t.recovery.bytes_truncated
         << ", \"epochs_aborted\": " << t.recovery.epochs_aborted
         << ", \"recovered_history\": " << (t.recovered_history ? "true" : "false")
         << ", \"cold_fallback\": " << (t.cold_fallback ? "true" : "false")
         << ", \"resolved_durably\": " << t.resolved_durably
         << ", \"resubmitted\": " << t.resubmitted
         << ", \"pages_restored\": " << t.pages_restored
         << ", \"warm_verified_slots\": " << t.warm_verified_slots
         << ", \"cold_verified_slots\": " << t.cold_verified_slots
         << ", \"warm_ns\": " << t.warm_ns << ", \"cold_ns\": " << t.cold_ns
         << ", \"violations\": " << t.violations.size() << "}";
  }
  json << "\n  ],\n  \"recoverable_trials\": " << recoverable
       << ",\n  \"warm_total_ns\": " << warm_total_ns
       << ",\n  \"cold_total_ns\": " << cold_total_ns
       << ",\n  \"warm_speedup\": " << bench::fmt(speedup, 3)
       << ",\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", opts.out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", opts.out_path.c_str());
  std::printf("crash drill verdict: %s\n", ok ? "all invariants hold" : "VIOLATIONS");
  return ok ? 0 : 1;
}
