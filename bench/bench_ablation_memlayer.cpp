// Ablations for the 3-layer memory design choices of Section IV-B:
//  1. Layer-2 capacity sweep: Memory Overflow rate and swap traffic on the
//     evaluation set (why 1 MB per HEVM).
//  2. Pre-evict/pre-load noise level vs the correlation between observed
//     swap sizes and true frame sizes (the A5 leakage channel).
#include <cmath>

#include "bench_common.hpp"
#include "evm/interpreter.hpp"
#include "memlayer/observer.hpp"

using namespace hardtape;

namespace {

crypto::AesKey128 key() {
  crypto::AesKey128 k{};
  k[1] = 0x31;
  return k;
}

}  // namespace

int main() {
  bench::EvaluationSetup setup(1, 30);
  // The normal evaluation set barely stresses layer 2 (that is the point of
  // the 1 MB sizing); add memory-heavy transactions — large rollup batches
  // and deep router chains with bulky calldata — to expose the capacity
  // cliff at smaller layer-2 sizes.
  auto txs = setup.all_transactions();
  Random stress_rng(42);
  for (int i = 0; i < 30; ++i) {
    evm::Transaction tx;
    tx.from = setup.generator.users()[i % setup.generator.users().size()];
    if (i % 2 == 0) {
      tx.to = setup.generator.rollup();
      tx.data = workload::rollup_submit(u256{1} << 40, 8,
                                        20'000 + stress_rng.uniform(280'000));
      tx.gas_limit = 30'000'000;
    } else {
      tx.to = setup.generator.routers()[0];
      Bytes data = workload::router_route(8 + stress_rng.uniform(4),
                                          setup.generator.tokens()[0],
                                          setup.generator.users()[0], u256{1});
      data.resize(data.size() + 8'000 + stress_rng.uniform(8'000), 0xcd);
      tx.data = std::move(data);
      tx.gas_limit = 30'000'000;
    }
    txs.push_back(tx);
  }

  // --- 1. layer-2 capacity sweep ---
  {
    bench::Table table({"L2 size", "frame limit", "overflows", "evicted pages",
                        "loaded pages", "swap events"});
    for (const size_t l2_kb : {64u, 128u, 256u, 512u, 1024u}) {
      memlayer::MemLayerConfig l2;
      l2.l2_bytes = l2_kb * 1024;
      l2.rng_seed = 5;
      memlayer::MemLayerObserver mem({}, l2, key());
      state::OverlayState overlay(setup.node.world());
      evm::Interpreter interp(overlay, setup.node.block_context());
      interp.set_frame_memory_limit(l2.l2_bytes / 2);
      interp.set_observer(&mem);
      uint64_t overflows = 0;
      for (const auto& tx : txs) {
        const auto result = interp.execute_transaction(tx);
        if (result.status == evm::VmStatus::kMemoryOverflow) ++overflows;
      }
      table.add_row({std::to_string(l2_kb) + " KB",
                     std::to_string(l2.frame_page_limit()) + " pages",
                     std::to_string(overflows),
                     std::to_string(mem.pager().total_evicted_pages()),
                     std::to_string(mem.pager().total_loaded_pages()),
                     std::to_string(mem.pager().swap_events().size())});
    }
    table.print("Ablation 1: layer-2 capacity (paper picks 1 MB: no overflow on "
                "normal workloads, >4 frames resident for noise headroom)");
  }

  // --- 2. noise level vs swap-size correlation (A5) ---
  {
    // Fixed synthetic call pattern with *known* frame sizes; measure the
    // Pearson correlation between the true eviction requirement and the
    // observed (noisy) swap size across many runs.
    bench::Table table({"max noise pages", "corr(observed, true)", "mean noise/swap"});
    for (const size_t noise : {0u, 2u, 4u, 8u, 12u}) {
      std::vector<double> true_sizes, observed_sizes;
      double total_noise = 0;
      uint64_t swaps = 0;
      for (uint64_t seed = 0; seed < 40; ++seed) {
        memlayer::MemLayerConfig config;
        config.l2_bytes = 16 * 1024;
        config.max_noise_pages = noise;
        config.rng_seed = seed;
        memlayer::CallStackPager pager(config, key());
        Random frame_rng(123);  // same frame sizes for every seed
        for (int i = 0; i < 12; ++i) {
          const size_t pages = 2 + frame_rng.uniform(5);
          (void)pager.push_frame(pages);
        }
        while (pager.depth() > 0) pager.pop_frame();
        for (const auto& event : pager.swap_events()) {
          true_sizes.push_back(static_cast<double>(event.pages - event.noise_pages));
          observed_sizes.push_back(static_cast<double>(event.pages));
          total_noise += static_cast<double>(event.noise_pages);
          ++swaps;
        }
      }
      // Pearson correlation.
      const size_t n = true_sizes.size();
      double mean_t = 0, mean_o = 0;
      for (size_t i = 0; i < n; ++i) {
        mean_t += true_sizes[i];
        mean_o += observed_sizes[i];
      }
      mean_t /= double(n);
      mean_o /= double(n);
      double cov = 0, var_t = 0, var_o = 0;
      for (size_t i = 0; i < n; ++i) {
        cov += (true_sizes[i] - mean_t) * (observed_sizes[i] - mean_o);
        var_t += (true_sizes[i] - mean_t) * (true_sizes[i] - mean_t);
        var_o += (observed_sizes[i] - mean_o) * (observed_sizes[i] - mean_o);
      }
      const double corr =
          (var_t > 0 && var_o > 0) ? cov / std::sqrt(var_t * var_o) : 1.0;
      table.add_row({std::to_string(noise), bench::fmt(corr, 3),
                     bench::fmt(swaps ? total_noise / double(swaps) : 0, 2)});
    }
    table.print("Ablation 2: pre-evict/pre-load noise vs A5 leakage "
                "(correlation 1.0 = swap sizes fully expose frame sizes)");
  }
  return 0;
}
