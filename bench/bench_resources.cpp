// Reproduces Section VI-A: per-HEVM FPGA resource utilization, HEVMs per
// XCZU15EV chip, and the Hypervisor's memory budget.
#include "bench_common.hpp"
#include "hevm/resource_model.hpp"
#include "hypervisor/hypervisor.hpp"

using namespace hardtape;

int main() {
  bench::Table blocks({"sub-block", "LUTs", "FFs", "BRAM KB"});
  for (const auto& block : hevm::ResourceModel::hevm_blocks()) {
    blocks.add_row({std::string(block.name), std::to_string(block.luts),
                    std::to_string(block.ffs), std::to_string(block.bram_kb)});
  }
  const auto totals = hevm::ResourceModel::hevm_total();
  blocks.add_row({"TOTAL (paper: 103388 / 37104 / 509)", std::to_string(totals.luts),
                  std::to_string(totals.ffs), std::to_string(totals.bram_kb)});
  blocks.print("Section VI-A: per-HEVM resource utilization (Vivado report model)");

  hevm::ResourceModel::Chip chip;
  bench::Table capacity({"resource", "chip capacity", "per HEVM", "fits"});
  capacity.add_row({"LUT", std::to_string(chip.luts), std::to_string(totals.luts),
                    std::to_string(chip.luts / totals.luts)});
  capacity.add_row({"FF", std::to_string(chip.ffs), std::to_string(totals.ffs),
                    std::to_string(chip.ffs / totals.ffs)});
  capacity.add_row({"BRAM KB", std::to_string(chip.bram_kb), std::to_string(totals.bram_kb),
                    std::to_string(chip.bram_kb / totals.bram_kb)});
  capacity.print("XCZU15EV capacity: bottleneck resource determines HEVMs/chip");
  std::printf("\nmax HEVMs per chip: %d (paper: 3, LUT-limited)\n",
              hevm::ResourceModel::max_hevms_per_chip());

  // Hypervisor memory: paper's reference model plus the measured-stack model
  // from an actual booted hypervisor instance.
  hypervisor::Manufacturer manufacturer(1);
  const Bytes puf = {1, 2, 3};
  const char* fw = "fw";
  hypervisor::Hypervisor hyp(puf, manufacturer,
                             BytesView{reinterpret_cast<const uint8_t*>(fw), 2},
                             BytesView{reinterpret_cast<const uint8_t*>(fw), 2},
                             BytesView{reinterpret_cast<const uint8_t*>(fw), 2}, 5);
  const crypto::PrivateKey user = crypto::PrivateKey::from_seed(puf);
  hyp.begin_session(crypto::keccak256("nonce"), user.public_key());

  bench::Table memory({"component", "KB", "paper"});
  memory.add_row({"Hypervisor binary", std::to_string(hyp.binary_kb()), "156"});
  memory.add_row({"peak stack", std::to_string(hyp.peak_stack_kb()), "92"});
  memory.add_row({"total", std::to_string(hyp.binary_kb() + hyp.peak_stack_kb()), "248"});
  memory.add_row({"on-chip budget", "256", "256"});
  memory.print("Hypervisor memory (no heap; fixed 32-byte header parsing)");
  std::printf("\nfits on-chip memory: %s\n", hyp.fits_onchip_memory() ? "yes" : "NO");
  return hyp.fits_onchip_memory() && hevm::ResourceModel::max_hevms_per_chip() == 3 ? 0 : 1;
}
