// Reproduces Table I: the distribution of memory-like sizes per frame,
// storage records per frame, and call depth per transaction over the
// evaluation set (paper: Ethereum Mainnet #19145194-#19145293; here: the
// synthetic evaluation set calibrated to those statistics — DESIGN.md §1).
#include "bench_common.hpp"
#include "evm/interpreter.hpp"
#include "evm/trace.hpp"

using namespace hardtape;

namespace {

struct Buckets {
  // <1k, 1-4k, 4-12k, 12-64k, >64k
  std::array<uint64_t, 5> counts{};
  void add(uint64_t bytes) {
    if (bytes < 1024) counts[0]++;
    else if (bytes < 4 * 1024) counts[1]++;
    else if (bytes < 12 * 1024) counts[2]++;
    else if (bytes < 64 * 1024) counts[3]++;
    else counts[4]++;
  }
  uint64_t total() const {
    uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }
};

}  // namespace

int main() {
  bench::EvaluationSetup setup(/*block_count=*/20, /*txs_per_block=*/50);

  Buckets code, input, memory, ret;
  std::array<uint64_t, 4> key_buckets{};    // <=4, 5-16, 17-64, >64
  std::array<uint64_t, 4> depth_buckets{};  // 1, 2-5, 6-10, >10
  uint64_t frames = 0, txs = 0;

  state::OverlayState overlay(setup.node.world());
  evm::Interpreter interpreter(overlay, setup.node.block_context());
  evm::FrameStatsCollector stats;
  interpreter.set_observer(&stats);

  for (const auto& block : setup.blocks) {
    for (const auto& tx : block) {
      stats.clear();
      interpreter.execute_transaction(tx);
      for (const auto& frame : stats.frames()) {
        ++frames;
        code.add(frame.code_size);
        input.add(frame.input_size);
        memory.add(frame.memory_size);
        ret.add(frame.return_size);
        const uint64_t keys = frame.storage_slots;
        if (keys <= 4) key_buckets[0]++;
        else if (keys <= 16) key_buckets[1]++;
        else if (keys <= 64) key_buckets[2]++;
        else key_buckets[3]++;
      }
      const int depth = std::max(stats.max_depth(), 1);
      if (depth == 1) depth_buckets[0]++;
      else if (depth <= 5) depth_buckets[1]++;
      else if (depth <= 10) depth_buckets[2]++;
      else depth_buckets[3]++;
      ++txs;
    }
  }

  std::printf("Table I reproduction — %llu transactions, %llu execution frames\n",
              static_cast<unsigned long long>(txs), static_cast<unsigned long long>(frames));

  {
    bench::Table table({"size", "code", "input", "memory", "return",
                        "paper(code)", "paper(input)", "paper(mem)", "paper(ret)"});
    const char* labels[5] = {"<1k", "1-4k", "4-12k", "12-64k", ">64k"};
    const char* paper_code[5] = {"9.5%", "25.3%", "39.6%", "25.6%", "0.0%"};
    const char* paper_input[5] = {"95.0%", "4.0%", "0.2%", "0.0%", "0.1%"};
    const char* paper_mem[5] = {"92.7%", "5.7%", "0.6%", "0.0%", "0.1%"};
    const char* paper_ret[5] = {"100.0%", "0.0%", "0.0%", "0.0%", "0.0%"};
    for (int i = 0; i < 5; ++i) {
      table.add_row({labels[i],
                     bench::pct(double(code.counts[size_t(i)]), double(code.total())),
                     bench::pct(double(input.counts[size_t(i)]), double(input.total())),
                     bench::pct(double(memory.counts[size_t(i)]), double(memory.total())),
                     bench::pct(double(ret.counts[size_t(i)]), double(ret.total())),
                     paper_code[i], paper_input[i], paper_mem[i], paper_ret[i]});
    }
    table.print("Table I(a): memory-like size by type, bytes per frame");
  }
  {
    bench::Table table({"keys/frame", "measured", "paper"});
    const char* labels[4] = {"<=4", "5-16", "17-64", ">64"};
    const char* paper[4] = {"79.9%", "19.0%", "0.01%", "1.1%"};
    uint64_t total = 0;
    for (auto c : key_buckets) total += c;
    for (int i = 0; i < 4; ++i) {
      table.add_row({labels[i], bench::pct(double(key_buckets[size_t(i)]), double(total)),
                     paper[i]});
    }
    table.print("Table I(b): storage records accessed per frame");
  }
  {
    bench::Table table({"depth/tx", "measured", "paper"});
    const char* labels[4] = {"1", "2-5", "6-10", ">10"};
    const char* paper[4] = {"40.8%", "52.6%", "6.3%", "0.3%"};
    uint64_t total = 0;
    for (auto c : depth_buckets) total += c;
    for (int i = 0; i < 4; ++i) {
      table.add_row({labels[i], bench::pct(double(depth_buckets[size_t(i)]), double(total)),
                     paper[i]});
    }
    table.print("Table I(c): call depth per transaction");
  }
  std::printf("\nSizing conclusions (paper §IV-B): 64 KB code cache, 4 KB memory-like\n"
              "caches, 1 KB pages, 4 KB world-state cache cover >99%% of frames.\n");
  return 0;
}
