// Service front-door overload sweep (PR 7): open-loop arrivals from four
// tenants pushed through the authenticated framed API, past saturation.
//
// The sweep first CALIBRATES saturation (mean full-security bundle service
// time over the device pool -> capacity in requests per simulated second),
// then drives open-loop load at {0.5, 1.0, 1.5, 2.0}x that capacity. Every
// request carries a deadline; the admission controller sheds what the
// brownout ladder or the per-tenant queues refuse and expires what ages
// out, so devices only ever run requests that can still meet their
// deadline. The load-shedding claim this bench gates: goodput at 2x
// saturation stays within 10% of goodput at saturation — overload degrades
// the refusal rate, not the work the service completes.
//
// Device-churn drill (PR 9, --device-churn): a second sweep over a larger
// fleet where k of N devices are killed/drained MID-LOAD at scheduled sim
// instants. Gates: every admitted bundle reaches a terminal status (zero
// unresolved, zero kDeviceLost — the fleet never fully dies), and goodput
// with k devices alive stays >= 0.8 x (k/N) x the full-fleet figure —
// failover costs re-execution, not proportionally more than the capacity
// actually lost.
//
// All rates and latencies are SIMULATED time (deterministic on any host);
// the engine's worker pool only changes how fast the host evaluates the
// model. Usage: bench_service [--quick] [--requests N] [--device-churn]
// [--out FILE]
// Writes BENCH_service.json, consumed by ci/check_bench.py --mode service.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>

#include "bench_common.hpp"
#include "obs/percentile.hpp"
#include "service/front_door.hpp"

using namespace hardtape;

namespace {

constexpr size_t kDevices = 3;
constexpr size_t kChurnDevices = 6;  // the churn drill's (larger) fleet
constexpr size_t kTenants = 4;

service::EngineConfig engine_config(size_t devices = kDevices) {
  service::EngineConfig config;
  config.security = service::SecurityConfig::full();
  config.num_hevms = devices;
  config.queue_depth = 32;
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 8192,
                                 .max_stash_blocks = 512};
  config.seal_mode = oram::SealMode::kChaChaHmac;
  config.perform_channel_crypto = false;
  return config;
}

service::FrontDoorConfig door_config(size_t devices = kDevices) {
  service::FrontDoorConfig config;
  config.num_devices = devices;
  // Tenant 1 is the shed-first batch class (priority below the brownout
  // floor); tenants 2-4 are the paying classes.
  for (uint64_t t = 1; t <= kTenants; ++t) {
    config.admission.tenants.push_back(service::TenantConfig{
        .tenant_id = t,
        .weight = t == 1 ? 1u : 2u,
        .queue_capacity = 32,
        .max_in_flight = static_cast<uint32_t>(devices),
        .priority = t == 1 ? 1u : 2u,
    });
  }
  config.admission.shed_priority_floor = 2;
  config.admission.shed_depth_enter = 48;
  config.admission.shed_depth_exit = 24;
  config.admission.admit_none_depth_enter = 96;
  config.admission.admit_none_depth_exit = 48;
  return config;
}

crypto::AesKey128 tenant_key(uint8_t tenant) {
  crypto::AesKey128 key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0xb0 + tenant + 7 * i);
  }
  return key;
}

struct SweepPoint {
  double load_factor = 0;
  double offered_rps = 0;
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t completed_ok = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t horizon_ns = 0;
  double goodput_rps = 0;
  bool p99_bounded = false;
};

/// One point of the device-churn drill: k of N devices killed/drained
/// mid-load, every admitted request accounted for at the end.
struct ChurnPoint {
  uint64_t killed = 0;
  uint64_t drained = 0;
  uint64_t k_alive = 0;  ///< devices still in service after the churn ops
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t completed_ok = 0;
  uint64_t retry_exhausted = 0;
  uint64_t device_lost = 0;
  uint64_t unresolved = 0;  ///< admitted but never terminal — must be 0
  uint64_t failovers = 0;
  uint64_t horizon_ns = 0;
  double goodput_rps = 0;
  double min_goodput_rps = 0;  ///< the floor this point was held to
  bool goodput_ok = true;
  bool audit_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool device_churn = false;
  size_t requests_per_point = 160;
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) quick = true;
    if (!std::strcmp(argv[i], "--device-churn")) device_churn = true;
    if (!std::strcmp(argv[i], "--requests") && i + 1 < argc) {
      requests_per_point = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) out_path = argv[i + 1];
  }
  if (quick) requests_per_point = std::min<size_t>(requests_per_point, 48);
  const std::vector<double> load_factors =
      quick ? std::vector<double>{1.0, 2.0}
            : std::vector<double>{0.5, 1.0, 1.5, 2.0};

  bench::EvaluationSetup setup(/*block_count=*/1, /*txs_per_block=*/32);
  const auto txs = setup.all_transactions();
  auto bundle_for = [&](uint64_t id) {
    return std::vector<evm::Transaction>{txs[id % txs.size()]};
  };

  // --- calibration: mean service time -> saturation capacity ------------
  double mean_service_ns = 0;
  {
    service::PreExecutionEngine engine(setup.node, engine_config());
    if (engine.synchronize() != Status::kOk) return 1;
    std::vector<std::vector<evm::Transaction>> probe;
    for (uint64_t i = 0; i < 12; ++i) probe.push_back(bundle_for(i));
    const auto outcomes = engine.execute_serial(probe);
    uint64_t total = 0;
    for (const auto& o : outcomes) total += o.end_to_end_ns;
    mean_service_ns = static_cast<double>(total) / outcomes.size();
  }
  const double capacity_rps = kDevices * 1e9 / mean_service_ns;
  // Per-request budget: several times the healthy p99, so a service at
  // saturation answers well inside it, while at 2x the hopeless tail ages
  // past it and is expired instead of run.
  const uint64_t deadline_ns = static_cast<uint64_t>(8.0 * mean_service_ns);
  std::printf("calibration: mean service %.2f ms, %zu devices -> saturation "
              "%.1f req/s (sim), deadline %.1f ms\n",
              mean_service_ns / 1e6, kDevices, capacity_rps, deadline_ns / 1e6);

  // --- the sweep ---------------------------------------------------------
  std::vector<SweepPoint> sweep;
  for (const double load : load_factors) {
    service::PreExecutionEngine engine(setup.node, engine_config());
    if (engine.synchronize() != Status::kOk) return 1;
    service::FrontDoor door(engine, door_config());
    engine.start();

    std::vector<std::unique_ptr<service::ServiceClient>> clients;
    std::vector<uint64_t> sessions;
    for (uint64_t t = 1; t <= kTenants; ++t) {
      clients.push_back(std::make_unique<service::ServiceClient>(
          door, tenant_key(static_cast<uint8_t>(t))));
      service::RequestFrame open;
      open.verb = service::Verb::kOpenSession;
      open.tenant_id = t;
      auto response = clients.back()->call(open, 0);
      if (!response || response->status != Status::kOk) return 1;
      sessions.push_back(response->session_id);
    }

    SweepPoint point;
    point.load_factor = load;
    point.offered_rps = load * capacity_rps;
    const uint64_t interval_ns =
        static_cast<uint64_t>(1e9 / point.offered_rps);
    struct Issued {
      size_t tenant;
      uint64_t request_id;
      Status verdict;
    };
    std::vector<Issued> issued;
    for (uint64_t r = 0; r < requests_per_point; ++r) {
      const uint64_t now = r * interval_ns;
      const size_t tenant = r % kTenants;  // round-robin arrival mix
      service::RequestFrame submit;
      submit.verb = service::Verb::kSubmit;
      submit.session_id = sessions[tenant];
      submit.request_id = r + 1;
      submit.client_time_ns = now;
      submit.deadline_ns = deadline_ns;
      submit.bundle = bundle_for(r);
      auto response = clients[tenant]->call(submit, now);
      if (!response) return 1;  // the front door always answers
      issued.push_back({tenant, r + 1, response->status});
      ++point.offered;
    }
    door.finish();
    const auto outcomes = engine.drain();
    (void)outcomes;

    std::vector<uint64_t> latencies;
    for (const auto& request : issued) {
      switch (request.verdict) {
        case Status::kOk:
          ++point.admitted;
          break;
        case Status::kOverloaded:
          ++point.shed;
          continue;
        case Status::kDeadlineExceeded:
          ++point.deadline_exceeded;
          continue;
        default:
          continue;
      }
      service::RequestFrame poll;
      poll.verb = service::Verb::kPoll;
      poll.session_id = sessions[request.tenant];
      poll.request_id = request.request_id;
      auto response = clients[request.tenant]->call(poll, door.now_ns());
      if (!response || !response->done) return 1;  // nothing may hang
      if (response->outcome_status == Status::kDeadlineExceeded) {
        ++point.deadline_exceeded;  // aged out in queue, ran nothing
        continue;
      }
      if (response->outcome_status == Status::kOk) {
        ++point.completed_ok;
        latencies.push_back(response->queue_wait_ns + response->exec_ns);
      }
    }
    if (!latencies.empty()) {
      point.p50_ns = obs::percentile(latencies, 50);
      point.p99_ns = obs::percentile(latencies, 99);
      point.p999_ns = obs::percentile(latencies, 99.9);
    }
    point.horizon_ns = door.now_ns();
    point.goodput_rps = point.horizon_ns > 0
                            ? point.completed_ok * 1e9 / point.horizon_ns
                            : 0;
    // Every completed request beat its deadline by construction; "bounded"
    // additionally pins the p99 under deadline + one service time so a
    // dispatch-accounting bug cannot hide behind the deadline filter.
    point.p99_bounded =
        point.p99_ns <
        deadline_ns + static_cast<uint64_t>(2.0 * mean_service_ns);
    sweep.push_back(point);
  }

  bench::Table table({"load", "offered req/s", "admitted", "shed", "expired",
                      "completed", "p50 (ms)", "p99 (ms)", "p999 (ms)",
                      "goodput req/s"});
  for (const auto& p : sweep) {
    table.add_row({bench::fmt(p.load_factor, 2) + "x",
                   bench::fmt(p.offered_rps, 1), std::to_string(p.admitted),
                   std::to_string(p.shed), std::to_string(p.deadline_exceeded),
                   std::to_string(p.completed_ok),
                   bench::fmt(p.p50_ns / 1e6, 2), bench::fmt(p.p99_ns / 1e6, 2),
                   bench::fmt(p.p999_ns / 1e6, 2),
                   bench::fmt(p.goodput_rps, 1)});
  }
  table.print("Front-door overload sweep (simulated timeline)");

  double goodput_at_sat = 0, goodput_at_2x = 0;
  bool all_bounded = true;
  uint64_t shed_at_2x = 0;
  for (const auto& p : sweep) {
    if (p.load_factor == 1.0) goodput_at_sat = p.goodput_rps;
    if (p.load_factor == 2.0) {
      goodput_at_2x = p.goodput_rps;
      shed_at_2x = p.shed + p.deadline_exceeded;
    }
    all_bounded &= p.p99_bounded;
  }
  const double ratio = goodput_at_sat > 0 ? goodput_at_2x / goodput_at_sat : 0;

  // --- device-churn drill (--device-churn) -------------------------------
  // Same open-loop arrival schedule at 1.0x of the FULL churn fleet's
  // capacity for every point; mid-load, k devices are killed/drained. No
  // per-request deadline: with the fleet shrunk the backlog must DRAIN, not
  // expire, so goodput measures surviving capacity and every admitted
  // bundle must still reach a terminal status.
  constexpr double kMinGoodputFraction = 0.8;
  std::vector<ChurnPoint> churn;
  bool churn_ok = true;
  if (device_churn) {
    struct Scenario {
      size_t kill;
      size_t drain;
    };
    // 0%, 33% and 50% of the 6-device fleet churned mid-load.
    const std::vector<Scenario> scenarios{{0, 0}, {1, 1}, {2, 1}};
    const double churn_capacity_rps = kChurnDevices * 1e9 / mean_service_ns;
    const uint64_t interval_ns =
        static_cast<uint64_t>(1e9 / churn_capacity_rps);
    double full_goodput_rps = 0;
    for (const auto& scenario : scenarios) {
      service::PreExecutionEngine engine(setup.node,
                                         engine_config(kChurnDevices));
      if (engine.synchronize() != Status::kOk) return 1;
      service::FrontDoor door(engine, door_config(kChurnDevices));
      engine.start();

      std::vector<std::unique_ptr<service::ServiceClient>> clients;
      std::vector<uint64_t> sessions;
      for (uint64_t t = 1; t <= kTenants; ++t) {
        clients.push_back(std::make_unique<service::ServiceClient>(
            door, tenant_key(static_cast<uint8_t>(t))));
        service::RequestFrame open;
        open.verb = service::Verb::kOpenSession;
        open.tenant_id = t;
        auto response = clients.back()->call(open, 0);
        if (!response || response->status != Status::kOk) return 1;
        sessions.push_back(response->session_id);
      }

      ChurnPoint point;
      point.killed = scenario.kill;
      point.drained = scenario.drain;
      point.k_alive = kChurnDevices - scenario.kill - scenario.drain;
      struct Issued {
        size_t tenant;
        uint64_t request_id;
        Status verdict;
      };
      std::vector<Issued> issued;
      for (uint64_t r = 0; r < requests_per_point; ++r) {
        const uint64_t now = r * interval_ns;
        const size_t tenant = r % kTenants;
        service::RequestFrame submit;
        submit.verb = service::Verb::kSubmit;
        submit.session_id = sessions[tenant];
        submit.request_id = r + 1;
        submit.client_time_ns = now;
        submit.deadline_ns = 0;  // no expiry: the backlog must drain
        submit.bundle = bundle_for(r);
        auto response = clients[tenant]->call(submit, now);
        if (!response) return 1;
        issued.push_back({tenant, r + 1, response->status});
        ++point.offered;
        // The churn script, at deterministic sim instants mid-load:
        // abrupt kills a third of the way in, graceful drains at halfway.
        if (r + 1 == requests_per_point / 3) {
          for (uint32_t d = 0; d < scenario.kill; ++d) door.kill_device(d);
        }
        if (r + 1 == requests_per_point / 2) {
          for (uint32_t d = 0; d < scenario.drain; ++d) {
            door.drain_device(static_cast<uint32_t>(scenario.kill) + d);
          }
        }
      }
      door.finish();
      (void)engine.drain();

      for (const auto& request : issued) {
        if (request.verdict != Status::kOk) {
          ++point.shed;
          continue;
        }
        ++point.admitted;
        service::RequestFrame poll;
        poll.verb = service::Verb::kPoll;
        poll.session_id = sessions[request.tenant];
        poll.request_id = request.request_id;
        auto response = clients[request.tenant]->call(poll, door.now_ns());
        if (!response) return 1;
        if (!response->done) {
          ++point.unresolved;  // invariant (c) violation — gated below
          continue;
        }
        switch (response->outcome_status) {
          case Status::kOk: ++point.completed_ok; break;
          case Status::kRetryExhausted: ++point.retry_exhausted; break;
          case Status::kDeviceLost: ++point.device_lost; break;
          default: break;  // terminal, just not goodput
        }
      }
      point.failovers = engine.metrics_registry()
                            .counter("hardtape_service_failovers_total", "")
                            .value();
      point.horizon_ns = door.now_ns();
      point.goodput_rps = point.horizon_ns > 0
                              ? point.completed_ok * 1e9 / point.horizon_ns
                              : 0;
      point.audit_ok = door.audit_bindings().ok;
      if (point.k_alive == kChurnDevices) {
        full_goodput_rps = point.goodput_rps;
      } else {
        point.min_goodput_rps = kMinGoodputFraction * full_goodput_rps *
                                static_cast<double>(point.k_alive) /
                                static_cast<double>(kChurnDevices);
        point.goodput_ok = point.goodput_rps >= point.min_goodput_rps;
      }
      churn_ok &= point.goodput_ok && point.audit_ok &&
                  point.unresolved == 0 && point.device_lost == 0;
      churn.push_back(point);
    }

    bench::Table churn_table({"alive/total", "killed", "drained", "admitted",
                              "completed", "failovers", "retry-exhausted",
                              "unresolved", "goodput req/s", "floor req/s",
                              "audit"});
    for (const auto& p : churn) {
      churn_table.add_row(
          {std::to_string(p.k_alive) + "/" + std::to_string(kChurnDevices),
           std::to_string(p.killed), std::to_string(p.drained),
           std::to_string(p.admitted), std::to_string(p.completed_ok),
           std::to_string(p.failovers), std::to_string(p.retry_exhausted),
           std::to_string(p.unresolved), bench::fmt(p.goodput_rps, 1),
           bench::fmt(p.min_goodput_rps, 1), p.audit_ok ? "ok" : "FAIL"});
    }
    churn_table.print("Device-churn drill (simulated timeline)");
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"service\",\n  \"quick\": "
       << (quick ? "true" : "false")
       << ",\n  \"requests_per_point\": " << requests_per_point
       << ",\n  \"calibration\": {\"mean_service_ns\": " << mean_service_ns
       << ", \"devices\": " << kDevices
       << ", \"capacity_rps\": " << capacity_rps
       << ", \"deadline_ns\": " << deadline_ns << "},\n  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& p = sweep[i];
    json << "    {\"load_factor\": " << p.load_factor
         << ", \"offered_rps\": " << p.offered_rps
         << ", \"offered\": " << p.offered << ", \"admitted\": " << p.admitted
         << ", \"shed\": " << p.shed
         << ", \"deadline_exceeded\": " << p.deadline_exceeded
         << ", \"completed_ok\": " << p.completed_ok
         << ", \"p50_ns\": " << p.p50_ns << ", \"p99_ns\": " << p.p99_ns
         << ", \"p999_ns\": " << p.p999_ns
         << ", \"horizon_ns\": " << p.horizon_ns
         << ", \"goodput_rps\": " << p.goodput_rps
         << ", \"p99_bounded\": " << (p.p99_bounded ? "true" : "false") << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  if (device_churn) {
    json << "  \"churn\": {\"devices\": " << kChurnDevices
         << ", \"min_goodput_fraction\": " << kMinGoodputFraction
         << ", \"points\": [\n";
    for (size_t i = 0; i < churn.size(); ++i) {
      const auto& p = churn[i];
      json << "    {\"k_alive\": " << p.k_alive << ", \"killed\": " << p.killed
           << ", \"drained\": " << p.drained << ", \"offered\": " << p.offered
           << ", \"admitted\": " << p.admitted << ", \"shed\": " << p.shed
           << ", \"completed_ok\": " << p.completed_ok
           << ", \"retry_exhausted\": " << p.retry_exhausted
           << ", \"device_lost\": " << p.device_lost
           << ", \"unresolved\": " << p.unresolved
           << ", \"failovers\": " << p.failovers
           << ", \"horizon_ns\": " << p.horizon_ns
           << ", \"goodput_rps\": " << p.goodput_rps
           << ", \"min_goodput_rps\": " << p.min_goodput_rps
           << ", \"goodput_ok\": " << (p.goodput_ok ? "true" : "false")
           << ", \"audit_ok\": " << (p.audit_ok ? "true" : "false") << "}"
           << (i + 1 < churn.size() ? "," : "") << "\n";
    }
    json << "  ], \"gates_ok\": " << (churn_ok ? "true" : "false") << "},\n";
  }
  json << "  \"gates\": {\"goodput_at_saturation_rps\": " << goodput_at_sat
       << ", \"goodput_at_2x_rps\": " << goodput_at_2x
       << ", \"goodput_ratio\": " << ratio
       << ", \"refused_at_2x\": " << shed_at_2x
       << ", \"all_p99_bounded\": " << (all_bounded ? "true" : "false")
       << "}\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  std::printf("shape checks: goodput(2x)/goodput(1x) %.3f (need >= 0.9): %s; "
              "p99 bounded at every point: %s; refusals at 2x: %llu\n",
              ratio, ratio >= 0.9 ? "yes" : "NO", all_bounded ? "yes" : "NO",
              static_cast<unsigned long long>(shed_at_2x));
  if (device_churn) {
    std::printf("churn checks: zero unresolved, zero device-lost, audit ok, "
                "goodput >= %.0f%% x (alive/total) x full-fleet: %s\n",
                kMinGoodputFraction * 100, churn_ok ? "yes" : "NO");
  }
  const bool base_ok = ratio >= 0.9 && all_bounded && shed_at_2x > 0;
  return (base_ok && (!device_churn || churn_ok)) ? 0 : 1;
}
