// Wall-clock microbenchmarks (google-benchmark) of the real substrate —
// demonstrating that the cryptography, ORAM and EVM in this repository are
// actual implementations, not stubs. Reported times are host times and are
// NOT the paper's numbers (those come from the simulated cost models; see
// DESIGN.md §1).
//
// Two entry modes:
//   default                      google-benchmark suite; all standard
//                                --benchmark_* flags pass through (CI
//                                perf-smoke relies on this).
//   --compare [--quick] [--out]  fast-dispatch comparison harness: per
//                                opcode-family wall ns/op on the reference
//                                switch loop vs the pre-decoded fast path,
//                                plus the gated geomean speedup consumed by
//                                ci/check_bench.py --mode micro. --quick
//                                shrinks the time budget for CI;
//                                --quick implies --compare.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.hpp"
#include "crypto/aes.hpp"
#include "crypto/keccak.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "evm/assembler.hpp"
#include "evm/interpreter.hpp"
#include "oram/path_oram.hpp"
#include "state/overlay.hpp"
#include "trie/mpt.hpp"
#include "workload/contracts.hpp"

namespace {

using namespace hardtape;

void BM_Keccak256_1KB(benchmark::State& state) {
  const Bytes data = Random(1).bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::keccak256(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Keccak256_1KB);

void BM_Sha256_1KB(benchmark::State& state) {
  const Bytes data = Random(2).bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_AesGcm_Seal1KB(benchmark::State& state) {
  crypto::AesKey128 key{};
  crypto::GcmNonce nonce{};
  const Bytes data = Random(3).bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_gcm_encrypt(key, nonce, data, {}));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AesGcm_Seal1KB);

void BM_EcdsaSign(benchmark::State& state) {
  const crypto::PrivateKey key(u256{12345});
  const H256 digest = crypto::keccak256("benchmark");
  for (auto _ : state) benchmark::DoNotOptimize(key.sign(digest));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const crypto::PrivateKey key(u256{12345});
  const H256 digest = crypto::keccak256("benchmark");
  const auto sig = key.sign(digest);
  const auto pub = key.public_key();
  for (auto _ : state) benchmark::DoNotOptimize(crypto::ecdsa_verify(pub, digest, sig));
}
BENCHMARK(BM_EcdsaVerify);

void BM_U256_MulMod(benchmark::State& state) {
  const u256 a = crypto::keccak256("a").to_u256();
  const u256 b = crypto::keccak256("b").to_u256();
  const u256 m = crypto::keccak256("m").to_u256();
  for (auto _ : state) benchmark::DoNotOptimize(u256::mulmod(a, b, m));
}
BENCHMARK(BM_U256_MulMod);

void BM_MptInsert(benchmark::State& state) {
  Random rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    trie::MerklePatriciaTrie trie;
    std::vector<std::pair<Bytes, Bytes>> kvs;
    for (int i = 0; i < 64; ++i) kvs.emplace_back(rng.bytes(32), rng.bytes(32));
    state.ResumeTiming();
    for (const auto& [k, v] : kvs) trie.put(k, v);
    benchmark::DoNotOptimize(trie.root_hash());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_MptInsert);

void BM_OramAccess(benchmark::State& state) {
  const auto mode = static_cast<oram::SealMode>(state.range(0));
  oram::OramServer server(oram::OramConfig{.block_size = 1024, .capacity = 1024});
  crypto::AesKey128 key{};
  oram::OramClient client(server, key, 1, mode);
  Random rng(4);
  for (uint64_t i = 0; i < 256; ++i) {
    client.write(crypto::keccak256(u256{i}.to_be_bytes_vec()).to_u256(),
                 Bytes(1024, static_cast<uint8_t>(i)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.read(crypto::keccak256(u256{i++ % 256}.to_be_bytes_vec()).to_u256()));
  }
}
BENCHMARK(BM_OramAccess)
    ->Arg(static_cast<int>(oram::SealMode::kAesGcm))
    ->Arg(static_cast<int>(oram::SealMode::kChaChaHmac))
    ->ArgNames({"seal"});

void BM_EvmErc20Transfer(benchmark::State& state) {
  const auto engine = static_cast<evm::EngineKind>(state.range(0));
  state::InMemoryState base;
  Address token, alice, bob;
  token.bytes[19] = 0x10;
  alice.bytes[19] = 0xA1;
  bob.bytes[19] = 0xB0;
  // Minimal transfer loop: reuse the evm_test-style contract via assembler.
  base.put_code(token, evm::assemble(R"(
    PUSH1 0x24 CALLDATALOAD
    CALLER SLOAD
    DUP2 SWAP1 SUB
    CALLER SSTORE
    PUSH1 0x04 CALLDATALOAD
    DUP1 SLOAD DUP3 ADD SWAP1 SSTORE
    PUSH1 0x01 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
  )"));
  base.put_account(alice, state::Account{.balance = u256{1} << 80});
  base.put_storage(token, alice.to_u256(), u256{1} << 70);

  evm::Transaction tx;
  tx.from = alice;
  tx.to = token;
  Bytes data(4, 0);
  append(data, bob.to_u256().to_be_bytes_vec());
  append(data, u256{1}.to_be_bytes_vec());
  tx.data = data;
  tx.gas_limit = 200'000;

  for (auto _ : state) {
    state::OverlayState overlay(base);
    evm::Interpreter interp(overlay, evm::BlockContext{});
    interp.set_engine(engine);
    benchmark::DoNotOptimize(interp.execute_transaction(tx));
  }
}
BENCHMARK(BM_EvmErc20Transfer)
    ->Arg(static_cast<int>(evm::EngineKind::kReference))
    ->Arg(static_cast<int>(evm::EngineKind::kFast))
    ->ArgNames({"engine"});

// ===========================================================================
// Fast-dispatch comparison harness (--compare).
//
// One looping program per opcode family, executed op-for-op identically by
// both engines (asserted before any timing — a perf number from a diverging
// run is meaningless). Gated families exercise what the fast path
// accelerates (ALU dispatch, stack traffic, static-offset fusion, jump
// pre-resolution); report-only families are dominated by shared costs
// (keccak, the state journal, call machinery) and are recorded for context
// but excluded from the geomean gate.
// ===========================================================================

namespace micro {

struct Family {
  std::string name;
  bool gated;
  Bytes code;
  Bytes input;
  uint64_t gas;
};

struct FamilyResult {
  std::string name;
  bool gated = false;
  uint64_t ops = 0;
  double ref_ns_per_op = 0.0;
  double fast_ns_per_op = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

class OpCounter : public evm::ExecutionObserver {
 public:
  void on_step(const StepInfo&) override { ++ops; }
  uint64_t ops = 0;
};

// Wraps `body` (which must be stack-neutral) in a counted loop so family
// programs retire ~iters * body_ops instructions per call.
std::string loop_program(int iters, const std::string& body) {
  std::string src;
  src += "PUSH2 " + std::to_string(iters) + "\n";
  src += "loop:\nJUMPDEST\n";
  src += body;
  // counter -= 1; loop while non-zero (SUB computes top-of-stack minus next,
  // so swap the decrement under the counter first).
  src += "PUSH1 1\nSWAP1\nSUB\nDUP1\nPUSH @loop\nJUMPI\nSTOP\n";
  return src;
}

std::string repeat(const std::string& unit, int times) {
  std::string out;
  for (int i = 0; i < times; ++i) out += unit;
  return out;
}

// Jump chains need one label per hop; generate them numbered.
std::string control_body(int hops) {
  std::string out;
  for (int i = 0; i < hops; ++i) {
    const std::string tag = std::to_string(i);
    out += "PUSH @cj" + tag + "\nJUMP\ncj" + tag + ":\nJUMPDEST\n";
    out += "PUSH1 1\nPUSH @ci" + tag + "\nJUMPI\nci" + tag + ":\nJUMPDEST\n";
  }
  return out;
}

std::vector<Family> build_families(bool quick) {
  const int iters = quick ? 512 : 4096;
  std::vector<Family> families;
  const auto add = [&](const std::string& name, bool gated, const std::string& body,
                       uint64_t gas) {
    families.push_back({name, gated, evm::assemble(loop_program(iters, body)), {}, gas});
  };

  add("arith", true,
      repeat("PUSH1 7\nPUSH1 13\nADD\nPUSH1 3\nMUL\nPUSH1 5\nSUB\n"
             "PUSH1 2\nDIV\nPUSH1 3\nMOD\nPOP\n", 4),
      100'000'000);
  add("bitwise", true,
      repeat("PUSH1 0xF0\nPUSH1 0x0F\nAND\nPUSH1 0xCC\nOR\nPUSH1 0xAA\nXOR\n"
             "NOT\nPUSH1 2\nSHL\nPUSH1 1\nSHR\nPOP\n", 4),
      100'000'000);
  add("stack", true,
      repeat("PUSH1 1\nPUSH1 2\nPUSH1 3\nDUP3\nDUP1\nSWAP2\nPOP\nPOP\n"
             "SWAP1\nPOP\nPOP\nPOP\n", 4),
      100'000'000);
  add("memory-static", true,
      repeat("PUSH1 0x42\nPUSH1 0x00\nMSTORE\nPUSH1 0x00\nMLOAD\n"
             "PUSH1 0x20\nMSTORE\nPUSH1 0x20\nMLOAD\nPOP\n", 4),
      100'000'000);
  add("control", true, control_body(6), 100'000'000);
  add("env", false,
      repeat("ADDRESS\nPOP\nCALLER\nPOP\nCALLVALUE\nPOP\nPC\nPOP\nGAS\nPOP\n"
             "MSIZE\nPOP\nCODESIZE\nPOP\nCALLDATASIZE\nPOP\n", 2),
      100'000'000);
  add("keccak", false, "PUSH1 0x20\nPUSH1 0x00\nKECCAK256\nPOP\n", 100'000'000);
  add("storage", false, "PUSH1 1\nPUSH1 5\nSSTORE\nPUSH1 5\nSLOAD\nPOP\n",
      1'000'000'000);

  // Whole-workload context point: the real ERC-20 transfer path (calldata
  // decode, two storage slots, a log-free return) — storage journal and
  // account bookkeeping dominate, so it is report-only.
  Address bob;
  bob.bytes[19] = 0xB0;
  families.push_back({"erc20-workload", false, workload::erc20_code(),
                      workload::erc20_transfer(bob, u256{1}), 500'000});
  return families;
}

struct RunOutcome {
  evm::VmStatus status;
  uint64_t gas_left;
  Bytes output;
  bool operator==(const RunOutcome&) const = default;
};

Address contract_address() {
  Address a{};
  a.bytes[19] = 0xCC;
  return a;
}

Address caller_address() {
  Address a{};
  a.bytes[19] = 0xAA;
  return a;
}

RunOutcome run_family(const state::InMemoryState& base, const Family& fam,
                      evm::EngineKind engine, evm::ExecutionObserver* obs) {
  state::OverlayState overlay(base);
  evm::Interpreter interp(overlay, evm::BlockContext{});
  interp.set_engine(engine);
  if (obs != nullptr) interp.set_observer(obs);
  evm::Interpreter::Message msg;
  msg.code_address = contract_address();
  msg.recipient = contract_address();
  msg.sender = caller_address();
  msg.origin = caller_address();
  msg.input = fam.input;
  msg.gas = fam.gas;
  msg.depth = 1;
  const evm::CallResult result = interp.call(msg);
  return {result.status, result.gas_left, result.output};
}

// Best-of-reps wall ns for one run: repeats until budget_ns is spent (>= 5
// reps) and keeps the minimum, which is robust against scheduler and
// frequency-scaling interference on shared CI runners.
double time_family(const state::InMemoryState& base, const Family& fam,
                   evm::EngineKind engine, double budget_ns) {
  using clock = std::chrono::steady_clock;
  // Warm-up: first decode + page faults out of the measurement.
  run_family(base, fam, engine, nullptr);
  double best = 0.0, total = 0.0;
  int reps = 0;
  while (reps < 5 || total < budget_ns) {
    const auto t0 = clock::now();
    run_family(base, fam, engine, nullptr);
    const auto t1 = clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    total += ns;
    if (reps == 0 || ns < best) best = ns;
    ++reps;
  }
  return best;
}

int run_compare(bool quick, const std::string& out_path) {
  const double budget_ns = quick ? 1.5e8 : 4e8;  // per engine per family
  const std::vector<Family> families = build_families(quick);

  std::vector<FamilyResult> results;
  double log_sum = 0.0;
  int gated_count = 0;
  bool all_identical = true;

  std::printf("%-16s %10s %12s %12s %9s %6s\n", "family", "ops/run", "ref ns/op",
              "fast ns/op", "speedup", "gated");
  for (const Family& fam : families) {
    state::InMemoryState base;
    base.put_code(contract_address(), fam.code);
    base.put_account(caller_address(), state::Account{.balance = u256{1} << 80});
    if (fam.name == "erc20-workload") {
      base.put_storage(contract_address(), caller_address().to_u256(), u256{1} << 70);
    }

    // Identity precondition: both engines, observed and unobserved, must
    // agree bit-for-bit before any number is recorded.
    OpCounter ref_count, fast_count;
    const RunOutcome ref_obs = run_family(base, fam, evm::EngineKind::kReference, &ref_count);
    const RunOutcome fast_obs = run_family(base, fam, evm::EngineKind::kFast, &fast_count);
    const RunOutcome ref_plain = run_family(base, fam, evm::EngineKind::kReference, nullptr);
    const RunOutcome fast_plain = run_family(base, fam, evm::EngineKind::kFast, nullptr);

    FamilyResult r;
    r.name = fam.name;
    r.gated = fam.gated;
    r.ops = ref_count.ops;
    r.identical = ref_obs == fast_obs && ref_plain == fast_plain &&
                  ref_plain == ref_obs && ref_count.ops == fast_count.ops &&
                  ref_obs.status == evm::VmStatus::kSuccess;
    if (!r.identical) {
      all_identical = false;
      std::fprintf(stderr, "FAIL: %s diverged between engines (status %d/%d, gas %llu/%llu)\n",
                   fam.name.c_str(), static_cast<int>(ref_obs.status),
                   static_cast<int>(fast_obs.status),
                   static_cast<unsigned long long>(ref_obs.gas_left),
                   static_cast<unsigned long long>(fast_obs.gas_left));
    }

    const double ref_best = time_family(base, fam, evm::EngineKind::kReference, budget_ns);
    const double fast_best = time_family(base, fam, evm::EngineKind::kFast, budget_ns);
    r.ref_ns_per_op = ref_best / static_cast<double>(r.ops);
    r.fast_ns_per_op = fast_best / static_cast<double>(r.ops);
    r.speedup = r.fast_ns_per_op > 0 ? r.ref_ns_per_op / r.fast_ns_per_op : 0.0;
    if (r.gated) {
      log_sum += std::log(r.speedup);
      ++gated_count;
    }
    std::printf("%-16s %10llu %12.2f %12.2f %8.2fx %6s\n", r.name.c_str(),
                static_cast<unsigned long long>(r.ops), r.ref_ns_per_op,
                r.fast_ns_per_op, r.speedup, r.gated ? "yes" : "no");
    results.push_back(std::move(r));
  }

  const double geomean = gated_count > 0 ? std::exp(log_sum / gated_count) : 0.0;
  std::printf("\ngeomean speedup over %d gated families: %.2fx (identical: %s)\n",
              gated_count, geomean, all_identical ? "yes" : "NO");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"hardtape-micro-compare-v1\",\n");
  std::fprintf(f, "  \"quick\": %s,\n  \"families\": [\n", quick ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const FamilyResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"gated\": %s, \"ops_per_run\": %llu, "
                 "\"ref_ns_per_op\": %.3f, \"fast_ns_per_op\": %.3f, "
                 "\"speedup\": %.3f, \"identical\": %s}%s\n",
                 r.name.c_str(), r.gated ? "true" : "false",
                 static_cast<unsigned long long>(r.ops), r.ref_ns_per_op,
                 r.fast_ns_per_op, r.speedup, r.identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"geomean_gated_speedup\": %.3f\n}\n", geomean);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}

}  // namespace micro

}  // namespace

int main(int argc, char** argv) {
  bool compare = false, quick = false;
  std::string out = "BENCH_micro_compare.json";
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--compare") {
      compare = true;
    } else if (arg == "--quick") {
      quick = true;
      compare = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (compare) return micro::run_compare(quick, out);

  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
