// Wall-clock microbenchmarks (google-benchmark) of the real substrate —
// demonstrating that the cryptography, ORAM and EVM in this repository are
// actual implementations, not stubs. Reported times are host times and are
// NOT the paper's numbers (those come from the simulated cost models; see
// DESIGN.md §1).
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "crypto/aes.hpp"
#include "crypto/keccak.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "evm/assembler.hpp"
#include "evm/interpreter.hpp"
#include "oram/path_oram.hpp"
#include "state/overlay.hpp"
#include "trie/mpt.hpp"

namespace {

using namespace hardtape;

void BM_Keccak256_1KB(benchmark::State& state) {
  const Bytes data = Random(1).bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::keccak256(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Keccak256_1KB);

void BM_Sha256_1KB(benchmark::State& state) {
  const Bytes data = Random(2).bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_AesGcm_Seal1KB(benchmark::State& state) {
  crypto::AesKey128 key{};
  crypto::GcmNonce nonce{};
  const Bytes data = Random(3).bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_gcm_encrypt(key, nonce, data, {}));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AesGcm_Seal1KB);

void BM_EcdsaSign(benchmark::State& state) {
  const crypto::PrivateKey key(u256{12345});
  const H256 digest = crypto::keccak256("benchmark");
  for (auto _ : state) benchmark::DoNotOptimize(key.sign(digest));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const crypto::PrivateKey key(u256{12345});
  const H256 digest = crypto::keccak256("benchmark");
  const auto sig = key.sign(digest);
  const auto pub = key.public_key();
  for (auto _ : state) benchmark::DoNotOptimize(crypto::ecdsa_verify(pub, digest, sig));
}
BENCHMARK(BM_EcdsaVerify);

void BM_U256_MulMod(benchmark::State& state) {
  const u256 a = crypto::keccak256("a").to_u256();
  const u256 b = crypto::keccak256("b").to_u256();
  const u256 m = crypto::keccak256("m").to_u256();
  for (auto _ : state) benchmark::DoNotOptimize(u256::mulmod(a, b, m));
}
BENCHMARK(BM_U256_MulMod);

void BM_MptInsert(benchmark::State& state) {
  Random rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    trie::MerklePatriciaTrie trie;
    std::vector<std::pair<Bytes, Bytes>> kvs;
    for (int i = 0; i < 64; ++i) kvs.emplace_back(rng.bytes(32), rng.bytes(32));
    state.ResumeTiming();
    for (const auto& [k, v] : kvs) trie.put(k, v);
    benchmark::DoNotOptimize(trie.root_hash());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_MptInsert);

void BM_OramAccess(benchmark::State& state) {
  const auto mode = static_cast<oram::SealMode>(state.range(0));
  oram::OramServer server(oram::OramConfig{.block_size = 1024, .capacity = 1024});
  crypto::AesKey128 key{};
  oram::OramClient client(server, key, 1, mode);
  Random rng(4);
  for (uint64_t i = 0; i < 256; ++i) {
    client.write(crypto::keccak256(u256{i}.to_be_bytes_vec()).to_u256(),
                 Bytes(1024, static_cast<uint8_t>(i)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.read(crypto::keccak256(u256{i++ % 256}.to_be_bytes_vec()).to_u256()));
  }
}
BENCHMARK(BM_OramAccess)
    ->Arg(static_cast<int>(oram::SealMode::kAesGcm))
    ->Arg(static_cast<int>(oram::SealMode::kChaChaHmac))
    ->ArgNames({"seal"});

void BM_EvmErc20Transfer(benchmark::State& state) {
  state::InMemoryState base;
  Address token, alice, bob;
  token.bytes[19] = 0x10;
  alice.bytes[19] = 0xA1;
  bob.bytes[19] = 0xB0;
  // Minimal transfer loop: reuse the evm_test-style contract via assembler.
  base.put_code(token, evm::assemble(R"(
    PUSH1 0x24 CALLDATALOAD
    CALLER SLOAD
    DUP2 SWAP1 SUB
    CALLER SSTORE
    PUSH1 0x04 CALLDATALOAD
    DUP1 SLOAD DUP3 ADD SWAP1 SSTORE
    PUSH1 0x01 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
  )"));
  base.put_account(alice, state::Account{.balance = u256{1} << 80});
  base.put_storage(token, alice.to_u256(), u256{1} << 70);

  evm::Transaction tx;
  tx.from = alice;
  tx.to = token;
  Bytes data(4, 0);
  append(data, bob.to_u256().to_be_bytes_vec());
  append(data, u256{1}.to_be_bytes_vec());
  tx.data = data;
  tx.gas_limit = 200'000;

  for (auto _ : state) {
    state::OverlayState overlay(base);
    evm::Interpreter interp(overlay, evm::BlockContext{});
    benchmark::DoNotOptimize(interp.execute_transaction(tx));
  }
}
BENCHMARK(BM_EvmErc20Transfer);

}  // namespace

BENCHMARK_MAIN();
