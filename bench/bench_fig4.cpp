// Reproduces Figure 4: end-to-end per-transaction time of Geth and HarDTAPE
// under -raw / -E / -ES / -ESO / -full, each transaction as its own bundle.
//
// Paper reference points: Geth ~1 ms-class; -raw = Geth + ~0.5 ms;
// -E adds ~2.9 ms; -ES adds ~80 ms (ECDSA); -ESO adds ~30 ms (storage ORAM);
// -full ~164.4 ms total (code ORAM adds the rest of the ~80 ms ORAM cost).
#include "bench_common.hpp"
#include "hevm/baseline.hpp"

using namespace hardtape;

int main() {
  bench::EvaluationSetup setup(/*block_count=*/2, /*txs_per_block=*/50);
  const auto txs = setup.all_transactions();

  // --- Geth baseline ---
  double geth_total_ms = 0;
  {
    sim::SimClock clock;
    hevm::GethRole geth(setup.node.world(), setup.node.block_context(), clock);
    for (const auto& tx : txs) geth.execute(tx);
    geth_total_ms = clock.now_ms();
  }
  const double geth_mean = geth_total_ms / static_cast<double>(txs.size());

  struct Row {
    std::string name;
    double mean_ms;
    double hevm_ms;
    double crypto_ms;
    double oram_ms;
    double kv_queries;
    double code_queries;
  };
  std::vector<Row> rows;
  rows.push_back({"Geth", geth_mean, geth_mean, 0, 0, 0, 0});

  for (const service::SecurityConfig security :
       {service::SecurityConfig::raw(), service::SecurityConfig::E(),
        service::SecurityConfig::ES(), service::SecurityConfig::ESO(),
        service::SecurityConfig::full()}) {
    service::PreExecutionService service(
        setup.node, bench::default_service_config(security));
    if (service.synchronize() != Status::kOk) {
      std::printf("sync failed for %s\n", std::string(security.name()).c_str());
      return 1;
    }
    Row row{std::string(security.name()), 0, 0, 0, 0, 0, 0};
    uint64_t count = 0;
    for (const auto& tx : txs) {
      const auto outcome = service.pre_execute({tx});  // one tx per bundle
      row.mean_ms += static_cast<double>(outcome.end_to_end_ns) / 1e6;
      row.hevm_ms += static_cast<double>(outcome.hevm_time_ns) / 1e6;
      row.crypto_ms += static_cast<double>(outcome.crypto_time_ns) / 1e6;
      row.oram_ms += static_cast<double>(outcome.query_stats.oram_time_ns) / 1e6;
      row.kv_queries += static_cast<double>(outcome.query_stats.kv_queries);
      row.code_queries += static_cast<double>(outcome.query_stats.code_queries);
      ++count;
    }
    const double n = static_cast<double>(count);
    row.mean_ms /= n;
    row.hevm_ms /= n;
    row.crypto_ms /= n;
    row.oram_ms /= n;
    row.kv_queries /= n;
    row.code_queries /= n;
    rows.push_back(row);
  }

  bench::Table table({"config", "end-to-end ms/tx", "exec ms", "crypto ms", "oram ms",
                      "kv q/tx", "code q/tx", "paper ref"});
  const char* paper[6] = {"(baseline)",       "Geth + ~0.5 ms", "+ ~2.9 ms (AES)",
                          "+ ~80 ms (ECDSA)", "+ ~30 ms (K-V ORAM)",
                          "~164.4 ms total"};
  for (size_t i = 0; i < rows.size(); ++i) {
    table.add_row({rows[i].name, bench::fmt(rows[i].mean_ms, 2),
                   bench::fmt(rows[i].hevm_ms, 2), bench::fmt(rows[i].crypto_ms, 2),
                   bench::fmt(rows[i].oram_ms, 2), bench::fmt(rows[i].kv_queries, 1),
                   bench::fmt(rows[i].code_queries, 1), paper[i]});
  }
  table.print("Figure 4: end-to-end per-transaction time (" +
              std::to_string(txs.size()) + " real-workload txs, 1 tx/bundle)");

  // Deltas, the §VI-C breakdown.
  bench::Table deltas({"step", "measured delta ms", "paper delta"});
  deltas.add_row({"-raw vs Geth", bench::fmt(rows[1].mean_ms - rows[0].mean_ms, 2), "~0.5"});
  deltas.add_row({"-E vs -raw", bench::fmt(rows[2].mean_ms - rows[1].mean_ms, 2), "~2.9"});
  deltas.add_row({"-ES vs -E", bench::fmt(rows[3].mean_ms - rows[2].mean_ms, 2), "~80"});
  deltas.add_row({"-ESO vs -ES", bench::fmt(rows[4].mean_ms - rows[3].mean_ms, 2), "~30"});
  deltas.add_row({"-full vs -ESO", bench::fmt(rows[5].mean_ms - rows[4].mean_ms, 2), "~50"});
  deltas.print("Section VI-C: security-feature overhead breakdown");

  const bool under_budget = rows[5].mean_ms < 600.0;
  std::printf("\n-full mean %.1f ms/tx -> %s the paper's 600 ms user-latency budget.\n",
              rows[5].mean_ms, under_budget ? "within" : "EXCEEDS");
  return under_budget ? 0 : 1;
}
