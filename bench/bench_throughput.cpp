// Multi-worker engine throughput sweep: 1/2/4/8 dedicated HEVMs over the
// mixed evaluation workload, through the concurrent PreExecutionEngine.
//
// Reported throughput is the SIMULATED engine timeline (deterministic on any
// host — see DESIGN.md §1); wall-clock figures are printed as diagnostics of
// the real thread pool only. Every run is checked bit-identical against the
// serial reference before its numbers count.
//
// Usage: bench_throughput [--bundles N] [--txs N] [--out FILE] [--fault-rate R]
// Writes BENCH_throughput.json (machine-readable, consumed by CI perf-smoke).
// Exit 1 if any trace diverges from serial or 4 workers < 2x the 1-worker
// simulated bundle rate.
//
// --fault-rate R > 0 appends a robustness smoke pass (PR 2): the same
// workload through a seeded FaultPlan dropping/delaying/tampering ORAM
// responses at rate R. The pass must resolve EVERY bundle (recovered or
// terminal status — no hangs, no drops) and reports recovered/aborted
// counts plus p99 bundle latency into the JSON. The fault-free sweep and
// its bit-identical-to-serial gate are unaffected.
#include <algorithm>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "faults/fault_plan.hpp"
#include "service/engine.hpp"

using namespace hardtape;

namespace {

struct SweepPoint {
  int workers = 0;
  service::EngineMetrics metrics;
  bool identical_to_serial = false;
};

service::EngineConfig engine_config(int workers) {
  service::EngineConfig config;
  config.security = service::SecurityConfig::full();
  config.num_hevms = workers;
  config.queue_depth = 16;
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 8192,
                                 .max_stash_blocks = 512};
  config.seal_mode = oram::SealMode::kChaChaHmac;
  config.perform_channel_crypto = false;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  size_t bundle_count = 48;
  size_t txs_per_block = 24;
  double fault_rate = 0.0;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (!std::strcmp(argv[i], "--bundles")) bundle_count = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--txs")) txs_per_block = std::strtoull(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--out")) out_path = argv[i + 1];
    if (!std::strcmp(argv[i], "--fault-rate")) fault_rate = std::strtod(argv[i + 1], nullptr);
  }

  bench::EvaluationSetup setup(/*block_count=*/1, txs_per_block);
  const auto txs = setup.all_transactions();
  std::vector<std::vector<evm::Transaction>> bundles;
  for (size_t i = 0; i < bundle_count; ++i) bundles.push_back({txs[i % txs.size()]});

  // Serial reference once; every sweep point is held to it bit-for-bit.
  service::PreExecutionEngine reference_engine(setup.node, engine_config(1));
  if (reference_engine.synchronize() != Status::kOk) return 1;
  const auto reference = reference_engine.execute_serial(bundles);

  std::vector<SweepPoint> sweep;
  for (const int workers : {1, 2, 4, 8}) {
    service::PreExecutionEngine engine(setup.node, engine_config(workers));
    if (engine.synchronize() != Status::kOk) return 1;
    engine.start();
    for (const auto& bundle : bundles) engine.submit(bundle);
    const auto outcomes = engine.drain();

    SweepPoint point;
    point.workers = workers;
    point.identical_to_serial = outcomes.size() == reference.size();
    for (size_t i = 0; point.identical_to_serial && i < outcomes.size(); ++i) {
      point.identical_to_serial =
          service::outcomes_bit_identical(outcomes[i], reference[i]);
    }
    point.metrics = engine.snapshot();
    sweep.push_back(std::move(point));
  }

  const double base = sweep.front().metrics.sim_bundles_per_s;
  bench::Table table({"HEVMs", "sim bundles/s", "speedup", "sim queue wait (ms)",
                      "ORAM stall (ms)", "wall bundles/s", "conc walks", "identical"});
  for (const auto& p : sweep) {
    const auto& m = p.metrics;
    table.add_row({std::to_string(p.workers), bench::fmt(m.sim_bundles_per_s, 2),
                   bench::fmt(base > 0 ? m.sim_bundles_per_s / base : 0, 2) + "x",
                   bench::fmt(double(m.sim_mean_queue_wait_ns) / 1e6, 2),
                   bench::fmt(double(m.sim_oram_serialization_stall_ns) / 1e6, 2),
                   bench::fmt(m.wall_bundles_per_s, 2),
                   std::to_string(m.oram_max_concurrent_walks),
                   p.identical_to_serial ? "yes" : "NO"});
  }
  table.print("Engine throughput sweep (simulated timeline; wall = diagnostics)");

  // Optional robustness smoke pass against a seeded adversary.
  bool faulted_ok = true;
  uint64_t faulted_resolved = 0, faulted_recovered = 0, faulted_aborted = 0;
  uint64_t faulted_unavailable = 0, faulted_injected = 0, faulted_p99_ns = 0;
  if (fault_rate > 0) {
    faults::FaultPlanConfig fault_config;
    fault_config.seed = 0xfa17;
    fault_config.fault_rate = fault_rate;
    fault_config.weight_stale_proof = 0;  // keep the sync pass clean
    faults::FaultPlan plan(fault_config);
    auto config = engine_config(4);
    config.fault_plan = &plan;
    service::PreExecutionEngine engine(setup.node, config);
    if (engine.synchronize() != Status::kOk) return 1;
    engine.start();
    for (const auto& bundle : bundles) engine.submit(bundle);
    const auto outcomes = engine.drain();  // must terminate: no deadlocks
    const auto metrics = engine.snapshot();

    faulted_resolved = outcomes.size();
    faulted_recovered = metrics.bundles_recovered;
    faulted_aborted = metrics.bundles_aborted;
    faulted_unavailable = metrics.bundles_unavailable;
    faulted_injected = metrics.faults_injected;
    // Nearest-rank p99 from the engine's obs::Registry histogram — the
    // hand-rolled index arithmetic this replaced picked the max (rank n)
    // instead of rank ceil(0.99 n) whenever n was a multiple of 100.
    faulted_p99_ns = metrics.sim_p99_bundle_latency_ns;
    // Every faulted bundle must resolve — recovered or explicit terminal
    // status. Silent drops/hangs are the robustness failure mode.
    faulted_ok = faulted_resolved == bundle_count;

    bench::Table fault_table({"fault rate", "injected", "resolved", "recovered",
                              "aborted", "unavailable", "p99 latency (ms)"});
    fault_table.add_row({bench::fmt(fault_rate, 3), std::to_string(faulted_injected),
                         std::to_string(faulted_resolved),
                         std::to_string(faulted_recovered),
                         std::to_string(faulted_aborted),
                         std::to_string(faulted_unavailable),
                         bench::fmt(double(faulted_p99_ns) / 1e6, 2)});
    fault_table.print("Robustness smoke (seeded adversary, 4 HEVMs)");
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"throughput\",\n  \"bundles\": " << bundle_count
       << ",\n  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& m = sweep[i].metrics;
    json << "    {\"workers\": " << sweep[i].workers
         << ", \"sim_bundles_per_s\": " << m.sim_bundles_per_s
         << ", \"sim_makespan_ns\": " << m.sim_makespan_ns
         << ", \"sim_mean_queue_wait_ns\": " << m.sim_mean_queue_wait_ns
         << ", \"sim_oram_serialization_stall_ns\": " << m.sim_oram_serialization_stall_ns
         << ", \"wall_bundles_per_s\": " << m.wall_bundles_per_s
         << ", \"wall_elapsed_ns\": " << m.wall_elapsed_ns
         << ", \"oram_contention_stall_ns\": " << m.oram_contention_stall_ns
         << ", \"oram_shards\": " << m.oram_shard_count
         << ", \"oram_shard_walks\": " << m.oram_shard_walks
         << ", \"oram_shard_migrations\": " << m.oram_shard_migrations
         << ", \"oram_max_concurrent_walks\": " << m.oram_max_concurrent_walks
         << ", \"oram_coalesced_reads\": " << m.oram_coalesced_reads
         << ",\n     \"shards\": [";
    for (size_t s = 0; s < m.oram_shards.size(); ++s) {
      const auto& shard = m.oram_shards[s];
      json << (s > 0 ? ", " : "") << "{\"shard\": " << shard.shard
           << ", \"walks\": " << shard.walks
           << ", \"migrations_in\": " << shard.migrations_in
           << ", \"stall_ns\": " << shard.stall_ns
           << ", \"stall_p50_ns\": " << shard.stall_p50_ns
           << ", \"stall_p99_ns\": " << shard.stall_p99_ns << "}";
    }
    json << "],\n     \"bit_identical_to_serial\": "
         << (sweep[i].identical_to_serial ? "true" : "false") << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ]";
  if (fault_rate > 0) {
    json << ",\n  \"faulted\": {\"fault_rate\": " << fault_rate
         << ", \"faults_injected\": " << faulted_injected
         << ", \"bundles_resolved\": " << faulted_resolved
         << ", \"bundles_recovered\": " << faulted_recovered
         << ", \"bundles_aborted\": " << faulted_aborted
         << ", \"bundles_unavailable\": " << faulted_unavailable
         << ", \"p99_bundle_latency_ns\": " << faulted_p99_ns
         << ", \"all_resolved\": " << (faulted_ok ? "true" : "false") << "}";
  }
  json << "\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  bool all_identical = true;
  for (const auto& p : sweep) all_identical &= p.identical_to_serial;
  double speedup4 = 0;
  for (const auto& p : sweep) {
    if (p.workers == 4 && base > 0) speedup4 = p.metrics.sim_bundles_per_s / base;
  }
  std::printf("shape checks: all sweeps bit-identical to serial: %s; "
              "4-worker sim speedup %.2fx (need >= 2x): %s",
              all_identical ? "yes" : "NO", speedup4,
              speedup4 >= 2.0 ? "yes" : "NO");
  if (fault_rate > 0) {
    std::printf("; faulted pass resolved %llu/%zu bundles: %s",
                static_cast<unsigned long long>(faulted_resolved), bundle_count,
                faulted_ok ? "yes" : "NO");
  }
  std::printf("\n");
  return (all_identical && speedup4 >= 2.0 && faulted_ok) ? 0 : 1;
}
