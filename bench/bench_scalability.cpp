// Reproduces Section VI-D: scalability.
//  - Chip throughput: 3 HEVMs x (1 / mean -full bundle time) vs Ethereum's
//    ~17 tx/s mainnet rate.
//  - ORAM server capacity: supported full-load HEVMs = floor(mean inter-query
//    gap / per-query service time) — the paper's 630 us / 25 us = 25 formula.
//  - Scale-out: throughput vs number of HarDTAPE instances until the ORAM
//    server saturates.
#include "bench_common.hpp"

using namespace hardtape;

int main() {
  bench::EvaluationSetup setup(/*block_count=*/1, /*txs_per_block=*/40);
  const auto txs = setup.all_transactions();

  auto config = bench::default_service_config(service::SecurityConfig::full());
  service::PreExecutionService service(setup.node, config);
  if (service.synchronize() != Status::kOk) return 1;

  uint64_t total_ns = 0, total_queries = 0, total_busy_ns = 0;
  double sum_gap_ns = 0;
  uint64_t gap_count = 0;
  for (const auto& tx : txs) {
    const auto outcome = service.pre_execute({tx});
    total_ns += outcome.end_to_end_ns;
    total_queries += outcome.query_stats.oram_queries;
    total_busy_ns += outcome.hevm_time_ns;
    // Inter-query gaps as seen by the ORAM server from this HEVM.
    const auto& timeline = outcome.observed_timeline;
    for (size_t i = 1; i < timeline.size(); ++i) {
      sum_gap_ns += static_cast<double>(timeline[i].time_ns - timeline[i - 1].time_ns);
      ++gap_count;
    }
  }
  const double mean_ms = static_cast<double>(total_ns) / 1e6 / double(txs.size());
  const double chip_tput = service.throughput_tx_per_s(total_ns / txs.size());
  const double mean_gap_us = gap_count ? sum_gap_ns / double(gap_count) / 1e3 : 0;
  const double service_us =
      static_cast<double>(config.timing.server.service_ns) / 1e3;
  const int supported_hevms = static_cast<int>(mean_gap_us / service_us);

  bench::Table table({"metric", "measured", "paper"});
  table.add_row({"mean -full time (ms/tx)", bench::fmt(mean_ms), "164.4"});
  table.add_row({"chip throughput (tx/s, 3 HEVMs)", bench::fmt(chip_tput), "~18"});
  table.add_row({"Ethereum mainnet rate (tx/s)", "17", "17"});
  table.add_row({"one chip covers mainnet", chip_tput >= 17 ? "yes" : "no", "yes"});
  table.add_row({"ORAM queries/tx", bench::fmt(double(total_queries) / double(txs.size())), "-"});
  table.add_row({"mean inter-query gap (us)", bench::fmt(mean_gap_us), "630"});
  table.add_row({"server service time (us/query)", bench::fmt(service_us), "25"});
  table.add_row({"supported full-load HEVMs", std::to_string(supported_hevms),
                 "25 (=630/25)"});
  table.print("Section VI-D: scalability");

  // Scale-out curve: instances added until the ORAM server saturates.
  const double per_hevm_query_rate = 1e9 / (mean_gap_us * 1e3);  // queries/s per HEVM
  const double server_capacity = 1e9 / double(config.timing.server.service_ns);
  bench::Table scale({"HarDTAPE instances", "HEVMs", "offered tx/s",
                      "ORAM server load", "effective tx/s"});
  for (int instances : {1, 2, 4, 8, 16, 32, 64}) {
    const int hevms = instances * 3;
    const double offered = chip_tput * instances;
    const double query_load = per_hevm_query_rate * hevms;
    const double utilization = query_load / server_capacity;
    const double effective = utilization <= 1.0 ? offered : offered / utilization;
    scale.add_row({std::to_string(instances), std::to_string(hevms),
                   bench::fmt(offered), bench::fmt(100 * utilization) + "%",
                   bench::fmt(effective)});
  }
  scale.print("Scale-out: ORAM server becomes the bottleneck");

  // Queueing behavior (Fig. 3 step 3): bundles queued until an HEVM idles.
  {
    std::vector<uint64_t> durations;
    const uint64_t mean_ns = total_ns / txs.size();
    for (size_t i = 0; i < 60; ++i) durations.push_back(mean_ns);
    bench::Table queue({"arrival rate (tx/s)", "mean wait (ms)", "max queue depth"});
    for (const double rate : {10.0, 17.0, 18.0, 25.0, 40.0}) {
      const auto gap = static_cast<uint64_t>(1e9 / rate);
      const auto sched = service::PreExecutionService::schedule_bundles(
          durations, /*cores=*/3, gap);
      queue.add_row({bench::fmt(rate, 0),
                     bench::fmt(static_cast<double>(sched.mean_wait_ns) / 1e6),
                     std::to_string(sched.max_queue_depth)});
    }
    queue.print("Queueing at the chip: 3 dedicated HEVMs, no context switches");
  }

  std::printf("\nshape checks: chip >= mainnet rate: %s; server supports >= 3 HEVMs"
              " (one chip): %s\n",
              chip_tput >= 17 ? "yes" : "NO", supported_hevms >= 3 ? "yes" : "NO");
  return (chip_tput >= 17 && supported_hevms >= 3) ? 0 : 1;
}
