// Reproduces Figure 5: execution time per operation (log scale) of Geth,
// TSC-VEE and HarDTAPE when all data is found locally (warm caches, no
// security overheads in the loop) — the paper's point is that the three
// platforms are within the same order of magnitude, with Geth slower on the
// ERC-20 Transfer benchmark.
#include <cmath>

#include "bench_common.hpp"
#include "evm/assembler.hpp"
#include "hevm/baseline.hpp"
#include "hevm/hevm_core.hpp"
#include "workload/contracts.hpp"

using namespace hardtape;

namespace {

Address addr(uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

// Arithmetic micro-contract: kOps ADD/MUL pairs in an unrolled body.
Bytes arithmetic_contract(int ops) {
  std::string src = "PUSH1 1 PUSH1 2\n";
  for (int i = 0; i < ops / 2; ++i) src += "DUP2 ADD SWAP1 DUP2 MUL SWAP1\n";
  src += "STOP";
  return evm::assemble(src);
}

// Warm storage micro-contract: repeated SLOAD of one slot.
Bytes storage_contract(int ops) {
  std::string src;
  for (int i = 0; i < ops; ++i) src += "PUSH1 0x05 SLOAD POP\n";
  src += "STOP";
  return evm::assemble(src);
}

struct PlatformTimes {
  double arithmetic_ns_per_op;
  double sload_ns_per_op;
  double transfer_us_per_call;
};

template <typename ExecuteFn>
PlatformTimes measure(ExecuteFn&& execute) {
  constexpr int kArithOps = 2000;
  constexpr int kSloadOps = 500;
  PlatformTimes t{};
  t.arithmetic_ns_per_op =
      static_cast<double>(execute(addr(0x21), Bytes{})) / kArithOps;
  t.sload_ns_per_op = static_cast<double>(execute(addr(0x22), Bytes{})) / kSloadOps;
  t.transfer_us_per_call =
      static_cast<double>(execute(addr(0x23),
                                  workload::erc20_transfer(addr(0x99), u256{1}))) /
      1e3;
  return t;
}

}  // namespace

int main() {
  constexpr int kArithOps = 2000;
  constexpr int kSloadOps = 500;

  state::WorldState world;
  world.set_balance(addr(0xAA), u256{1} << 80);
  world.set_code(addr(0x21), arithmetic_contract(kArithOps));
  world.set_code(addr(0x22), storage_contract(kSloadOps));
  world.set_storage(addr(0x22), u256{5}, u256{1});
  world.set_code(addr(0x23), workload::erc20_code());
  world.set_storage(addr(0x23), addr(0xAA).to_u256(), u256{1} << 40);

  auto make_tx = [](const Address& to, Bytes data) {
    evm::Transaction tx;
    tx.from = addr(0xAA);
    tx.to = to;
    tx.data = std::move(data);
    tx.gas_limit = 20'000'000;
    return tx;
  };

  // Geth: the op-loop benchmarks subtract the per-transaction software
  // overhead (we want ns/op); the Transfer benchmark is a full transaction,
  // where Geth's txpool/signature/journal setup is part of the cost — this
  // is exactly why the paper's Figure 5 shows Geth slower on Transfer.
  const PlatformTimes geth = measure([&](const Address& to, Bytes data) {
    const bool full_tx = to == addr(0x23);
    sim::SimClock clock;
    hevm::GethRole role(world, evm::BlockContext{}, clock);
    role.execute(make_tx(to, std::move(data)));
    return clock.now_ns() - (full_tx ? 0 : sim::GethCostModel{}.ns_tx_overhead);
  });
  const PlatformTimes tsc = measure([&](const Address& to, Bytes data) {
    sim::SimClock clock;
    hevm::TscVeeRole role(world, evm::BlockContext{}, clock);
    role.execute(make_tx(to, std::move(data)));
    return clock.now_ns();
  });
  // HarDTAPE: the HFT scenario keeps the session assigned (warm core, data
  // local after first access), so the one-time core reset is outside the
  // measured window.
  const PlatformTimes hard = measure([&](const Address& to, Bytes data) {
    sim::SimClock clock;
    hevm::HevmCore core(0, clock);
    crypto::AesKey128 key{};
    core.assign(world, evm::BlockContext{}, key, 1);
    clock.reset();  // measure the warmed-up execution only
    core.execute_bundle({make_tx(to, std::move(data))});
    const uint64_t elapsed = clock.now_ns();
    core.release();
    return elapsed;
  });

  bench::Table table({"benchmark", "Geth", "TSC-VEE", "HarDTAPE", "unit", "paper shape"});
  table.add_row({"Arithmetic", bench::fmt(geth.arithmetic_ns_per_op),
                 bench::fmt(tsc.arithmetic_ns_per_op), bench::fmt(hard.arithmetic_ns_per_op),
                 "ns/op", "same order, all fast"});
  table.add_row({"SLOAD (local)", bench::fmt(geth.sload_ns_per_op),
                 bench::fmt(tsc.sload_ns_per_op), bench::fmt(hard.sload_ns_per_op),
                 "ns/op", "same order"});
  table.add_row({"Transfer (ERC-20)", bench::fmt(geth.transfer_us_per_call),
                 bench::fmt(tsc.transfer_us_per_call), bench::fmt(hard.transfer_us_per_call),
                 "us/call", "Geth slower"});
  table.print("Figure 5: per-operation time, all data local (log-scale comparison)");

  // Shape assertions from the paper: no order-of-magnitude blowout between
  // platforms on Arithmetic/SLOAD, Geth slowest on Transfer.
  auto ratio = [](double a, double b) { return a > b ? a / b : b / a; };
  const bool arith_close = ratio(geth.arithmetic_ns_per_op, hard.arithmetic_ns_per_op) < 10 &&
                           ratio(tsc.arithmetic_ns_per_op, hard.arithmetic_ns_per_op) < 10;
  const bool sload_close = ratio(geth.sload_ns_per_op, hard.sload_ns_per_op) < 10;
  const bool geth_slowest_transfer =
      geth.transfer_us_per_call > hard.transfer_us_per_call &&
      geth.transfer_us_per_call > tsc.transfer_us_per_call;
  std::printf("\nshape checks: arithmetic-within-10x=%s sload-within-10x=%s "
              "geth-slowest-on-transfer=%s\n",
              arith_close ? "yes" : "NO", sload_close ? "yes" : "NO",
              geth_slowest_transfer ? "yes" : "NO");
  return (arith_close && sload_close && geth_slowest_transfer) ? 0 : 1;
}
