// Ablations for the ORAM design choices of Section IV-D:
//  1. Block/page size sweep: per-access bandwidth and time vs the number of
//     queries needed per transaction (why 1 KB is the sweet spot).
//  2. Bucket capacity Z vs stash occupancy (why Z=4).
//  3. Pagewise code prefetching on/off: inter-query gap statistics and the
//     visibility of code bursts (the A7 timing channel).
//  4. Storage grouping on/off: queries per transaction with 32-record pages
//     vs one record per page.
#include <cmath>

#include "bench_common.hpp"
#include "hypervisor/prefetch.hpp"
#include "oram/recursive.hpp"

using namespace hardtape;

namespace {

crypto::AesKey128 key() {
  crypto::AesKey128 k{};
  k[3] = 0x77;
  return k;
}

}  // namespace

int main() {
  // --- 1. page size sweep ---
  {
    bench::Table table({"page size", "tree depth (1.1TB)", "path KB/access",
                        "time/access ms", "code q/contract(8KB)", "kv waste"});
    for (const size_t page : {256u, 512u, 1024u, 2048u, 4096u}) {
      // Modeled production tree: 1.1 TB / page blocks.
      const double blocks = 1.1e12 / static_cast<double>(page);
      uint32_t depth = 0;
      while ((1ull << depth) < static_cast<uint64_t>(blocks)) ++depth;
      service::RoutedStateReader::Timing timing;
      timing.modeled_tree_depth = depth;
      timing.page_bytes = page + 60;
      const double path_kb =
          static_cast<double>((depth + 1) * 4 * (page + 60)) / 1024.0;
      // Reuse the service's access-cost formula via a throwaway reader.
      state::WorldState dummy;
      service::RoutedStateReader reader(dummy, nullptr,
                                        service::SecurityConfig::raw(), timing);
      const double ms = static_cast<double>(reader.oram_access_ns()) / 1e6;
      const double code_queries = std::ceil(8192.0 / static_cast<double>(page));
      table.add_row({std::to_string(page) + " B", std::to_string(depth),
                     bench::fmt(path_kb), bench::fmt(ms, 2),
                     bench::fmt(code_queries, 0),
                     bench::fmt(static_cast<double>(page) / 32.0, 0) + "x rec"});
    }
    table.print("Ablation 1: ORAM page size (paper picks 1 KB: balanced path size "
                "vs queries; 32-byte records alone miss the log^2 n bound)");
  }

  // --- 2. bucket capacity Z vs stash occupancy ---
  {
    bench::Table table({"Z", "stash high-water", "overflowed", "server bytes/access"});
    for (const size_t z : {2u, 3u, 4u, 6u, 8u}) {
      oram::OramConfig config{.block_size = 64, .bucket_capacity = z, .capacity = 512,
                              .max_stash_blocks = 300};
      oram::OramServer server(config);
      oram::OramClient client(server, key(), 99, oram::SealMode::kChaChaHmac);
      Random rng(7);
      for (uint64_t i = 0; i < 400; ++i) {
        client.write(crypto::keccak256(u256{i}.to_be_bytes_vec()).to_u256(), Bytes{1});
      }
      for (int i = 0; i < 3000; ++i) {
        client.read(crypto::keccak256(u256{rng.uniform(400)}.to_be_bytes_vec()).to_u256());
      }
      table.add_row({std::to_string(z), std::to_string(client.stash_high_water()),
                     client.stash_overflowed() ? "YES" : "no",
                     std::to_string(server.bytes_per_access())});
    }
    table.print("Ablation 2: bucket capacity Z vs stash occupancy "
                "(Z=4 keeps the stash O(log n) at minimal bandwidth)");
  }

  // --- 3. prefetching on/off ---
  {
    // What can the adversary learn from query *timing*? Two statistics,
    // demand timeline (no prefetching) vs observed timeline (with it):
    //  - type distinguishability: |mean gap before code - mean gap before
    //    K-V| / pooled stddev. High = timing reveals the query type.
    //  - frame-entry displacement: how far each code query moved from its
    //    demand instant. Zero = the adversary learns exactly when each
    //    frame's code fetch happened (contract fingerprinting, §IV-D (3)).
    bench::EvaluationSetup setup(1, 30);
    auto config = bench::default_service_config(service::SecurityConfig::full());
    service::PreExecutionService service(setup.node, config);
    if (service.synchronize() != Status::kOk) return 1;

    auto type_distinguishability = [](const std::vector<hypervisor::QueryEvent>& t) {
      std::vector<double> code_gaps, kv_gaps;
      for (size_t i = 1; i < t.size(); ++i) {
        const double gap = double(t[i].time_ns - t[i - 1].time_ns);
        (t[i].type == oram::PageType::kCode ? code_gaps : kv_gaps).push_back(gap);
      }
      if (code_gaps.empty() || kv_gaps.empty()) return 0.0;
      auto mean = [](const std::vector<double>& v) {
        double s = 0;
        for (double x : v) s += x;
        return s / double(v.size());
      };
      const double mc = mean(code_gaps), mk = mean(kv_gaps);
      double var = 0;
      for (double x : code_gaps) var += (x - mc) * (x - mc);
      for (double x : kv_gaps) var += (x - mk) * (x - mk);
      const double sd = std::sqrt(var / double(code_gaps.size() + kv_gaps.size()));
      return sd > 0 ? std::abs(mc - mk) / sd : 0.0;
    };

    double dist_demand = 0, dist_observed = 0, displacement_ms = 0;
    uint64_t code_events = 0;
    int measured = 0;
    for (const auto& tx : setup.all_transactions()) {
      const auto outcome = service.pre_execute({tx});
      const auto& demand = outcome.query_stats.demand_timeline;
      const auto& observed = outcome.observed_timeline;
      if (demand.size() < 4) continue;
      dist_demand += type_distinguishability(demand);
      dist_observed += type_distinguishability(observed);
      // Displacement of code queries (observed preserves multiset of events;
      // match code queries in order).
      std::vector<uint64_t> demand_code, observed_code;
      for (const auto& e : demand)
        if (e.type == oram::PageType::kCode) demand_code.push_back(e.time_ns);
      for (const auto& e : observed)
        if (e.type == oram::PageType::kCode) observed_code.push_back(e.time_ns);
      for (size_t i = 0; i < demand_code.size() && i < observed_code.size(); ++i) {
        displacement_ms += std::abs(double(observed_code[i]) - double(demand_code[i])) / 1e6;
        ++code_events;
      }
      ++measured;
    }
    bench::Table table({"metric", "no prefetch", "with prefetch"});
    table.add_row({"type distinguishability (gap z-score)",
                   bench::fmt(dist_demand / measured, 2),
                   bench::fmt(dist_observed / measured, 2)});
    table.add_row({"code-fetch displacement (ms, mean)", "0.00",
                   bench::fmt(displacement_ms / double(code_events), 2)});
    table.print("Ablation 3: pagewise code prefetching (paper §IV-D problem 3) — "
                "prefetch decouples code fetches from frame entry");
    std::printf("txs measured: %d, code queries: %llu\n", measured,
                static_cast<unsigned long long>(code_events));
  }

  // --- 4. storage grouping on/off ---
  {
    bench::EvaluationSetup setup(1, 30);
    // Grouped (the design): the service's per-bundle page cache makes all
    // records of a group cost one query. Ungrouped: every record is its own
    // query (count distinct slots instead of distinct groups).
    auto config = bench::default_service_config(service::SecurityConfig::ESO());
    service::PreExecutionService service(setup.node, config);
    if (service.synchronize() != Status::kOk) return 1;
    uint64_t grouped_queries = 0, ungrouped_queries = 0, txs = 0;
    for (const auto& tx : setup.all_transactions()) {
      const auto outcome = service.pre_execute({tx});
      grouped_queries += outcome.query_stats.kv_queries;
      // Without grouping each local (cache-hit) read would be its own query.
      ungrouped_queries +=
          outcome.query_stats.kv_queries + outcome.query_stats.local_reads;
      ++txs;
    }
    bench::Table table({"strategy", "K-V ORAM queries/tx"});
    table.add_row({"32-record group pages (paper)",
                   bench::fmt(double(grouped_queries) / double(txs))});
    table.add_row({"one record per block",
                   bench::fmt(double(ungrouped_queries) / double(txs))});
    table.print("Ablation 4: storage-record grouping (consecutive Solidity slots "
                "share a page => grouping acts as a prefetch)");
  }
  // --- 5. recursive position map (paper §II-C) ---
  {
    constexpr size_t kBlocks = 2048;
    // Plain client: O(n) on-chip position map.
    oram::OramServer flat_server(
        oram::OramConfig{.block_size = 64, .capacity = kBlocks});
    oram::OramClient flat(flat_server, key(), 1, oram::SealMode::kChaChaHmac);
    for (uint64_t i = 0; i < kBlocks; ++i) {
      flat.write(crypto::keccak256(u256{i}.to_be_bytes_vec()).to_u256(), Bytes{1});
    }
    // Recursive client: position map in a second ORAM.
    oram::RecursiveOramClient recursive(
        oram::RecursiveOramConfig{.block_size = 64, .capacity = kBlocks,
                                  .map_entries_per_block = 128},
        key(), 2, oram::SealMode::kChaChaHmac);
    for (uint64_t i = 0; i < kBlocks; ++i) recursive.write(i, Bytes{1});
    const uint64_t d0 = recursive.data_accesses(), m0 = recursive.map_accesses();
    for (uint64_t i = 0; i < 500; ++i) recursive.read(i % kBlocks);

    bench::Table table({"design", "on-chip position entries", "accesses per query"});
    table.add_row({"flat position map", std::to_string(flat.block_count()), "1"});
    table.add_row({"recursive (1 level)",
                   std::to_string(recursive.onchip_position_entries()),
                   bench::fmt(double((recursive.data_accesses() - d0) +
                                     (recursive.map_accesses() - m0)) / 500.0, 1)});
    table.print("Ablation 5: recursive position map (paper §II-C) — on-chip state "
                "shrinks ~100x for 2x the accesses");
  }
  return 0;
}
