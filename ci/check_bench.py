#!/usr/bin/env python3
"""Perf-regression gate over the bench JSON reports (CI perf-gate jobs).

Three modes, selected by --mode (default: throughput):

throughput — BENCH_throughput.json. Checks, in order:
  1. correctness precondition — every sweep point ran bit-identical to the
     serial reference (a perf number from a wrong run is meaningless);
  2. wall scaling — wall bundles/s at the highest worker count must be at
     least --min-wall-scaling x the 1-worker figure. This is the "ORAM wall
     is broken" gate: it is self-normalizing (a slow runner slows both ends
     of the ratio), so it needs no wall baseline;
  3. sim regression — simulated bundles/s per sweep point must not fall
     more than --tolerance below the committed baseline. The simulated
     timeline is deterministic on any host, so this comparison is exact
     across machines;
  4. wall regression — same comparison for wall bundles/s, but only for
     baseline entries with a recorded (non-zero) wall figure. 0 is the
     "no baseline yet" sentinel: wall numbers are only ever recorded from a
     CI runner, never from a developer machine;
  5. shard stalls — the per-shard walk-lock wait p50 at the highest worker
     count must stay under --max-stall-p50-ns.

service — BENCH_service.json (the front-door overload sweep). Checks:
  1. load shedding — goodput at 2x saturation must be at least
     --min-goodput-ratio of goodput at saturation (overload must degrade
     the refusal rate, not completed work);
  2. bounded tails — every sweep point reported p99_bounded (admitted p99
     under the deadline budget);
  3. refusals engaged — the 2x point actually shed/expired something, so
     the gate cannot pass by never reaching overload;
  4. goodput regression — goodput at saturation within --tolerance of the
     committed baseline (simulated, so exact across machines);
  5. device churn (only when the report has a 'churn' section, i.e. the
     bench ran --device-churn) — at every churn point: zero unresolved
     bundles (every admitted bundle reached a terminal status), zero
     device-lost resolutions (the fleet never fully died), the binding
     audit held (no per-device overlap, no binding outliving its device),
     and goodput with k of N devices alive at least
     --min-churn-goodput-frac x (k/N) x the full-fleet figure. The
     full-fleet churn goodput is also compared against the committed
     baseline at --tolerance when the baseline recorded one.

micro — BENCH_micro_compare.json (bench_micro --compare: reference switch
  loop vs fast-dispatch engine, wall ns/opcode per family). Checks:
  1. identity precondition — every family ran bit-identical on both engines
     (status, gas remainder, output, retired-op count); a speedup from a
     diverging run is meaningless;
  2. geomean floor — the geomean speedup over the gated families must be at
     least --min-micro-speedup. The ratio is runner-self-normalizing (both
     engines run on the same host), so no wall baseline is needed;
  3. per-family regression — each gated family's speedup must stay within
     --tolerance of the committed baseline ratio (0 = no-baseline sentinel).

crash — BENCH_crash.json (bench_crash, typically --paged --scale 10: the
  big-state crash drill over the paged backend). Needs no baseline; every
  check is self-contained in the report:
  1. invariants — the bench's own R1-R6 verdict ('ok') and a zero per-trial
     violation count;
  2. coverage — at least --min-recoverable trials recovered a usable image
     (a sweep that only ever hit empty images proves nothing);
  3. warm wins — aggregate warm-restart speedup over cold re-sync at least
     --min-warm-speedup;
  and when the report ran --paged (enforced by --require-paged in CI):
  4. memory-bounded — measured peak pool bytes within the analytic budget,
     and the budget strictly below the full serialized image (the drill ran
     with less RAM than the state);
  5. incremental checkpoints — the newest checkpoint cost at most
     --max-incremental-frac of the full image, with at least two
     checkpoints written (so the newest one is a CoW delta, not the
     initial full-sync image);
  6. determinism — the 1-worker and 8-worker rehearsals produced
     bit-identical durable images.

The baseline defaults to bench/baselines/<mode>.json next to this script's
repo; --baseline overrides it (crash mode takes no baseline). A missing or
malformed baseline fails with a one-line message and exit 2 — never a
traceback.

Writes a markdown delta table to --summary (append mode; pass
$GITHUB_STEP_SUMMARY) and always prints it to stdout. Exit 1 on any gate
failure, 2 on malformed input.
"""

import argparse
import json
import os
import sys


def fail_input(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load(path, role):
    """Reads a report; any problem is a one-line exit-2 message, never a
    traceback (a broken baseline must read as 'fix the baseline', not as a
    crashed gate)."""
    if not os.path.exists(path):
        hint = (" (pass --baseline, or commit the default baseline file)"
                if role == "baseline" else "")
        fail_input(f"{role} not found: {path}{hint}")
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        fail_input(f"cannot read {role} {path}: {e}")
    except json.JSONDecodeError as e:
        fail_input(f"{role} {path} is not valid JSON: {e}")
    if not isinstance(data, dict):
        fail_input(f"{role} {path}: expected a JSON object at top level, "
                   f"got {type(data).__name__}")
    return data


def sweep_points(report, path, role, key_field):
    sweep = report.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        fail_input(f"{role} {path}: 'sweep' must be a non-empty array")
    points = {}
    for i, point in enumerate(sweep):
        if not isinstance(point, dict) or key_field not in point:
            fail_input(f"{role} {path}: sweep[{i}] must be an object with "
                       f"a '{key_field}' field")
        points[point[key_field]] = point
    return points


def check_throughput(args):
    current = sweep_points(load(args.current, "current report"),
                           args.current, "current report", "workers")
    baseline = sweep_points(load(args.baseline, "baseline"),
                            args.baseline, "baseline", "workers")
    failures = []
    rows = []

    # 1. Correctness precondition.
    for workers, point in sorted(current.items()):
        if not point.get("bit_identical_to_serial", False):
            failures.append(f"{workers}-worker run diverged from the serial reference")

    # 2. Wall scaling ratio.
    lo, hi = min(current), max(current)
    wall_lo = current[lo].get("wall_bundles_per_s", 0.0)
    wall_hi = current[hi].get("wall_bundles_per_s", 0.0)
    scaling = wall_hi / wall_lo if wall_lo > 0 else 0.0
    if args.min_wall_scaling > 0:
        verdict = "ok" if scaling >= args.min_wall_scaling else "FAIL"
        rows.append(("wall scaling", f"{hi}w/{lo}w", f"{scaling:.2f}x",
                     f">= {args.min_wall_scaling:.2f}x", verdict))
        if verdict == "FAIL":
            failures.append(
                f"wall scaling {scaling:.2f}x ({wall_lo:.1f} -> {wall_hi:.1f} bundles/s) "
                f"below {args.min_wall_scaling:.2f}x: the ORAM wall is back")

    # 3 + 4. Regression vs committed baseline.
    for workers in sorted(baseline):
        if workers not in current:
            failures.append(f"baseline has {workers} workers but current sweep does not")
            continue
        for key, label in (("sim_bundles_per_s", "sim"), ("wall_bundles_per_s", "wall")):
            base = baseline[workers].get(key, 0.0)
            if base <= 0:
                continue  # 0 = no-baseline sentinel (see module docstring)
            cur = current[workers].get(key, 0.0)
            delta = (cur - base) / base
            floor = base * (1.0 - args.tolerance)
            verdict = "ok" if cur >= floor else "FAIL"
            rows.append((f"{label} bundles/s", f"{workers}w",
                         f"{cur:.2f} (base {base:.2f}, {delta:+.1%})",
                         f">= {floor:.2f}", verdict))
            if verdict == "FAIL":
                failures.append(
                    f"{label} bundles/s at {workers} workers regressed {delta:+.1%} "
                    f"vs baseline (> {args.tolerance:.0%} allowed)")

    # 5. Per-shard stall p50 at max workers.
    if args.max_stall_p50_ns > 0:
        shards = current[hi].get("shards", [])
        worst = max((s.get("stall_p50_ns", 0) for s in shards), default=0)
        verdict = "ok" if worst <= args.max_stall_p50_ns else "FAIL"
        rows.append(("shard stall p50", f"{hi}w worst", f"{worst} ns",
                     f"<= {args.max_stall_p50_ns:.0f} ns", verdict))
        if verdict == "FAIL":
            failures.append(
                f"worst per-shard stall p50 at {hi} workers is {worst} ns "
                f"(> {args.max_stall_p50_ns:.0f}): walks are queueing again")

    return rows, failures


def check_service(args):
    report = load(args.current, "current report")
    current = sweep_points(report, args.current, "current report", "load_factor")
    gates = report.get("gates")
    if not isinstance(gates, dict):
        fail_input(f"current report {args.current}: missing 'gates' object")
    base_report = load(args.baseline, "baseline")
    base_gates = base_report.get("gates")
    if not isinstance(base_gates, dict):
        fail_input(f"baseline {args.baseline}: missing 'gates' object")

    failures = []
    rows = []

    # 1. Goodput must survive 2x overload.
    ratio = gates.get("goodput_ratio", 0.0)
    verdict = "ok" if ratio >= args.min_goodput_ratio else "FAIL"
    rows.append(("goodput ratio", "2x/1x", f"{ratio:.3f}",
                 f">= {args.min_goodput_ratio:.2f}", verdict))
    if verdict == "FAIL":
        failures.append(
            f"goodput at 2x saturation is {ratio:.3f} of the saturation figure "
            f"(need >= {args.min_goodput_ratio:.2f}): shedding is not protecting goodput")

    # 2. Tails stay bounded at every load point.
    for load_factor, point in sorted(current.items()):
        bounded = point.get("p99_bounded", False)
        rows.append(("p99 bounded", f"{load_factor}x",
                     f"{point.get('p99_ns', 0) / 1e6:.1f} ms",
                     "under deadline budget", "ok" if bounded else "FAIL"))
        if not bounded:
            failures.append(f"admitted p99 at {load_factor}x exceeded the deadline budget")

    # 3. The overload point must actually refuse work.
    refused = gates.get("refused_at_2x", 0)
    verdict = "ok" if refused > 0 else "FAIL"
    rows.append(("refusals at 2x", "shed+expired", str(refused), "> 0", verdict))
    if verdict == "FAIL":
        failures.append("the 2x point refused nothing: the sweep never reached overload")

    # 4. Saturation goodput vs the committed baseline (sim-deterministic).
    base = base_gates.get("goodput_at_saturation_rps", 0.0)
    if base > 0:
        cur = gates.get("goodput_at_saturation_rps", 0.0)
        delta = (cur - base) / base
        floor = base * (1.0 - args.tolerance)
        verdict = "ok" if cur >= floor else "FAIL"
        rows.append(("goodput req/s", "1x",
                     f"{cur:.2f} (base {base:.2f}, {delta:+.1%})",
                     f">= {floor:.2f}", verdict))
        if verdict == "FAIL":
            failures.append(
                f"saturation goodput regressed {delta:+.1%} vs baseline "
                f"(> {args.tolerance:.0%} allowed)")

    # 5. Device-churn drill (present only when the bench ran --device-churn).
    churn = report.get("churn")
    if churn is not None:
        points = churn.get("points") if isinstance(churn, dict) else None
        n = churn.get("devices", 0) if isinstance(churn, dict) else 0
        if not isinstance(points, list) or not points or n <= 0:
            fail_input(f"current report {args.current}: 'churn' must be an "
                       f"object with 'devices' and a non-empty 'points' array")
        full = next((p for p in points if p.get("k_alive") == n), None)
        if full is None:
            fail_input(f"current report {args.current}: churn points are "
                       f"missing the full-fleet (k_alive == devices) reference")
        full_goodput = full.get("goodput_rps", 0.0)
        for point in points:
            k = point.get("k_alive", 0)
            label = f"{k}/{n} alive"
            unresolved = point.get("unresolved", 0)
            verdict = "ok" if unresolved == 0 else "FAIL"
            rows.append(("churn unresolved", label, str(unresolved), "== 0",
                         verdict))
            if verdict == "FAIL":
                failures.append(
                    f"churn at {label}: {unresolved} admitted bundles never "
                    f"reached a terminal status")
            lost = point.get("device_lost", 0)
            verdict = "ok" if lost == 0 else "FAIL"
            rows.append(("churn lost bundles", label, str(lost), "== 0",
                         verdict))
            if verdict == "FAIL":
                failures.append(
                    f"churn at {label}: {lost} bundles resolved device-lost "
                    f"with serviceable devices remaining")
            audit = point.get("audit_ok", False)
            verdict = "ok" if audit else "FAIL"
            rows.append(("churn binding audit", label,
                         "held" if audit else "violated",
                         "no overlap, no orphan binding", verdict))
            if verdict == "FAIL":
                failures.append(f"churn at {label}: the binding/lifecycle "
                                f"audit found a violation")
            if k < n and full_goodput > 0:
                floor = args.min_churn_goodput_frac * full_goodput * k / n
                cur = point.get("goodput_rps", 0.0)
                verdict = "ok" if cur >= floor else "FAIL"
                rows.append(("churn goodput", label, f"{cur:.2f} req/s",
                             f">= {floor:.2f}", verdict))
                if verdict == "FAIL":
                    failures.append(
                        f"goodput with {label} is {cur:.2f} req/s, below "
                        f"{args.min_churn_goodput_frac:.0%} x (k/N) x "
                        f"full-fleet ({floor:.2f}): failover is costing more "
                        f"than the capacity lost")
        # Full-fleet churn goodput vs the committed baseline, when recorded.
        base_churn = base_report.get("churn")
        if isinstance(base_churn, dict):
            base_full = next(
                (p.get("goodput_rps", 0.0)
                 for p in base_churn.get("points", [])
                 if p.get("k_alive") == base_churn.get("devices")), 0.0)
            if base_full > 0:
                delta = (full_goodput - base_full) / base_full
                floor = base_full * (1.0 - args.tolerance)
                verdict = "ok" if full_goodput >= floor else "FAIL"
                rows.append(("churn goodput", f"{n}/{n} alive",
                             f"{full_goodput:.2f} (base {base_full:.2f}, "
                             f"{delta:+.1%})", f">= {floor:.2f}", verdict))
                if verdict == "FAIL":
                    failures.append(
                        f"full-fleet churn goodput regressed {delta:+.1%} vs "
                        f"baseline (> {args.tolerance:.0%} allowed)")

    return rows, failures


def micro_families(report, path, role):
    families = report.get("families")
    if not isinstance(families, list) or not families:
        fail_input(f"{role} {path}: 'families' must be a non-empty array")
    out = {}
    for i, fam in enumerate(families):
        if not isinstance(fam, dict) or "name" not in fam:
            fail_input(f"{role} {path}: families[{i}] must be an object with a 'name'")
        out[fam["name"]] = fam
    return out


def check_micro(args):
    report = load(args.current, "current report")
    current = micro_families(report, args.current, "current report")
    baseline = micro_families(load(args.baseline, "baseline"),
                              args.baseline, "baseline")
    failures = []
    rows = []

    # 1. Identity precondition: both engines bit-identical on every family.
    for name, fam in current.items():
        if not fam.get("identical", False):
            failures.append(f"family '{name}' diverged between the reference and "
                            f"fast engines: the speedup is meaningless")

    # 2. Geomean floor over the gated families (self-normalizing ratio).
    geomean = report.get("geomean_gated_speedup", 0.0)
    if args.min_micro_speedup > 0:
        verdict = "ok" if geomean >= args.min_micro_speedup else "FAIL"
        rows.append(("geomean speedup", "gated", f"{geomean:.2f}x",
                     f">= {args.min_micro_speedup:.2f}x", verdict))
        if verdict == "FAIL":
            failures.append(
                f"gated geomean speedup {geomean:.2f}x is below "
                f"{args.min_micro_speedup:.2f}x: the fast path lost its edge")

    # 3. Per-family regression vs the committed baseline ratio.
    for name in sorted(baseline):
        base = baseline[name].get("speedup", 0.0)
        if base <= 0:
            continue  # 0 = no-baseline sentinel (report-only family)
        if name not in current:
            failures.append(f"baseline has family '{name}' but current report does not")
            continue
        cur = current[name].get("speedup", 0.0)
        delta = (cur - base) / base
        floor = base * (1.0 - args.tolerance)
        verdict = "ok" if cur >= floor else "FAIL"
        rows.append((f"{name} speedup", "ref/fast",
                     f"{cur:.2f}x (base {base:.2f}x, {delta:+.1%})",
                     f">= {floor:.2f}x", verdict))
        if verdict == "FAIL":
            failures.append(
                f"family '{name}' speedup {cur:.2f}x fell below "
                f"{floor:.2f}x (baseline {base:.2f}x - {args.tolerance:.0%})")

    return rows, failures


def check_crash(args):
    report = load(args.current, "current report")
    failures = []
    rows = []

    # 1. The bench's own invariant verdict (R1-R6 + its paged self-checks).
    ok = report.get("ok", False)
    trials = report.get("trials")
    if not isinstance(trials, list) or not trials:
        fail_input(f"current report {args.current}: 'trials' must be a "
                   f"non-empty array")
    violations = sum(t.get("violations", 0) for t in trials)
    verdict = "ok" if ok and violations == 0 else "FAIL"
    rows.append(("invariants R1-R6", f"{len(trials)} trials",
                 f"{violations} violations", "ok == true, 0 violations",
                 verdict))
    if verdict == "FAIL":
        failures.append(
            f"crash drill reported ok={str(ok).lower()} with {violations} "
            f"invariant violations across {len(trials)} trials")

    # 2. Enough trials actually recovered an image.
    recoverable = report.get("recoverable_trials", 0)
    verdict = "ok" if recoverable >= args.min_recoverable else "FAIL"
    rows.append(("recoverable trials", "sweep", str(recoverable),
                 f">= {args.min_recoverable}", verdict))
    if verdict == "FAIL":
        failures.append(
            f"only {recoverable} trials recovered a usable image "
            f"(need >= {args.min_recoverable}): the sweep proves nothing")

    # 3. Warm restart must beat cold re-sync in aggregate.
    speedup = report.get("warm_speedup", 0.0)
    if args.min_warm_speedup > 0 and recoverable > 0:
        verdict = "ok" if speedup >= args.min_warm_speedup else "FAIL"
        rows.append(("warm speedup", "aggregate", f"{speedup:.2f}x",
                     f">= {args.min_warm_speedup:.2f}x", verdict))
        if verdict == "FAIL":
            failures.append(
                f"warm recovery speedup {speedup:.2f}x is below "
                f"{args.min_warm_speedup:.2f}x: the journal is not buying "
                f"its availability")

    # 4-6. Paged-mode gates (memory-bounded operation + CoW checkpoints).
    paged = report.get("paged", False)
    if args.require_paged and not paged:
        failures.append("the report did not run --paged but the gate "
                        "requires it (wrong bench invocation?)")
    if paged:
        budget = report.get("pool_budget_bytes", 0)
        peak = report.get("peak_pool_bytes", 0)
        full = report.get("full_image_bytes", 0)
        verdict = "ok" if 0 < peak <= budget else "FAIL"
        rows.append(("pool peak", f"scale {report.get('scale', '?')}x",
                     f"{peak} B", f"0 < peak <= {budget} B", verdict))
        if verdict == "FAIL":
            failures.append(
                f"measured pool peak {peak} B violates the analytic budget "
                f"{budget} B (or no pool activity was recorded)")
        verdict = "ok" if 0 < budget < full else "FAIL"
        rows.append(("memory bound", "budget vs state", f"{budget} B",
                     f"< full image {full} B", verdict))
        if verdict == "FAIL":
            failures.append(
                f"pool budget {budget} B is not below the full image "
                f"{full} B: the drill never ran memory-bounded")

        ckpts = report.get("checkpoints_written", 0)
        incr = report.get("incremental_ckpt_bytes", 0)
        ceiling = args.max_incremental_frac * full
        verdict = ("ok" if ckpts >= 2 and 0 < incr <= ceiling else "FAIL")
        rows.append(("incremental ckpt", f"{ckpts} written", f"{incr} B",
                     f"<= {args.max_incremental_frac:.0%} of full image "
                     f"({ceiling:.0f} B), >= 2 ckpts", verdict))
        if verdict == "FAIL":
            failures.append(
                f"newest incremental checkpoint cost {incr} B with {ckpts} "
                f"checkpoints written (need >= 2 and <= "
                f"{args.max_incremental_frac:.0%} of the {full} B image): "
                f"checkpoints are not CoW deltas")

        identical = report.get("workers_identical", False)
        verdict = "ok" if identical else "FAIL"
        rows.append(("worker determinism", "1w vs 8w image",
                     "identical" if identical else "DIVERGED",
                     "bit-identical", verdict))
        if not identical:
            failures.append("the 8-worker rehearsal produced a different "
                            "durable image than the 1-worker rehearsal")

    return rows, failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", choices=("throughput", "service", "micro", "crash"),
                    default="throughput",
                    help="which bench report to gate (default: throughput)")
    ap.add_argument("--current", required=True, help="bench JSON from this run")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline JSON (default: bench/baselines/<mode>.json)")
    ap.add_argument("--min-wall-scaling", type=float, default=2.0,
                    help="[throughput] min wall bundles/s ratio, max workers vs 1 (0 disables)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="max fractional regression vs baseline")
    ap.add_argument("--max-stall-p50-ns", type=float, default=1e6,
                    help="[throughput] max per-shard stall p50 at max workers, ns (0 disables)")
    ap.add_argument("--min-goodput-ratio", type=float, default=0.90,
                    help="[service] min goodput(2x saturation) / goodput(saturation)")
    ap.add_argument("--min-churn-goodput-frac", type=float, default=0.80,
                    help="[service] min goodput with k of N devices alive, as "
                         "a fraction of (k/N) x the full-fleet figure")
    ap.add_argument("--min-micro-speedup", type=float, default=3.0,
                    help="[micro] min geomean fast-path speedup over gated "
                         "opcode families (0 disables)")
    ap.add_argument("--min-recoverable", type=int, default=1,
                    help="[crash] min trials that recovered a usable image")
    ap.add_argument("--min-warm-speedup", type=float, default=1.0,
                    help="[crash] min aggregate warm/cold speedup (0 disables)")
    ap.add_argument("--max-incremental-frac", type=float, default=0.25,
                    help="[crash] max newest-checkpoint cost as a fraction "
                         "of the full serialized image")
    ap.add_argument("--require-paged", action="store_true",
                    help="[crash] fail unless the report ran --paged")
    ap.add_argument("--summary", default=None,
                    help="markdown summary file to append to (e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args()

    if args.baseline is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        args.baseline = os.path.join(repo_root, "bench", "baselines",
                                     f"{args.mode}.json")

    check = {"throughput": check_throughput, "service": check_service,
             "micro": check_micro, "crash": check_crash}[args.mode]
    rows, failures = check(args)

    lines = [f"## Perf gate: {args.mode}", "",
             "| check | point | value | gate | verdict |",
             "|---|---|---|---|---|"]
    lines += [f"| {c} | {p} | {v} | {g} | {s} |" for c, p, v, g, s in rows]
    lines.append("")
    lines.append("**PASS**" if not failures else
                 "**FAIL**\n" + "\n".join(f"- {f}" for f in failures))
    summary = "\n".join(lines) + "\n"
    print(summary)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(summary)

    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
