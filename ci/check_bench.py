#!/usr/bin/env python3
"""Perf-regression gate over BENCH_throughput.json (CI perf-gate job).

Checks, in order:
  1. correctness precondition — every sweep point ran bit-identical to the
     serial reference (a perf number from a wrong run is meaningless);
  2. wall scaling — wall bundles/s at the highest worker count must be at
     least --min-wall-scaling x the 1-worker figure. This is the "ORAM wall
     is broken" gate: it is self-normalizing (a slow runner slows both ends
     of the ratio), so it needs no wall baseline;
  3. sim regression — simulated bundles/s per sweep point must not fall
     more than --tolerance below the committed baseline. The simulated
     timeline is deterministic on any host, so this comparison is exact
     across machines;
  4. wall regression — same comparison for wall bundles/s, but only for
     baseline entries with a recorded (non-zero) wall figure. 0 is the
     "no baseline yet" sentinel: wall numbers are only ever recorded from a
     CI runner, never from a developer machine;
  5. shard stalls — the per-shard walk-lock wait p50 at the highest worker
     count must stay under --max-stall-p50-ns. Under the old single global
     lock the median access waited behind every concurrent session (~ms);
     with per-shard locking the median walk acquires its lock unconteded
     (~100 ns). The p50 is robust to preemption outliers on busy runners.

Writes a markdown delta table to --summary (append mode; pass
$GITHUB_STEP_SUMMARY) and always prints it to stdout. Exit 1 on any gate
failure, 2 on malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_workers(report):
    return {p["workers"]: p for p in report.get("sweep", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True, help="BENCH_throughput.json from this run")
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--min-wall-scaling", type=float, default=2.0,
                    help="min wall bundles/s ratio, max workers vs 1 (0 disables)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="max fractional regression vs baseline")
    ap.add_argument("--max-stall-p50-ns", type=float, default=1e6,
                    help="max per-shard stall p50 at max workers, ns (0 disables)")
    ap.add_argument("--summary", default=None,
                    help="markdown summary file to append to (e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args()

    current = by_workers(load(args.current))
    baseline = by_workers(load(args.baseline))
    if not current:
        print("error: current report has no sweep points", file=sys.stderr)
        sys.exit(2)

    failures = []
    rows = []

    # 1. Correctness precondition.
    for workers, point in sorted(current.items()):
        if not point.get("bit_identical_to_serial", False):
            failures.append(f"{workers}-worker run diverged from the serial reference")

    # 2. Wall scaling ratio.
    lo, hi = min(current), max(current)
    wall_lo = current[lo].get("wall_bundles_per_s", 0.0)
    wall_hi = current[hi].get("wall_bundles_per_s", 0.0)
    scaling = wall_hi / wall_lo if wall_lo > 0 else 0.0
    if args.min_wall_scaling > 0:
        verdict = "ok" if scaling >= args.min_wall_scaling else "FAIL"
        rows.append(("wall scaling", f"{hi}w/{lo}w", f"{scaling:.2f}x",
                     f">= {args.min_wall_scaling:.2f}x", verdict))
        if verdict == "FAIL":
            failures.append(
                f"wall scaling {scaling:.2f}x ({wall_lo:.1f} -> {wall_hi:.1f} bundles/s) "
                f"below {args.min_wall_scaling:.2f}x: the ORAM wall is back")

    # 3 + 4. Regression vs committed baseline.
    for workers in sorted(baseline):
        if workers not in current:
            failures.append(f"baseline has {workers} workers but current sweep does not")
            continue
        for key, label in (("sim_bundles_per_s", "sim"), ("wall_bundles_per_s", "wall")):
            base = baseline[workers].get(key, 0.0)
            if base <= 0:
                continue  # 0 = no-baseline sentinel (see module docstring)
            cur = current[workers].get(key, 0.0)
            delta = (cur - base) / base
            floor = base * (1.0 - args.tolerance)
            verdict = "ok" if cur >= floor else "FAIL"
            rows.append((f"{label} bundles/s", f"{workers}w",
                         f"{cur:.2f} (base {base:.2f}, {delta:+.1%})",
                         f">= {floor:.2f}", verdict))
            if verdict == "FAIL":
                failures.append(
                    f"{label} bundles/s at {workers} workers regressed {delta:+.1%} "
                    f"vs baseline (> {args.tolerance:.0%} allowed)")

    # 5. Per-shard stall p50 at max workers.
    if args.max_stall_p50_ns > 0:
        shards = current[hi].get("shards", [])
        worst = max((s.get("stall_p50_ns", 0) for s in shards), default=0)
        verdict = "ok" if worst <= args.max_stall_p50_ns else "FAIL"
        rows.append(("shard stall p50", f"{hi}w worst", f"{worst} ns",
                     f"<= {args.max_stall_p50_ns:.0f} ns", verdict))
        if verdict == "FAIL":
            failures.append(
                f"worst per-shard stall p50 at {hi} workers is {worst} ns "
                f"(> {args.max_stall_p50_ns:.0f}): walks are queueing again")

    lines = ["## Perf gate: throughput", "",
             "| check | point | value | gate | verdict |",
             "|---|---|---|---|---|"]
    lines += [f"| {c} | {p} | {v} | {g} | {s} |" for c, p, v, g, s in rows]
    lines.append("")
    lines.append("**PASS**" if not failures else
                 "**FAIL**\n" + "\n".join(f"- {f}" for f in failures))
    summary = "\n".join(lines) + "\n"
    print(summary)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(summary)

    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
