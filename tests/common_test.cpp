// Unit tests for src/common: byte utilities, u256 arithmetic with EVM
// semantics, and the ChaCha20 DRBG.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "common/random.hpp"
#include "common/u256.hpp"

namespace hardtape {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(to_hex0x(data), "0x0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0x0001ABFF"), data);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, BytesView{a.data(), 2}));
}

TEST(Bytes, RightPad) {
  const Bytes data = {1, 2};
  EXPECT_EQ(right_pad(data, 4), (Bytes{1, 2, 0, 0}));
  EXPECT_EQ(right_pad(data, 1), (Bytes{1}));
}

TEST(U256, BasicConstructionAndCompare) {
  EXPECT_TRUE(u256{}.is_zero());
  EXPECT_EQ(u256{42}.as_u64(), 42u);
  EXPECT_LT(u256{1}, u256{2});
  EXPECT_GT(u256(1, 0, 0, 0), u256(0, ~0ull, ~0ull, ~0ull));
}

TEST(U256, AdditionWithCarryAcrossLimbs) {
  const u256 max_low{0, 0, 0, ~0ull};
  EXPECT_EQ(max_low + u256{1}, u256(0, 0, 1, 0));
  // Wrap at 2^256.
  const u256 all_ones = ~u256{};
  EXPECT_EQ(all_ones + u256{1}, u256{});
}

TEST(U256, SubtractionBorrow) {
  EXPECT_EQ(u256(0, 0, 1, 0) - u256{1}, u256(0, 0, 0, ~0ull));
  EXPECT_EQ(u256{} - u256{1}, ~u256{});
}

TEST(U256, Multiplication) {
  EXPECT_EQ(u256{7} * u256{6}, u256{42});
  // (2^128) * (2^128) wraps to 0.
  const u256 two128 = u256{1} << 128;
  EXPECT_EQ(two128 * two128, u256{});
  // (2^64) * (2^64) = 2^128.
  const u256 two64 = u256{1} << 64;
  EXPECT_EQ(two64 * two64, two128);
}

TEST(U256, MulWide) {
  const u256 a = ~u256{};  // 2^256 - 1
  const auto [hi, lo] = u256::mul_wide(a, a);
  // (2^256-1)^2 = 2^512 - 2^257 + 1 -> hi = 2^256 - 2, lo = 1.
  EXPECT_EQ(lo, u256{1});
  EXPECT_EQ(hi, ~u256{} - u256{1});
}

TEST(U256, DivMod) {
  EXPECT_EQ(u256{100} / u256{7}, u256{14});
  EXPECT_EQ(u256{100} % u256{7}, u256{2});
  // EVM: division by zero yields zero.
  EXPECT_EQ(u256{100} / u256{}, u256{});
  EXPECT_EQ(u256{100} % u256{}, u256{});
  // Large / small.
  const u256 big = u256::from_string(
      "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  EXPECT_EQ(big / u256{1}, big);
  EXPECT_EQ(big % big, u256{});
  EXPECT_EQ(big / big, u256{1});
}

TEST(U256, DivModReconstruction) {
  // a = q*b + r for pseudo-random values.
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    u256 a(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    u256 b(i % 3 == 0 ? 0 : rng.next_u64(), rng.next_u64(), 0, rng.next_u64());
    if (b.is_zero()) b = u256{rng.next_u64() | 1};
    const auto [q, r] = u256::divmod(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(U256, StringConversions) {
  EXPECT_EQ(u256::from_string("123456789").to_string(), "123456789");
  EXPECT_EQ(u256::from_string("0xff").as_u64(), 255u);
  EXPECT_EQ(u256::from_string("0xdeadbeef").to_hex(), "deadbeef");
  EXPECT_EQ(u256{}.to_string(), "0");
  EXPECT_EQ(u256{}.to_hex(), "0");
  EXPECT_THROW(u256::from_string(""), std::invalid_argument);
  EXPECT_THROW(u256::from_string("12a"), std::invalid_argument);
  const std::string huge =
      "115792089237316195423570985008687907853269984665640564039457584007913129"
      "639935";  // 2^256 - 1
  EXPECT_EQ(u256::from_string(huge), ~u256{});
  EXPECT_EQ((~u256{}).to_string(), huge);
}

TEST(U256, BeBytesRoundTrip) {
  const u256 v = u256::from_string("0x0102030405060708090a0b0c0d0e0f10");
  const auto be = v.to_be_bytes();
  EXPECT_EQ(u256::from_be_bytes(be), v);
  EXPECT_EQ(be[31], 0x10);
  EXPECT_EQ(be[16], 0x01);
  EXPECT_EQ(be[0], 0x00);
  // Short input is left-padded (treated as big-endian value).
  EXPECT_EQ(u256::from_be_bytes(Bytes{0x12, 0x34}), u256{0x1234});
}

TEST(U256, Shifts) {
  const u256 one{1};
  EXPECT_EQ(one << 0, one);
  EXPECT_EQ(one << 255, u256(0x8000000000000000ull, 0, 0, 0));
  EXPECT_EQ(one << 256, u256{});
  EXPECT_EQ((one << 255) >> 255, one);
  EXPECT_EQ((one << 64), u256(0, 0, 1, 0));
  const u256 pattern = u256::from_string("0x123456789abcdef0123456789abcdef0");
  EXPECT_EQ((pattern << 8) >> 8, pattern);
}

TEST(U256, SignedOps) {
  const u256 minus_one = ~u256{};
  const u256 minus_seven = u256{7}.neg();
  EXPECT_TRUE(minus_one.is_negative());
  EXPECT_EQ(u256::sdiv(minus_seven, u256{2}), u256{3}.neg());
  EXPECT_EQ(u256::sdiv(u256{7}, u256{2}.neg()), u256{3}.neg());
  EXPECT_EQ(u256::sdiv(minus_seven, u256{2}.neg()), u256{3});
  EXPECT_EQ(u256::smod(minus_seven, u256{3}), u256{1}.neg());  // sign of dividend
  EXPECT_EQ(u256::smod(u256{7}, u256{3}.neg()), u256{1});
  EXPECT_TRUE(u256::slt(minus_one, u256{}));
  EXPECT_TRUE(u256::slt(minus_one, u256{1}));
  EXPECT_FALSE(u256::slt(u256{1}, minus_one));
  // INT_MIN / -1 wraps back to INT_MIN (EVM semantics).
  const u256 int_min = u256{1} << 255;
  EXPECT_EQ(u256::sdiv(int_min, minus_one), int_min);
}

TEST(U256, AddmodMulmod) {
  // addmod handles the 257-bit intermediate.
  const u256 max = ~u256{};
  EXPECT_EQ(u256::addmod(max, max, u256{10}),
            u256{(max % u256{10}).as_u64() * 2 % 10});
  EXPECT_EQ(u256::addmod(u256{5}, u256{7}, u256{}), u256{});
  // mulmod handles the 512-bit intermediate.
  EXPECT_EQ(u256::mulmod(max, max, u256{12}), (max % u256{12}) * (max % u256{12}) % u256{12});
  EXPECT_EQ(u256::mulmod(max, max, max), u256{});
  EXPECT_EQ(u256::mulmod(u256{3}, u256{4}, u256{5}), u256{2});
}

TEST(U256, Exp) {
  EXPECT_EQ(u256::exp(u256{2}, u256{10}), u256{1024});
  EXPECT_EQ(u256::exp(u256{0}, u256{0}), u256{1});  // EVM: 0^0 = 1
  EXPECT_EQ(u256::exp(u256{7}, u256{0}), u256{1});
  EXPECT_EQ(u256::exp(u256{0}, u256{5}), u256{});
  EXPECT_EQ(u256::exp(u256{2}, u256{256}), u256{});  // wraps
  EXPECT_EQ(u256::exp(u256{3}, u256{5}), u256{243});
}

TEST(U256, SignExtend) {
  // Extending byte 0 of 0xff -> -1.
  EXPECT_EQ(u256::signextend(u256{0}, u256{0xff}), ~u256{});
  EXPECT_EQ(u256::signextend(u256{0}, u256{0x7f}), u256{0x7f});
  // Byte index >= 31: unchanged.
  EXPECT_EQ(u256::signextend(u256{31}, u256{0xff}), u256{0xff});
  EXPECT_EQ(u256::signextend(u256{100}, u256{0xff}), u256{0xff});
  // Extending byte 1 of 0x8000.
  const u256 v = u256::signextend(u256{1}, u256{0x8000});
  EXPECT_TRUE(v.is_negative());
  EXPECT_EQ(v, u256{0x8000} | (~u256{} << 16));
}

TEST(U256, Sar) {
  const u256 minus_eight = u256{8}.neg();
  EXPECT_EQ(u256::sar(minus_eight, u256{1}), u256{4}.neg());
  EXPECT_EQ(u256::sar(u256{8}, u256{1}), u256{4});
  EXPECT_EQ(u256::sar(minus_eight, u256{300}), ~u256{});  // >= 256, negative
  EXPECT_EQ(u256::sar(u256{8}, u256{300}), u256{});
  EXPECT_EQ(u256::sar(minus_eight, u256{0}), minus_eight);
}

TEST(U256, ByteOp) {
  const u256 v = u256::from_string(
      "0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
  EXPECT_EQ(u256::byte(u256{0}, v), u256{0x01});
  EXPECT_EQ(u256::byte(u256{31}, v), u256{0x20});
  EXPECT_EQ(u256::byte(u256{32}, v), u256{});
}

TEST(U256, BitLength) {
  EXPECT_EQ(u256{}.bit_length(), 0u);
  EXPECT_EQ(u256{1}.bit_length(), 1u);
  EXPECT_EQ(u256{0xff}.bit_length(), 8u);
  EXPECT_EQ((u256{1} << 200).bit_length(), 201u);
  EXPECT_EQ((~u256{}).bit_length(), 256u);
}

TEST(Address, RoundTrips) {
  const Address a = Address::from_hex("0x7E5F4552091A69125d5DfCb7B8C2659029395Bdf");
  EXPECT_EQ(Address::from_u256(a.to_u256()), a);
  EXPECT_EQ(a.hex(), "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf");
  EXPECT_FALSE(a.is_zero());
  EXPECT_TRUE(Address{}.is_zero());
}

TEST(H256, RoundTrips) {
  const u256 v = u256::from_string("0xdeadbeef");
  const H256 h = H256::from_u256(v);
  EXPECT_EQ(h.to_u256(), v);
  EXPECT_FALSE(h.is_zero());
  EXPECT_TRUE(H256{}.is_zero());
}

// --- ChaCha20 / Random ---

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2 test vector.
  std::array<uint32_t, 8> key;
  for (uint32_t i = 0; i < 8; ++i) {
    key[i] = (4 * i) | ((4 * i + 1) << 8) | ((4 * i + 2) << 16) | ((4 * i + 3) << 24);
  }
  const std::array<uint32_t, 3> nonce = {0x09000000, 0x4a000000, 0x00000000};
  std::array<uint8_t, 64> out;
  chacha20_block(key, 1, nonce, out);
  const Bytes expected = from_hex(
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
  EXPECT_EQ(Bytes(out.begin(), out.end()), expected);
}

TEST(Random, Deterministic) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Random, UniformBounds) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const uint64_t v = rng.uniform_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, UniformIsRoughlyUniform) {
  Random rng(99);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 8000;
  for (int i = 0; i < kDraws; ++i) buckets[rng.uniform(8)]++;
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 8 - 200);
    EXPECT_LT(count, kDraws / 8 + 200);
  }
}

TEST(Random, SwapNoiseBounded) {
  Random rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(rng.swap_noise(6), 6u);
  }
  EXPECT_EQ(rng.swap_noise(0), 0u);
}

TEST(Random, FillProducesDifferentBlocks) {
  Random rng(3);
  const Bytes a = rng.bytes(64);
  const Bytes b = rng.bytes(64);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 64u);
}

TEST(Errors, StatusToString) {
  EXPECT_STREQ(to_string(Status::kOk), "ok");
  EXPECT_STREQ(to_string(Status::kMemoryOverflow), "memory-overflow");
  EXPECT_STREQ(to_string(Status::kStashOverflow), "stash-overflow");
  EXPECT_STREQ(to_string(Status::kTimeout), "timeout");
  EXPECT_STREQ(to_string(Status::kUnavailable), "unavailable");
  EXPECT_STREQ(to_string(Status::kRetryExhausted), "retry-exhausted");
  EXPECT_STREQ(to_string(Status::kStale), "stale");
  EXPECT_STREQ(to_string(Status::kOverloaded), "overloaded");
  EXPECT_STREQ(to_string(Status::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(to_string(Status::kDeviceLost), "device-lost");
}

// Every Status value must round-trip to a unique human-readable name — a
// new code that falls through to "unknown" would make fault reports
// undebuggable. kStatusCount_ is the keep-last sentinel this test iterates
// to, so extending the enum without extending to_string fails here.
TEST(Errors, StatusToStringIsExhaustiveAndDistinct) {
  const int count = static_cast<int>(Status::kStatusCount_);
  EXPECT_GT(count, 0);
  for (int v = 0; v < count; ++v) {
    const char* name = to_string(static_cast<Status>(v));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "Status value " << v << " has no name";
    for (int w = 0; w < v; ++w) {
      EXPECT_STRNE(name, to_string(static_cast<Status>(w)))
          << "Status values " << w << " and " << v << " share a name";
    }
  }
  EXPECT_STREQ(to_string(Status::kStatusCount_), "unknown");
}

}  // namespace
}  // namespace hardtape
