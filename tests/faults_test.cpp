// Adversarial fault injection + fail-closed recovery (PR 2).
//
// Covers, bottom-up: the FaultPlan's reproducibility contract, the
// per-interface fault wrappers (FaultyOram, FaultyLink), the OramFrontend's
// timeout/backoff/fail-closed retry loop, the watchdog, and the engine-level
// recovery policies (session abort, bundle requeue, circuit breaker). Like
// engine_test, this binary runs under TSan in CI — every path here must be
// data-race free.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "faults/fault_plan.hpp"
#include "faults/faulty_link.hpp"
#include "faults/faulty_oram.hpp"
#include "oram/sharded.hpp"
#include "service/engine.hpp"
#include "service/watchdog.hpp"
#include "workload/generator.hpp"

namespace hardtape {
namespace {

using faults::FaultDecision;
using faults::FaultEvent;
using faults::FaultKind;
using faults::FaultPlan;
using faults::FaultPlanConfig;
using faults::FaultScope;
using faults::FaultSite;

// ---------------------------------------------------------------------------
// FaultPlan: the reproducibility contract
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, DecisionsArePureInSeedSiteStreamOp) {
  FaultPlanConfig config;
  config.seed = 42;
  config.fault_rate = 0.5;
  FaultPlan a(config);
  FaultPlan b(config);

  // Query b in a scrambled order; every decision must still match a's.
  for (uint64_t stream = 0; stream < 4; ++stream) {
    for (uint64_t op = 0; op < 32; ++op) {
      const FaultDecision da = a.decide(FaultSite::kOramRead, stream, op);
      const FaultDecision db =
          b.decide(FaultSite::kOramRead, 3 - stream, 31 - op);
      const FaultDecision db_same = b.decide(FaultSite::kOramRead, stream, op);
      EXPECT_EQ(da.kind, db_same.kind);
      EXPECT_EQ(da.delay_ns, db_same.delay_ns);
      (void)db;
    }
  }
}

TEST(FaultPlanTest, SameSeedSameSortedTrace) {
  FaultPlanConfig config;
  config.seed = 7;
  config.fault_rate = 0.3;
  FaultPlan a(config);
  FaultPlan b(config);
  // a in forward order, b in reverse order — the sorted traces must agree.
  for (uint64_t op = 0; op < 64; ++op) a.decide(FaultSite::kOramRead, 1, op);
  for (uint64_t op = 64; op-- > 0;) b.decide(FaultSite::kOramRead, 1, op);
  const std::vector<FaultEvent> ta = a.trace();
  const std::vector<FaultEvent> tb = b.trace();
  ASSERT_FALSE(ta.empty());  // rate 0.3 over 64 ops: statistically certain
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a.injected(), b.injected());
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  FaultPlanConfig config;
  config.fault_rate = 0.5;
  config.seed = 1;
  FaultPlan a(config);
  config.seed = 2;
  FaultPlan b(config);
  for (uint64_t op = 0; op < 128; ++op) {
    a.decide(FaultSite::kOramRead, 0, op);
    b.decide(FaultSite::kOramRead, 0, op);
  }
  EXPECT_NE(a.trace(), b.trace());
}

TEST(FaultPlanTest, ZeroRateInjectsNothing) {
  FaultPlan plan(FaultPlanConfig{});  // fault_rate = 0
  for (uint64_t op = 0; op < 100; ++op) {
    EXPECT_EQ(plan.decide(FaultSite::kOramRead, 0, op).kind, FaultKind::kNone);
  }
  EXPECT_EQ(plan.injected(), 0u);
  EXPECT_TRUE(plan.trace().empty());
}

TEST(FaultPlanTest, ForcePinsOneOperation) {
  FaultPlan plan(FaultPlanConfig{});  // rate 0: only the forced op fires
  plan.force(FaultSite::kOramRead, 5, 2, {FaultKind::kTamper, 0});
  EXPECT_EQ(plan.decide(FaultSite::kOramRead, 5, 1).kind, FaultKind::kNone);
  EXPECT_EQ(plan.decide(FaultSite::kOramRead, 5, 2).kind, FaultKind::kTamper);
  EXPECT_EQ(plan.decide(FaultSite::kOramRead, 5, 3).kind, FaultKind::kNone);
  EXPECT_EQ(plan.decide(FaultSite::kOramWrite, 5, 2).kind, FaultKind::kNone);
  EXPECT_EQ(plan.injected(), 1u);
}

TEST(FaultScopeTest, CountsOpsPerSiteAndNests) {
  EXPECT_FALSE(FaultScope::active());
  {
    FaultScope outer(11);
    EXPECT_TRUE(FaultScope::active());
    EXPECT_EQ(FaultScope::stream(), 11u);
    EXPECT_EQ(FaultScope::next_op(FaultSite::kOramRead), 0u);
    EXPECT_EQ(FaultScope::next_op(FaultSite::kOramRead), 1u);
    EXPECT_EQ(FaultScope::next_op(FaultSite::kOramWrite), 0u);  // per-site
    {
      FaultScope inner(12);
      EXPECT_EQ(FaultScope::stream(), 12u);
      EXPECT_EQ(FaultScope::next_op(FaultSite::kOramRead), 0u);  // fresh
    }
    EXPECT_EQ(FaultScope::stream(), 11u);
    EXPECT_EQ(FaultScope::next_op(FaultSite::kOramRead), 2u);  // resumed
  }
  EXPECT_FALSE(FaultScope::active());
}

// ---------------------------------------------------------------------------
// FaultyOram: the wrapper's per-kind semantics
// ---------------------------------------------------------------------------

/// Trivial reliable backing store: read always finds a page, writes count.
class MemBackend : public oram::OramAccessor {
 public:
  std::optional<Bytes> read(const oram::BlockId& id) override {
    reads_.fetch_add(1, std::memory_order_relaxed);
    return Bytes{static_cast<uint8_t>(id.as_u64() & 0xff), 0x5a};
  }
  void write(const oram::BlockId&, BytesView) override {
    writes_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t reads() const { return reads_.load(); }
  uint64_t writes() const { return writes_.load(); }

 private:
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
};

TEST(FaultyOramTest, PassthroughOutsideFaultScope) {
  FaultPlanConfig config;
  config.fault_rate = 1.0;  // everything faults... inside a scope
  FaultPlan plan(config);
  MemBackend backend;
  faults::FaultyOram faulty(backend, plan);

  const auto attempt = faulty.try_read(oram::BlockId{1});
  EXPECT_EQ(attempt.status, Status::kOk);
  ASSERT_TRUE(attempt.data.has_value());
  EXPECT_EQ(plan.injected(), 0u);  // setup paths are fault-free by design
}

TEST(FaultyOramTest, DropSurfacesTimeoutWithoutTouchingBackend) {
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kOramRead, 9, 0, {FaultKind::kDrop, 0});
  MemBackend backend;
  faults::FaultyOram faulty(backend, plan);

  FaultScope scope(9);
  const auto dropped = faulty.try_read(oram::BlockId{1});
  EXPECT_EQ(dropped.status, Status::kTimeout);
  EXPECT_FALSE(dropped.data.has_value());
  EXPECT_EQ(backend.reads(), 0u);  // lost in flight, state stays consistent
  const auto retry = faulty.try_read(oram::BlockId{1});  // op 1: no fault
  EXPECT_EQ(retry.status, Status::kOk);
  EXPECT_EQ(backend.reads(), 1u);
}

TEST(FaultyOramTest, TamperSurfacesAuthFailed) {
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kOramRead, 9, 0, {FaultKind::kTamper, 0});
  MemBackend backend;
  faults::FaultyOram faulty(backend, plan);

  FaultScope scope(9);
  const auto tampered = faulty.try_read(oram::BlockId{1});
  EXPECT_EQ(tampered.status, Status::kAuthFailed);
  EXPECT_FALSE(tampered.data.has_value());
}

TEST(FaultyOramTest, DelayAddsSimLatencyButDelivers) {
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kOramRead, 9, 0, {FaultKind::kDelay, 7'000'000});
  MemBackend backend;
  faults::FaultyOram faulty(backend, plan);

  FaultScope scope(9);
  const auto late = faulty.try_read(oram::BlockId{1});
  EXPECT_EQ(late.status, Status::kOk);
  ASSERT_TRUE(late.data.has_value());
  EXPECT_EQ(late.sim_delay_ns, 7'000'000u);
  EXPECT_EQ(backend.reads(), 1u);  // the access did happen, just late
}

TEST(FaultyOramTest, WriteDropSurfacesTimeout) {
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kOramWrite, 9, 0, {FaultKind::kDrop, 0});
  MemBackend backend;
  faults::FaultyOram faulty(backend, plan);

  FaultScope scope(9);
  const Bytes data{1, 2, 3};
  const auto lost = faulty.try_write(oram::BlockId{2}, data);
  EXPECT_EQ(lost.status, Status::kTimeout);
  EXPECT_EQ(backend.writes(), 0u);
}

// ---------------------------------------------------------------------------
// OramFrontend: timeout/backoff/fail-closed retry loop
// ---------------------------------------------------------------------------

/// Backend whose next try_* results are scripted; after the script runs out
/// every access succeeds immediately.
class ScriptedBackend : public oram::OramAccessor {
 public:
  std::optional<Bytes> read(const oram::BlockId&) override { return Bytes{0x5a}; }
  void write(const oram::BlockId&, BytesView) override {}
  oram::AccessAttempt try_read(const oram::BlockId&) override { return next(); }
  oram::AccessAttempt try_write(const oram::BlockId&, BytesView) override {
    return next();
  }

  void script(oram::AccessAttempt attempt) { script_.push_back(std::move(attempt)); }
  uint64_t calls = 0;

 private:
  oram::AccessAttempt next() {
    ++calls;
    if (script_.empty()) return {Status::kOk, Bytes{0x5a}, 0};
    const oram::AccessAttempt a = script_.front();
    script_.pop_front();
    return a;
  }
  std::deque<oram::AccessAttempt> script_;
};

TEST(FrontendRecoveryTest, TimeoutsAreRetriedThenRecovered) {
  ScriptedBackend backend;
  backend.script({Status::kTimeout, std::nullopt, 0});
  backend.script({Status::kTimeout, std::nullopt, 0});
  oram::OramFrontend frontend(backend);
  const sim::BackoffPolicy policy;  // defaults: 10 ms timeout, 4 attempts

  oram::RecoveryTally tally;
  const oram::BlockId id{77};
  oram::AccessAttempt result;
  {
    const oram::ScopedRecoveryTally scope(tally);
    result = frontend.try_read(id);
  }
  EXPECT_EQ(result.status, Status::kOk);
  ASSERT_TRUE(result.data.has_value());
  EXPECT_EQ(backend.calls, 3u);  // 2 failures + the success

  // Exactly 2 timeouts waited out + 2 deterministic backoff delays.
  const uint64_t tag = U256Hasher{}(id);
  const uint64_t expected = 2 * policy.request_timeout_ns +
                            sim::backoff_delay_ns(policy, 1, tag) +
                            sim::backoff_delay_ns(policy, 2, tag);
  EXPECT_EQ(result.sim_delay_ns, expected);
  EXPECT_EQ(tally.sim_ns, expected);
  EXPECT_EQ(tally.retries, 2u);
  EXPECT_EQ(tally.faults, 2u);

  const auto stats = frontend.snapshot();
  EXPECT_EQ(stats.timeouts, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.retry_exhausted, 0u);
}

TEST(FrontendRecoveryTest, ExhaustedBudgetSurfacesRetryExhausted) {
  ScriptedBackend backend;
  sim::BackoffPolicy policy;
  policy.max_attempts = 3;
  for (int i = 0; i < 3; ++i) backend.script({Status::kTimeout, std::nullopt, 0});
  oram::OramFrontend frontend(backend, {.recovery = policy});

  const auto result = frontend.try_read(oram::BlockId{1});
  EXPECT_EQ(result.status, Status::kRetryExhausted);
  EXPECT_EQ(backend.calls, 3u);  // the attempt budget is a hard bound
  EXPECT_EQ(frontend.snapshot().retry_exhausted, 1u);
  EXPECT_GT(result.sim_delay_ns, 0u);  // the time wasted is still charged
}

TEST(FrontendRecoveryTest, IntegrityFailureFailsClosedImmediately) {
  ScriptedBackend backend;
  backend.script({Status::kAuthFailed, std::nullopt, 0});
  oram::OramFrontend frontend(backend);

  const auto result = frontend.try_read(oram::BlockId{1});
  EXPECT_EQ(result.status, Status::kAuthFailed);
  // No retry: a bad tag is an attack indicator, and retrying would hand a
  // tampering server an oracle.
  EXPECT_EQ(backend.calls, 1u);
  const auto stats = frontend.snapshot();
  EXPECT_EQ(stats.auth_failures, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(FrontendRecoveryTest, OverDelayedResponseCountsAsTimeout) {
  ScriptedBackend backend;
  const sim::BackoffPolicy policy;
  backend.script({Status::kOk, Bytes{1}, policy.request_timeout_ns + 1});
  oram::OramFrontend frontend(backend);

  const auto result = frontend.try_read(oram::BlockId{3});
  EXPECT_EQ(result.status, Status::kOk);  // the retry succeeded
  EXPECT_EQ(backend.calls, 2u);
  EXPECT_EQ(frontend.snapshot().timeouts, 1u);
}

TEST(FrontendRecoveryTest, ResidualDelayWithinTimeoutIsCharged) {
  ScriptedBackend backend;
  backend.script({Status::kOk, Bytes{1}, 3'000'000});
  oram::OramFrontend frontend(backend);

  const auto result = frontend.try_read(oram::BlockId{3});
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.sim_delay_ns, 3'000'000u);  // late but within budget
  EXPECT_EQ(frontend.snapshot().timeouts, 0u);
}

TEST(FrontendRecoveryTest, PlainReadThrowsBackendFaultOnTerminalStatus) {
  ScriptedBackend backend;
  backend.script({Status::kAuthFailed, std::nullopt, 0});
  oram::OramFrontend frontend(backend);
  try {
    frontend.read(oram::BlockId{1});
    FAIL() << "expected BackendFault";
  } catch (const BackendFault& fault) {
    EXPECT_EQ(fault.status(), Status::kAuthFailed);
  }
}

// ---------------------------------------------------------------------------
// FaultyLink + SecureChannel: the Ethernet is the SP's too
// ---------------------------------------------------------------------------

class LinkTest : public ::testing::Test {
 protected:
  static crypto::AesKey128 key() {
    crypto::AesKey128 k{};
    k[0] = 0x33;
    return k;
  }
  hypervisor::SecureChannel sender_{key()};
  hypervisor::SecureChannel receiver_{key()};
};

TEST_F(LinkTest, TamperedFrameFailsClosedAndRetransmitLands) {
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kChannelFrame, 1, 0, {FaultKind::kTamper, 0});
  faults::FaultyLink link(plan, 1);

  const auto genuine =
      sender_.seal(hypervisor::MessageType::kBundleSubmit, 0, Bytes{1, 2, 3});
  auto delivered = link.transmit(genuine);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(receiver_.open(delivered[0], 1024, 1024).status, Status::kAuthFailed);

  // The receive sequence did not advance on the failed frame, so the
  // sender's retransmission of the SAME frame still authenticates.
  delivered = link.transmit(genuine);  // op 1: no fault
  ASSERT_EQ(delivered.size(), 1u);
  const auto open = receiver_.open(delivered[0], 1024, 1024);
  EXPECT_EQ(open.status, Status::kOk);
  EXPECT_EQ(open.body, (Bytes{1, 2, 3}));
}

TEST_F(LinkTest, DuplicateFrameRejectedByAntiReplay) {
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kChannelFrame, 1, 0, {FaultKind::kDuplicateFrame, 0});
  faults::FaultyLink link(plan, 1);

  const auto frame = sender_.seal(hypervisor::MessageType::kBundleSubmit, 0, Bytes{7});
  const auto delivered = link.transmit(frame);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(receiver_.open(delivered[0], 1024, 1024).status, Status::kOk);
  EXPECT_EQ(receiver_.open(delivered[1], 1024, 1024).status, Status::kRejected);
}

TEST_F(LinkTest, ReorderedFrameRejectedBySequence) {
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kChannelFrame, 1, 0, {FaultKind::kReorderFrame, 0});
  faults::FaultyLink link(plan, 1);

  const auto f0 = sender_.seal(hypervisor::MessageType::kBundleSubmit, 0, Bytes{0});
  const auto f1 = sender_.seal(hypervisor::MessageType::kBundleSubmit, 0, Bytes{1});
  EXPECT_TRUE(link.transmit(f0).empty());  // held back
  const auto delivered = link.transmit(f1);
  ASSERT_EQ(delivered.size(), 2u);  // f1 first, then the held f0
  // Strict sequence: the out-of-order successor is refused outright (fail
  // closed — the channel never buffers/reorders on the adversary's behalf),
  // then the in-order frame lands.
  EXPECT_EQ(receiver_.open(delivered[0], 1024, 1024).status, Status::kRejected);
  EXPECT_EQ(receiver_.open(delivered[1], 1024, 1024).status, Status::kOk);
  EXPECT_TRUE(link.flush().empty());
}

TEST_F(LinkTest, DroppedFrameNeverArrives) {
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kChannelFrame, 1, 0, {FaultKind::kDrop, 0});
  faults::FaultyLink link(plan, 1);
  const auto frame = sender_.seal(hypervisor::MessageType::kBundleSubmit, 0, Bytes{9});
  EXPECT_TRUE(link.transmit(frame).empty());
  EXPECT_TRUE(link.flush().empty());
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, FlagsBusyWorkerWithoutProgress) {
  service::Heartbeat alive;
  service::Heartbeat stuck;
  service::Watchdog dog({&alive, &stuck},
                        {.poll_interval_ms = 1, .stall_threshold_ms = 0});

  // `alive` makes progress before every poll; `stuck` never does.
  alive.busy.store(true);
  stuck.busy.store(true);
  alive.beats.store(1);
  dog.poll_once();  // baseline for alive; stuck is already stalled
  EXPECT_EQ(dog.stalls_detected(), 1u);

  alive.beats.store(2);
  dog.poll_once();  // same stuck episode: no double counting
  EXPECT_EQ(dog.stalls_detected(), 1u);

  stuck.beats.store(1);  // progress re-arms the tracker...
  alive.beats.store(3);
  dog.poll_once();
  EXPECT_EQ(dog.stalls_detected(), 1u);
  alive.beats.store(4);
  dog.poll_once();  // ...and a new stall is a new episode
  EXPECT_EQ(dog.stalls_detected(), 2u);
}

TEST(WatchdogTest, IdleWorkersAreNeverStalled) {
  service::Heartbeat idle;  // busy = false
  service::Watchdog dog({&idle}, {.poll_interval_ms = 1, .stall_threshold_ms = 0});
  for (int i = 0; i < 5; ++i) dog.poll_once();
  EXPECT_EQ(dog.stalls_detected(), 0u);
}

TEST(WatchdogTest, OnStallCallbackFiresPerEpisode) {
  service::Heartbeat stuck;
  std::atomic<int> fired{0};
  service::Watchdog dog({&stuck}, {.poll_interval_ms = 1, .stall_threshold_ms = 0},
                        [&](size_t index) {
                          EXPECT_EQ(index, 0u);
                          fired.fetch_add(1);
                        });
  stuck.busy.store(true);
  dog.poll_once();
  dog.poll_once();
  EXPECT_EQ(fired.load(), 1);
}

// ---------------------------------------------------------------------------
// BoundedQueue::requeue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, RequeueBypassesCapacityAndGoesToFront) {
  service::BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));  // full
  queue.requeue(2);            // must not block
  EXPECT_EQ(queue.pop(), std::optional<int>{2});  // retries go first
  EXPECT_EQ(queue.pop(), std::optional<int>{1});
}

TEST(BoundedQueueTest, RequeueWorksAfterClose) {
  service::BoundedQueue<int> queue(2);
  queue.close();
  EXPECT_FALSE(queue.push(1));  // admission is closed...
  queue.requeue(5);             // ...but an in-flight retry still resolves
  EXPECT_EQ(queue.pop(), std::optional<int>{5});
  EXPECT_EQ(queue.pop(), std::nullopt);
}

// ---------------------------------------------------------------------------
// Engine-level recovery: session abort, requeue, circuit breaker
// ---------------------------------------------------------------------------

class EngineFaultTest : public ::testing::Test {
 protected:
  EngineFaultTest() {
    gen_.deploy(node_.world());
    node_.produce_block({});
  }

  service::EngineConfig make_config(FaultPlan* plan, int workers = 4) {
    service::EngineConfig config;
    config.security = service::SecurityConfig::full();
    config.num_hevms = workers;
    config.queue_depth = 16;
    config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
    config.seal_mode = oram::SealMode::kChaChaHmac;
    config.perform_channel_crypto = false;
    config.fault_plan = plan;
    return config;
  }

  std::vector<evm::Transaction> bundle_for(uint64_t id) {
    const auto& users = gen_.users();
    evm::Transaction transfer;
    transfer.from = users[id % users.size()];
    transfer.to = gen_.tokens()[id % gen_.tokens().size()];
    transfer.data = workload::erc20_transfer(users[(id + 1) % users.size()],
                                             u256{10 + id % 7});
    transfer.gas_limit = 500'000;
    return {transfer};
  }

  std::vector<service::SessionOutcome> run_engine(service::EngineConfig config,
                                                  size_t bundles) {
    service::PreExecutionEngine engine(node_, config);
    EXPECT_EQ(engine.synchronize(), Status::kOk);
    engine.start();
    for (size_t i = 0; i < bundles; ++i) engine.submit(bundle_for(i));
    return engine.drain();
  }

  node::NodeSimulator node_;
  workload::WorkloadGenerator gen_{workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 2}};
};

// A fault-free plan (rate 0) must leave every outcome bit-identical to the
// plan-less engine: the entire recovery stack is dormant without faults.
TEST_F(EngineFaultTest, DormantFaultPlanChangesNothing) {
  const size_t kBundles = 12;
  const auto baseline = run_engine(make_config(nullptr), kBundles);

  FaultPlan plan(FaultPlanConfig{});  // rate 0
  const auto with_plan = run_engine(make_config(&plan), kBundles);

  ASSERT_EQ(baseline.size(), with_plan.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(service::outcomes_bit_identical(baseline[i], with_plan[i]))
        << "bundle " << i;
    EXPECT_EQ(with_plan[i].faults_seen, 0u);
    EXPECT_EQ(with_plan[i].recovery_sim_ns, 0u);
  }
  EXPECT_EQ(plan.injected(), 0u);
}

// The acceptance criterion: same fault seed => same injected-fault schedule
// and the same outcome set, independent of worker interleaving.
TEST_F(EngineFaultTest, FaultedRunReplaysBitIdentically) {
  FaultPlanConfig fconfig;
  fconfig.seed = 99;
  fconfig.fault_rate = 0.02;
  fconfig.weight_tamper = 0;  // keep this run to recoverable faults only
  fconfig.weight_stale_proof = 0;  // and keep the sync pass clean
  fconfig.max_delay_ns = 5'000'000;

  auto run_once = [&](int workers) {
    FaultPlan plan(fconfig);
    auto config = make_config(&plan, workers);
    config.breaker_threshold = 0;  // isolate determinism from quarantining
    auto outcomes = run_engine(config, 24);
    return std::make_pair(std::move(outcomes), plan.trace());
  };
  const auto [first, trace_first] = run_once(2);
  const auto [second, trace_second] = run_once(6);  // different interleaving

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(service::outcomes_bit_identical(first[i], second[i]))
        << "bundle " << i << " diverged across worker counts";
  }
  EXPECT_EQ(trace_first, trace_second);
}

// One tampered ORAM page aborts exactly that session with kAuthFailed —
// fail closed, no retry (retrying integrity failures would give the
// tampering server an oracle) — and no other session is disturbed.
TEST_F(EngineFaultTest, TamperedPageAbortsOnlyThatSession) {
  const uint64_t kVictim = 3;
  FaultPlan plan(FaultPlanConfig{});  // rate 0 + one forced strike
  plan.force(FaultSite::kOramRead, faults::fault_stream(kVictim, 0), 0,
             {FaultKind::kTamper, 0});

  service::PreExecutionEngine engine(node_, make_config(&plan));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  engine.start();
  const size_t kBundles = 8;
  for (size_t i = 0; i < kBundles; ++i) engine.submit(bundle_for(i));
  const auto outcomes = engine.drain();

  ASSERT_EQ(outcomes.size(), kBundles);
  for (const auto& outcome : outcomes) {
    if (outcome.bundle_id == kVictim) {
      EXPECT_EQ(outcome.status, Status::kAuthFailed);
      EXPECT_TRUE(outcome.backend_fault);
      EXPECT_EQ(outcome.attempt, 0u);  // integrity failures never requeue
      EXPECT_TRUE(outcome.report.transactions.empty());  // no traces leak
    } else {
      EXPECT_EQ(outcome.status, Status::kOk) << "bundle " << outcome.bundle_id;
      EXPECT_EQ(outcome.faults_seen, 0u);
    }
  }
  const auto metrics = engine.snapshot();
  EXPECT_EQ(metrics.bundles_aborted, 1u);
  EXPECT_FALSE(metrics.circuit_open);  // one strike is not an outage
}

// A single dropped response recovers invisibly: the frontend retries inside
// the session and the bundle still completes kOk (with the retry time on
// its simulated clock).
TEST_F(EngineFaultTest, SingleDropRecoversWithinTheSession) {
  const uint64_t kVictim = 2;
  FaultPlan plan(FaultPlanConfig{});
  plan.force(FaultSite::kOramRead, faults::fault_stream(kVictim, 0), 0,
             {FaultKind::kDrop, 0});

  const auto outcomes = run_engine(make_config(&plan), 6);
  ASSERT_EQ(outcomes.size(), 6u);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.status, Status::kOk) << "bundle " << outcome.bundle_id;
    if (outcome.bundle_id == kVictim) {
      EXPECT_EQ(outcome.oram_retries, 1u);
      EXPECT_EQ(outcome.faults_seen, 1u);
      EXPECT_GT(outcome.recovery_sim_ns, 0u);
    } else {
      EXPECT_EQ(outcome.recovery_sim_ns, 0u);
    }
  }
}

// 100% response loss: the breaker must open after breaker_threshold
// consecutive failed attempts, the queue must drain as kUnavailable, a
// subsequent submit must be refused at admission, and nothing deadlocks.
TEST_F(EngineFaultTest, TotalOramLossOpensCircuitBreaker) {
  FaultPlanConfig fconfig;
  fconfig.fault_rate = 1.0;
  fconfig.weight_drop = 1.0;  // only drops
  fconfig.weight_delay = 0;
  fconfig.weight_tamper = 0;
  fconfig.weight_stale_proof = 0;  // the sync pass must succeed
  FaultPlan plan(fconfig);

  auto config = make_config(&plan, 2);
  config.breaker_threshold = 4;
  config.max_bundle_attempts = 3;
  service::PreExecutionEngine engine(node_, config);
  ASSERT_EQ(engine.synchronize(), Status::kOk);  // install is outside scopes
  engine.start();

  const size_t kBundles = 12;
  for (size_t i = 0; i < kBundles; ++i) engine.submit(bundle_for(i));

  // The breaker must open in bounded time (every attempt fails fast in
  // simulated time; wall time here is just thread scheduling).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!engine.snapshot().circuit_open) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "breaker never opened";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Post-open admissions are refused immediately — no queueing, no blocking.
  const auto refused = engine.submit(bundle_for(kBundles));
  EXPECT_EQ(refused.status, Status::kUnavailable);

  const auto outcomes = engine.drain();  // must terminate: no deadlock
  ASSERT_EQ(outcomes.size(), kBundles + 1);
  for (const auto& outcome : outcomes) {
    EXPECT_NE(outcome.status, Status::kOk);
    EXPECT_TRUE(outcome.status == Status::kRetryExhausted ||
                outcome.status == Status::kUnavailable)
        << "bundle " << outcome.bundle_id << ": " << to_string(outcome.status);
  }
  const auto metrics = engine.snapshot();
  EXPECT_TRUE(metrics.circuit_open);
  EXPECT_GT(metrics.bundles_unavailable, 0u);
  EXPECT_GT(metrics.oram_retry_exhausted, 0u);
  EXPECT_EQ(metrics.bundles_completed, kBundles + 1);  // every bundle resolved
}

// ---------------------------------------------------------------------------
// Per-shard quarantine over a real sharded store (PR 6)
// ---------------------------------------------------------------------------

/// Adversary that corrupts exactly one subtree shard of a real
/// ShardedOramStore: every access routed to the victim shard comes back with
/// a bad tag (kAuthFailed, as tampering surfaces through seal verification),
/// while every other shard passes through untouched.
class ShardTamperOram : public oram::OramAccessor {
 public:
  ShardTamperOram(oram::ShardedOramStore& store, uint32_t victim)
      : store_(store), victim_(victim) {}

  std::optional<Bytes> read(const oram::BlockId& id) override {
    return store_.read(id);
  }
  void write(const oram::BlockId& id, BytesView data) override {
    store_.write(id, data);
  }
  oram::AccessAttempt try_read(const oram::BlockId& id) override {
    if (store_.shard_of(id) == victim_) {
      tampered_.fetch_add(1, std::memory_order_relaxed);
      return {Status::kAuthFailed, std::nullopt, 0};
    }
    return store_.try_read(id);
  }
  oram::AccessAttempt try_write(const oram::BlockId& id, BytesView data) override {
    if (store_.shard_of(id) == victim_) {
      tampered_.fetch_add(1, std::memory_order_relaxed);
      return {Status::kAuthFailed, std::nullopt, 0};
    }
    return store_.try_write(id, data);
  }
  uint64_t tampered() const { return tampered_.load(); }

 private:
  oram::ShardedOramStore& store_;
  const uint32_t victim_;
  std::atomic<uint64_t> tampered_{0};
};

TEST(ShardQuarantineTest, TamperOnOneShardQuarantinesOnlyThatShard) {
  // Real sharded store, pinned assignment: shard_of is stable across
  // accesses, so "the victim shard's pages" is a fixed, checkable set.
  auto config = oram::ShardedOramStore::partition(
      oram::OramConfig{.block_size = 64, .capacity = 1024, .max_stash_blocks = 128},
      /*shards=*/4);
  config.pin_shard_assignment = true;
  crypto::AesKey128 key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(0xA0 + i);
  oram::ShardedOramStore store(std::move(config), key, /*rng_seed=*/0xfa,
                               oram::SealMode::kChaChaHmac);

  // Seed 32 pages; pinning fixes each page's shard for the test's lifetime.
  for (uint64_t i = 0; i < 32; ++i) {
    store.write(oram::BlockId{i}, Bytes{static_cast<uint8_t>(i), 0x77});
  }
  std::vector<oram::BlockId> victim_ids;
  std::vector<oram::BlockId> healthy_ids;
  const uint32_t victim = store.shard_of(oram::BlockId{0});  // any occupied shard
  for (uint64_t i = 0; i < 32; ++i) {
    (store.shard_of(oram::BlockId{i}) == victim ? victim_ids : healthy_ids)
        .push_back(oram::BlockId{i});
  }
  ASSERT_GE(victim_ids.size(), 3u);  // enough to trip the breaker and probe after
  ASSERT_FALSE(healthy_ids.empty());

  ShardTamperOram tamper(store, victim);
  oram::OramFrontend frontend(
      tamper, {.concurrent_backend = true,
               .shard_count = 4,
               .shard_router = [&store](const oram::BlockId& id) {
                 return store.shard_of(id);
               },
               .shard_breaker_threshold = 2});

  // Two tampered responses from the victim shard trip its breaker (integrity
  // failures fail closed: no retries, so exactly two backend touches).
  EXPECT_EQ(frontend.try_read(victim_ids[0]).status, Status::kAuthFailed);
  EXPECT_EQ(frontend.try_read(victim_ids[1]).status, Status::kAuthFailed);
  EXPECT_EQ(tamper.tampered(), 2u);

  // The quarantine refuses further victim-shard service without touching the
  // adversary's subtree again...
  EXPECT_EQ(frontend.try_read(victim_ids[2]).status, Status::kUnavailable);
  EXPECT_EQ(tamper.tampered(), 2u);

  // ...while every page on every other shard still round-trips for real.
  for (const auto& id : healthy_ids) {
    const auto attempt = frontend.try_read(id);
    ASSERT_EQ(attempt.status, Status::kOk);
    ASSERT_TRUE(attempt.data.has_value());
    EXPECT_EQ((*attempt.data)[0], static_cast<uint8_t>(id.as_u64()));
  }

  const auto stats = frontend.snapshot();
  EXPECT_EQ(stats.shard_failures[victim], 2u);
  EXPECT_EQ(stats.shard_quarantined[victim], 1u);
  for (uint32_t s = 0; s < 4; ++s) {
    if (s == victim) continue;
    EXPECT_EQ(stats.shard_failures[s], 0u) << s;
    EXPECT_EQ(stats.shard_quarantined[s], 0u) << s;
  }
  EXPECT_EQ(stats.shard_unavailable, 1u);
}

// The SP's node feed is covered too: with stale-proof faults forced on, the
// genuine Merkle verification rejects the sync fail-closed with kBadProof.
TEST_F(EngineFaultTest, SyncRejectsTamperedProofs) {
  FaultPlanConfig fconfig;
  fconfig.fault_rate = 1.0;
  fconfig.weight_stale_proof = 1.0;
  FaultPlan plan(fconfig);
  service::PreExecutionEngine engine(node_, make_config(&plan));
  EXPECT_EQ(engine.synchronize(), Status::kBadProof);
}

}  // namespace
}  // namespace hardtape
