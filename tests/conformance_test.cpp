// Conformance suites:
//  - the full EIP-2200/EIP-3529 SSTORE gas & refund case matrix, measured
//    in-EVM with the GAS opcode (parameterized),
//  - u256 algebraic properties over randomized inputs (parameterized seeds),
//  - Path ORAM durability across a (block_size, Z, capacity) grid.
#include <gtest/gtest.h>

#include "evm/assembler.hpp"
#include "evm/interpreter.hpp"
#include "oram/path_oram.hpp"
#include "state/overlay.hpp"

namespace hardtape {
namespace {

// ---------------------------------------------------------------------------
// SSTORE gas matrix
// ---------------------------------------------------------------------------

struct SstoreCase {
  const char* name;
  uint64_t original;  // value in the base state
  uint64_t current;   // value written earlier in the SAME tx (0 = skip write)
  bool prewarm;       // SLOAD the slot first (warm, non-dirty cases)
  uint64_t next;      // the measured SSTORE's value
  uint64_t expect_gas;
  uint64_t expect_refund;
};

// Berlin/London parameters: warm base 100, set 20000, reset 2900,
// clear refund 4800, cold surcharge 2100 (avoided via prewarm/dirty writes).
const SstoreCase kSstoreCases[] = {
    {"noop_same_value", 5, 0, true, 5, 100, 0},
    {"clean_set_from_zero", 0, 0, true, 7, 20000, 0},
    {"clean_clear_nonzero", 5, 0, true, 0, 2900, 4800},
    {"clean_change_nonzero", 5, 0, true, 7, 2900, 0},
    {"dirty_change_again", 5, 7, false, 9, 100, 0},
    {"dirty_clear_after_change", 5, 7, false, 0, 100, 4800},
    {"dirty_restore_original_nonzero", 5, 7, false, 5, 100, 2800},
    {"dirty_set_after_clear", 5, 0xFFFF, false, 3, 100, 0},  // current!=0 path
    {"dirty_restore_original_zero", 0, 7, false, 0, 100, 19900},
    {"dirty_clear_was_cleared", 5, 0, false, 3, 100, 0},  // see body: C==0 via write
};

class SstoreGasTest : public ::testing::TestWithParam<SstoreCase> {};

INSTANTIATE_TEST_SUITE_P(Eip2200, SstoreGasTest, ::testing::ValuesIn(kSstoreCases),
                         [](const auto& info) { return info.param.name; });

TEST_P(SstoreGasTest, GasAndRefundMatchSpec) {
  const SstoreCase& c = GetParam();
  Address contract, caller;
  contract.bytes[19] = 0xCC;
  caller.bytes[19] = 0xAA;

  state::InMemoryState base;
  base.put_account(caller, state::Account{.balance = u256{1} << 40});
  if (c.original != 0) base.put_storage(contract, u256{1}, u256{c.original});

  // Program: [prelude to reach the target current/warm state]
  //          GAS; PUSH new; PUSH key; SSTORE; GAS; SWAP1 SUB; return word.
  std::string src;
  if (c.prewarm) {
    src += "PUSH1 0x01 SLOAD POP\n";  // warm the slot, O == C
  } else {
    // Dirty the slot within the same transaction: C = c.current.
    src += "PUSH2 " + std::to_string(c.current) + " PUSH1 0x01 SSTORE\n";
  }
  src += R"(
    GAS
    PUSH2 )" + std::to_string(c.next) + R"( PUSH1 0x01 SSTORE
    GAS
    SWAP1 SUB
    PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
  )";
  base.put_code(contract, evm::assemble(src));

  state::OverlayState overlay(base);
  evm::Interpreter interp(overlay, evm::BlockContext{});
  const uint64_t refund_before_tx = 0;
  evm::Interpreter::Message msg;
  msg.code_address = contract;
  msg.recipient = contract;
  msg.sender = caller;
  msg.gas = 1'000'000;
  msg.depth = 1;
  // Match execute_transaction()'s per-tx reset.
  overlay.begin_transaction();
  const auto result = interp.call(msg);
  ASSERT_EQ(result.status, evm::VmStatus::kSuccess) << evm::to_string(result.status);

  // Between the two GAS reads: PUSH2(3) + PUSH1(3) + SSTORE(X) + GAS(2).
  const uint64_t measured = u256::from_be_bytes(result.output).as_u64() - 8;
  EXPECT_EQ(measured, c.expect_gas) << c.name;
  EXPECT_EQ(overlay.refund() - refund_before_tx, c.expect_refund) << c.name;
}

// ---------------------------------------------------------------------------
// u256 properties
// ---------------------------------------------------------------------------

class U256PropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, U256PropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST_P(U256PropertyTest, RingAxioms) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const u256 a(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    const u256 b(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    const u256 c(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    ASSERT_EQ(a + b, b + a);
    ASSERT_EQ((a + b) + c, a + (b + c));
    ASSERT_EQ(a * b, b * a);
    ASSERT_EQ((a * b) * c, a * (b * c));
    ASSERT_EQ(a * (b + c), a * b + a * c);
    ASSERT_EQ(a + u256{}, a);
    ASSERT_EQ(a * u256{1}, a);
    ASSERT_EQ(a - a, u256{});
    ASSERT_EQ(a + a.neg(), u256{});
  }
}

TEST_P(U256PropertyTest, ShiftsAndMasks) {
  Random rng(GetParam() * 31);
  for (int i = 0; i < 200; ++i) {
    const u256 a(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    const unsigned s = static_cast<unsigned>(rng.uniform(256));
    ASSERT_EQ((a << s) >> s, a & (~u256{} >> s));
    ASSERT_EQ((a >> s) << s, a & (~u256{} << s));
    ASSERT_EQ(a ^ a, u256{});
    ASSERT_EQ(a & a, a);
    ASSERT_EQ(a | a, a);
    ASSERT_EQ(~~a, a);
    // Shift-by-multiplication equivalence for small shifts.
    const unsigned k = static_cast<unsigned>(rng.uniform(63));
    ASSERT_EQ(a << k, a * u256::exp(u256{2}, u256{k}));
  }
}

TEST_P(U256PropertyTest, DivModAgainstMultiplication) {
  Random rng(GetParam() * 127 + 1);
  for (int i = 0; i < 200; ++i) {
    const u256 a(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    u256 b(0, rng.uniform(2) ? rng.next_u64() : 0, rng.next_u64(), rng.next_u64() | 1);
    const auto [q, r] = u256::divmod(a, b);
    ASSERT_EQ(q * b + r, a);
    ASSERT_LT(r, b);
    // mulmod consistency with mul for small operands.
    const u256 small_a{rng.next_u64()};
    const u256 small_b{rng.next_u64()};
    const u256 m{rng.next_u64() | 1};
    ASSERT_EQ(u256::mulmod(small_a, small_b, m), (small_a * small_b) % m);
    ASSERT_EQ(u256::addmod(small_a, small_b, m), (small_a + small_b) % m);
  }
}

TEST_P(U256PropertyTest, SignedOpsAgainstInt128) {
  Random rng(GetParam() * 7919);
  for (int i = 0; i < 300; ++i) {
    // Sample small signed values, compute in __int128, compare.
    const auto sa = static_cast<int64_t>(rng.next_u64());
    const auto sb = static_cast<int64_t>(rng.next_u64() | 1);
    const u256 a = sa >= 0 ? u256{static_cast<uint64_t>(sa)}
                           : u256{static_cast<uint64_t>(-sa)}.neg();
    const u256 b = sb >= 0 ? u256{static_cast<uint64_t>(sb)}
                           : u256{static_cast<uint64_t>(-sb)}.neg();
    const __int128 q = static_cast<__int128>(sa) / sb;
    const __int128 r = static_cast<__int128>(sa) % sb;
    const u256 expect_q = q >= 0 ? u256{static_cast<uint64_t>(q)}
                                 : u256{static_cast<uint64_t>(-q)}.neg();
    const u256 expect_r = r >= 0 ? u256{static_cast<uint64_t>(r)}
                                 : u256{static_cast<uint64_t>(-r)}.neg();
    ASSERT_EQ(u256::sdiv(a, b), expect_q) << sa << "/" << sb;
    ASSERT_EQ(u256::smod(a, b), expect_r) << sa << "%" << sb;
    ASSERT_EQ(u256::slt(a, b), sa < sb);
  }
}

TEST_P(U256PropertyTest, StringRoundTrip) {
  Random rng(GetParam() * 57);
  for (int i = 0; i < 100; ++i) {
    const u256 a(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    ASSERT_EQ(u256::from_string(a.to_string()), a);
    ASSERT_EQ(u256::from_string("0x" + a.to_hex()), a);
    ASSERT_EQ(u256::from_be_bytes(a.to_be_bytes()), a);
  }
}

// ---------------------------------------------------------------------------
// ORAM durability grid
// ---------------------------------------------------------------------------

struct OramGridCase {
  size_t block_size;
  size_t bucket_capacity;
  size_t capacity;
};

class OramGridTest : public ::testing::TestWithParam<OramGridCase> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, OramGridTest,
    ::testing::Values(OramGridCase{32, 4, 64}, OramGridCase{64, 4, 256},
                      OramGridCase{64, 5, 256}, OramGridCase{128, 4, 1024},
                      OramGridCase{256, 6, 128}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.block_size) + "_z" +
             std::to_string(info.param.bucket_capacity) + "_n" +
             std::to_string(info.param.capacity);
    });

TEST_P(OramGridTest, ChurnPreservesData) {
  const OramGridCase& c = GetParam();
  oram::OramServer server(oram::OramConfig{.block_size = c.block_size,
                                           .bucket_capacity = c.bucket_capacity,
                                           .capacity = c.capacity,
                                           .max_stash_blocks = 4 * c.capacity});
  crypto::AesKey128 key{};
  key[0] = 0x44;
  oram::OramClient client(server, key, 77, oram::SealMode::kChaChaHmac);

  const size_t blocks = c.capacity / 2;  // 50% load
  Random rng(c.capacity + c.bucket_capacity);
  std::unordered_map<uint64_t, uint8_t> expected;
  auto bid = [](uint64_t i) {
    return crypto::keccak256(u256{i}.to_be_bytes_vec()).to_u256();
  };
  for (uint64_t i = 0; i < blocks; ++i) {
    const auto v = static_cast<uint8_t>(rng.next_u64());
    client.write(bid(i), Bytes{v});
    expected[i] = v;
  }
  for (int step = 0; step < 300; ++step) {
    const uint64_t i = rng.uniform(blocks);
    if (rng.uniform(3) == 0) {
      const auto v = static_cast<uint8_t>(rng.next_u64());
      client.write(bid(i), Bytes{v});
      expected[i] = v;
    } else {
      const auto back = client.read(bid(i));
      ASSERT_TRUE(back.has_value());
      ASSERT_EQ((*back)[0], expected[i]);
    }
  }
  EXPECT_FALSE(client.stash_overflowed());
}

}  // namespace
}  // namespace hardtape
