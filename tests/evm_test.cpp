// EVM interpreter tests: opcode semantics, gas accounting, call/create
// mechanics, precompiles, the assembler, and tracing.
#include <gtest/gtest.h>

#include <optional>

#include "common/errors.hpp"
#include "common/random.hpp"
#include "crypto/secp256k1.hpp"
#include "evm/assembler.hpp"
#include "evm/interpreter.hpp"
#include "evm/trace.hpp"
#include "state/overlay.hpp"

namespace hardtape::evm {
namespace {

Address addr(uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

const Address kCaller = addr(0xAA);
const Address kContract = addr(0xCC);

// Test fixture: a funded caller, one deployable contract slot, an
// interpreter over an overlay. Parameterized over the execution engine so
// every semantic test runs on both the reference loop and the fast path.
class EvmTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  EvmTest() {
    base_.put_account(kCaller, state::Account{.balance = u256::from_string("1000000000000000000")});
    rebuild();
  }

  // The overlay caches code on first read (correct: code is immutable within
  // a session), so each run() starts from a fresh overlay + interpreter to
  // let tests re-deploy at kContract.
  void rebuild() {
    overlay_opt_.emplace(base_);
    BlockContext block;
    block.number = 19145194;
    block.timestamp = 1706600000;
    block.coinbase = addr(0xFE);
    interp_opt_.emplace(*overlay_opt_, std::move(block));
    interp_opt_->set_observer(observer_);
    interp_opt_->set_frame_memory_limit(frame_memory_limit_);
    interp_opt_->set_engine(GetParam());
  }

  state::OverlayState& overlay_get() { return *overlay_opt_; }
  Interpreter& interp_get() { return *interp_opt_; }

  void set_observer(ExecutionObserver* obs) {
    observer_ = obs;
    interp_opt_->set_observer(obs);
  }
  void set_frame_memory_limit(uint64_t bytes) {
    frame_memory_limit_ = bytes;
    interp_opt_->set_frame_memory_limit(bytes);
  }

  // Deploys `code` at kContract and calls it.
  CallResult run(const Bytes& code, Bytes input = {}, u256 value = {},
                 uint64_t gas = 10'000'000) {
    base_.put_code(kContract, code);
    rebuild();
    Interpreter::Message msg;
    msg.code_address = kContract;
    msg.recipient = kContract;
    msg.sender = kCaller;
    msg.origin = kCaller;
    msg.value = value;
    msg.input = std::move(input);
    msg.gas = gas;
    msg.depth = 1;
    if (!value.is_zero()) {
      // Fund the transfer path like a real call would.
      overlay_get().add_balance(kCaller, value);
    }
    return interp_get().call(msg);
  }

  CallResult run_asm(std::string_view source, Bytes input = {}) {
    return run(assemble(source), std::move(input));
  }

  // Runs code that is expected to RETURN a 32-byte word; returns it.
  u256 run_word(std::string_view source, Bytes input = {}) {
    const CallResult r = run_asm(source, std::move(input));
    EXPECT_EQ(r.status, VmStatus::kSuccess) << to_string(r.status);
    EXPECT_EQ(r.output.size(), 32u);
    return u256::from_be_bytes(r.output);
  }

  state::InMemoryState base_;
  std::optional<state::OverlayState> overlay_opt_;
  std::optional<Interpreter> interp_opt_;
  ExecutionObserver* observer_ = nullptr;
  uint64_t frame_memory_limit_ = 0;
};

INSTANTIATE_TEST_SUITE_P(
    Engines, EvmTest,
    ::testing::Values(EngineKind::kReference, EngineKind::kFast),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return info.param == EngineKind::kReference ? "Reference" : "Fast";
    });

// Source snippet: RETURN the top of stack as one word.
constexpr std::string_view kReturnTop = R"(
  PUSH1 0x00
  MSTORE
  PUSH1 0x20
  PUSH1 0x00
  RETURN
)";

std::string ret(std::string_view body) {
  return std::string(body) + std::string(kReturnTop);
}

// --- assembler ---

TEST_P(EvmTest, AssemblerBasics) {
  const Bytes code = assemble("PUSH1 0x01 PUSH1 0x02 ADD STOP");
  EXPECT_EQ(code, (Bytes{0x60, 0x01, 0x60, 0x02, 0x01, 0x00}));
}

TEST_P(EvmTest, AssemblerAutoPushAndLabels) {
  const Bytes code = assemble(R"(
    PUSH @end    ; forward reference
    JUMP
    INVALID
  end:
    JUMPDEST
    STOP
  )");
  // PUSH2 0x0005 JUMP INVALID JUMPDEST STOP
  EXPECT_EQ(code, (Bytes{0x61, 0x00, 0x05, 0x56, 0xfe, 0x5b, 0x00}));
}

TEST_P(EvmTest, AssemblerWidePush) {
  const Bytes code = assemble("PUSH32 0xff PUSH 65536");
  EXPECT_EQ(code.size(), 1 + 32 + 1 + 3u);
  EXPECT_EQ(code[0], 0x7f);
  EXPECT_EQ(code[32], 0xff);
  EXPECT_EQ(code[33], 0x62);  // PUSH3
}

TEST_P(EvmTest, AssemblerErrors) {
  EXPECT_THROW(assemble("BOGUS"), UsageError);
  EXPECT_THROW(assemble("PUSH1"), UsageError);
  EXPECT_THROW(assemble("PUSH @missing JUMP"), UsageError);
  EXPECT_THROW(assemble("dup: dup:"), UsageError);  // duplicate label
  EXPECT_THROW(assemble("PUSH1 0x0100"), UsageError);  // too wide
}

TEST_P(EvmTest, DisassemblerRoundTrip) {
  const std::string text = disassemble(assemble("PUSH2 0x1234 MSTORE JUMPDEST STOP"));
  EXPECT_NE(text.find("PUSH2 0x1234"), std::string::npos);
  EXPECT_NE(text.find("JUMPDEST"), std::string::npos);
}

// --- arithmetic and logic ---

TEST_P(EvmTest, Arithmetic) {
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH1 4 ADD")), u256{7});
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH1 4 MUL")), u256{12});
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH1 10 SUB")), u256{7});  // 10 - 3
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH1 10 DIV")), u256{3});
  EXPECT_EQ(run_word(ret("PUSH1 0 PUSH1 10 DIV")), u256{});  // div by zero
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH1 10 MOD")), u256{1});
  EXPECT_EQ(run_word(ret("PUSH1 5 PUSH1 7 PUSH1 9 ADDMOD")), u256{1});  // (9+7)%5
  EXPECT_EQ(run_word(ret("PUSH1 5 PUSH1 7 PUSH1 9 MULMOD")), u256{3});  // (9*7)%5
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH1 2 EXP")), u256{8});  // 2^3
}

TEST_P(EvmTest, SignedArithmetic) {
  // -8 / 2 = -4
  EXPECT_EQ(run_word(ret("PUSH1 2 PUSH1 8 PUSH0 SUB SDIV")), u256{4}.neg());
  // -8 % 3 = -2
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH1 8 PUSH0 SUB SMOD")), u256{2}.neg());
  // SLT(-1, 0) = 1
  EXPECT_EQ(run_word(ret("PUSH0 PUSH1 1 PUSH0 SUB SLT")), u256{1});
  // SGT(1, -1) = 1
  EXPECT_EQ(run_word(ret("PUSH1 1 PUSH0 SUB PUSH1 1 SGT")), u256{1});
  // SAR(-8, 1) = -4
  EXPECT_EQ(run_word(ret("PUSH1 8 PUSH0 SUB PUSH1 1 SAR")), u256{4}.neg());
  // SIGNEXTEND byte 0 of 0xff = -1
  EXPECT_EQ(run_word(ret("PUSH1 0xff PUSH1 0 SIGNEXTEND")), ~u256{});
}

TEST_P(EvmTest, ComparisonAndBitwise) {
  EXPECT_EQ(run_word(ret("PUSH1 2 PUSH1 1 LT")), u256{1});
  EXPECT_EQ(run_word(ret("PUSH1 1 PUSH1 2 GT")), u256{1});
  EXPECT_EQ(run_word(ret("PUSH1 5 PUSH1 5 EQ")), u256{1});
  EXPECT_EQ(run_word(ret("PUSH0 ISZERO")), u256{1});
  EXPECT_EQ(run_word(ret("PUSH1 0x0f PUSH1 0x3c AND")), u256{0x0c});
  EXPECT_EQ(run_word(ret("PUSH1 0x0f PUSH1 0x30 OR")), u256{0x3f});
  EXPECT_EQ(run_word(ret("PUSH1 0x0f PUSH1 0x3c XOR")), u256{0x33});
  EXPECT_EQ(run_word(ret("PUSH0 NOT")), ~u256{});
  EXPECT_EQ(run_word(ret("PUSH1 1 PUSH1 4 SHL")), u256{16});  // 1 << 4
  EXPECT_EQ(run_word(ret("PUSH1 16 PUSH1 4 SHR")), u256{1});
  // BYTE 31 of 0x..ff is 0xff.
  EXPECT_EQ(run_word(ret("PUSH1 0xff PUSH1 31 BYTE")), u256{0xff});
}

TEST_P(EvmTest, Sha3Opcode) {
  // keccak256 of one zero word, computed in-EVM vs. host-side.
  const u256 expected = crypto::keccak256(Bytes(32, 0)).to_u256();
  EXPECT_EQ(run_word(ret("PUSH1 0x20 PUSH1 0x00 SHA3")), expected);
}

// --- stack ops ---

TEST_P(EvmTest, DupSwapPop) {
  EXPECT_EQ(run_word(ret("PUSH1 7 DUP1 ADD")), u256{14});
  EXPECT_EQ(run_word(ret("PUSH1 2 PUSH1 1 SWAP1 SUB")), u256{1});  // swap -> 2 - 1
  EXPECT_EQ(run_word(ret("PUSH1 9 PUSH1 5 POP")), u256{9});
  // DUP16 reaches deep.
  std::string deep;
  for (int i = 1; i <= 16; ++i) deep += "PUSH1 " + std::to_string(i) + " ";
  deep += "DUP16";
  EXPECT_EQ(run_word(ret(deep)), u256{1});
}

TEST_P(EvmTest, StackUnderflowAndOverflow) {
  EXPECT_EQ(run_asm("ADD").status, VmStatus::kStackUnderflow);
  std::string overflow = "begin: JUMPDEST PUSH1 1 PUSH @begin JUMP";
  EXPECT_EQ(run_asm(overflow).status, VmStatus::kStackOverflow);
}

// --- control flow ---

TEST_P(EvmTest, JumpAndJumpi) {
  EXPECT_EQ(run_word(ret(R"(
    PUSH1 1
    PUSH @skip
    JUMPI
    INVALID
  skip:
    JUMPDEST
    PUSH1 42
  )")), u256{42});
  // Untaken JUMPI falls through.
  EXPECT_EQ(run_word(ret(R"(
    PUSH0
    PUSH @target
    JUMPI
    PUSH1 7
    PUSH @end
    JUMP
  target:
    JUMPDEST
    PUSH1 9
  end:
    JUMPDEST
  )")), u256{7});
}

TEST_P(EvmTest, InvalidJumpDestinations) {
  EXPECT_EQ(run_asm("PUSH1 0x01 JUMP STOP").status, VmStatus::kBadJumpDestination);
  // Jump into PUSH immediate data that happens to contain 0x5b.
  EXPECT_EQ(run_asm("PUSH1 0x03 JUMP PUSH1 0x5b STOP").status,
            VmStatus::kBadJumpDestination);
  EXPECT_EQ(run_asm("PUSH2 0xffff JUMP").status, VmStatus::kBadJumpDestination);
}

TEST_P(EvmTest, RunningOffCodeEndIsStop) {
  EXPECT_EQ(run_asm("PUSH1 1 PUSH1 2 ADD").status, VmStatus::kSuccess);
}

TEST_P(EvmTest, InvalidAndUndefinedOpcodes) {
  const CallResult r1 = run(Bytes{0xfe});
  EXPECT_EQ(r1.status, VmStatus::kInvalidInstruction);
  EXPECT_EQ(r1.gas_left, 0u);  // consumes all gas
  const CallResult r2 = run(Bytes{0x21});  // undefined opcode
  EXPECT_EQ(r2.status, VmStatus::kUndefinedInstruction);
}

// --- memory ---

TEST_P(EvmTest, MemoryOps) {
  EXPECT_EQ(run_word(ret(
                "PUSH1 0xab PUSH1 0x40 MSTORE8 PUSH1 0x40 MLOAD PUSH1 248 SHR")),
            u256{0xab});
  // MSIZE expands in words.
  EXPECT_EQ(run_word(ret("PUSH1 0 PUSH1 0x21 MSTORE8 MSIZE")), u256{0x40});
  // MCOPY.
  EXPECT_EQ(run_word(R"(
    PUSH1 0x99 PUSH1 0x00 MSTORE      ; mem[0..32] = 0x99
    PUSH1 0x20 PUSH1 0x00 PUSH1 0x40 MCOPY  ; copy 32 bytes 0 -> 0x40
    PUSH1 0x40 MLOAD
    PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
  )"), u256{0x99});
}

TEST_P(EvmTest, MemoryExpansionGasCharged) {
  // Same program, bigger memory touch -> more gas.
  const CallResult small = run_asm("PUSH1 1 PUSH1 0x00 MSTORE STOP");
  const CallResult big = run_asm("PUSH1 1 PUSH2 0x2000 MSTORE STOP");
  EXPECT_EQ(small.status, VmStatus::kSuccess);
  EXPECT_EQ(big.status, VmStatus::kSuccess);
  EXPECT_GT(small.gas_left, big.gas_left);
}

TEST_P(EvmTest, AbsurdMemoryOffsetIsOutOfGas) {
  EXPECT_EQ(run_asm("PUSH1 1 PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff MSTORE").status,
            VmStatus::kOutOfGas);
}

TEST_P(EvmTest, TerabyteMemoryOffsetIsOutOfGasBeforeExpansion) {
  // Regression for the memory_gas uint64 overflow: a 2^40-byte offset needs
  // ~2^35 words, so the unchecked quadratic term words*words wrapped uint64
  // and charged only the linear ~1.03e11 gas. Under a gas limit that can
  // afford the linear term, the wrapped cost would have admitted a ~1 TiB
  // expansion (the 2^41 hard cap does not catch 2^40). The saturated
  // memory_gas must fail with out-of-gas before any expansion happens.
  const CallResult r = run(assemble("PUSH1 1 PUSH 0x10000000000 MSTORE STOP"),
                           {}, {}, /*gas=*/200'000'000'000ull);
  EXPECT_EQ(r.status, VmStatus::kOutOfGas);
}

// --- signed arithmetic / shift edge cases ---

TEST_P(EvmTest, SdivIntMinByMinusOne) {
  // INT256_MIN / -1 overflows two's complement; EVM defines the result as
  // INT256_MIN itself.
  const u256 int_min = u256{1} << 255;
  EXPECT_EQ(run_word(ret("PUSH0 NOT PUSH1 1 PUSH1 255 SHL SDIV")), int_min);
  // And the matching SMOD is 0.
  EXPECT_EQ(run_word(ret("PUSH0 NOT PUSH1 1 PUSH1 255 SHL SMOD")), u256{});
}

TEST_P(EvmTest, SmodTakesSignOfDividend) {
  //  8 smod -3 = 2 (sign follows the dividend, not the divisor)
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH0 SUB PUSH1 8 SMOD")), u256{2});
  // -8 smod -3 = -2
  EXPECT_EQ(run_word(ret("PUSH1 3 PUSH0 SUB PUSH1 8 PUSH0 SUB SMOD")),
            u256{2}.neg());
}

TEST_P(EvmTest, SignExtendHighIndices) {
  // Index 31 treats the full word as already sign-extended: identity.
  const u256 neg = u256{5}.neg();
  EXPECT_EQ(run_word(ret("PUSH1 5 PUSH0 SUB PUSH1 31 SIGNEXTEND")), neg);
  EXPECT_EQ(run_word(ret("PUSH1 0x7f PUSH1 31 SIGNEXTEND")), u256{0x7f});
  // Index >= 32 is out of range: identity, NOT sign extension from byte 0.
  EXPECT_EQ(run_word(ret("PUSH1 0xff PUSH1 32 SIGNEXTEND")), u256{0xff});
  EXPECT_EQ(run_word(ret("PUSH1 0xff PUSH2 0x0100 SIGNEXTEND")), u256{0xff});
}

TEST_P(EvmTest, SarShiftOfWordSizeOrMore) {
  // Arithmetic shift >= 256 of a negative value saturates to -1 (all ones),
  // of a non-negative value to 0.
  EXPECT_EQ(run_word(ret("PUSH1 1 PUSH0 SUB PUSH2 0x0100 SAR")), ~u256{});
  EXPECT_EQ(run_word(ret("PUSH1 1 PUSH0 SUB PUSH2 0xffff SAR")), ~u256{});
  EXPECT_EQ(run_word(ret("PUSH1 5 PUSH2 0x0100 SAR")), u256{});
}

TEST_P(EvmTest, ExpFullWidthExponent) {
  // Exponent with bit length 256 (top bit set). 2^(2^255) mod 2^256 = 0.
  EXPECT_EQ(run_word(ret("PUSH1 1 PUSH1 255 SHL PUSH1 2 EXP")), u256{});
  // (-1)^(2^256 - 1): odd exponent, so the result stays -1.
  EXPECT_EQ(run_word(ret("PUSH0 NOT PUSH0 NOT EXP")), ~u256{});
  // 1^(anything) = 1 even when the exponent metering walks all 32 bytes.
  EXPECT_EQ(run_word(ret("PUSH0 NOT PUSH1 1 EXP")), u256{1});
}

// --- calldata / code / returndata ---

TEST_P(EvmTest, CalldataOps) {
  Bytes input = from_hex("00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff");
  EXPECT_EQ(run_word(ret("PUSH1 0 CALLDATALOAD"), input),
            u256::from_be_bytes(input));
  EXPECT_EQ(run_word(ret("CALLDATASIZE"), input), u256{32});
  // Out-of-range load zero-pads.
  EXPECT_EQ(run_word(ret("PUSH1 0x30 CALLDATALOAD"), input), u256{});
  // CALLDATACOPY.
  EXPECT_EQ(run_word(R"(
    PUSH1 0x20 PUSH1 0x00 PUSH1 0x00 CALLDATACOPY
    PUSH1 0x00 MLOAD
    PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
  )", input), u256::from_be_bytes(input));
}

TEST_P(EvmTest, CodeSizeAndCopy) {
  const Bytes code = assemble(ret("CODESIZE"));
  base_.put_code(kContract, code);
  EXPECT_EQ(run(code).output, u256{code.size()}.to_be_bytes_vec());
}

// --- environment ---

TEST_P(EvmTest, EnvironmentOpcodes) {
  EXPECT_EQ(run_word(ret("ADDRESS")), kContract.to_u256());
  EXPECT_EQ(run_word(ret("CALLER")), kCaller.to_u256());
  EXPECT_EQ(run_word(ret("ORIGIN")), kCaller.to_u256());
  EXPECT_EQ(run_word(ret("NUMBER")), u256{19145194});
  EXPECT_EQ(run_word(ret("TIMESTAMP")), u256{1706600000});
  EXPECT_EQ(run_word(ret("CHAINID")), u256{1});
  EXPECT_EQ(run_word(ret("COINBASE")), addr(0xFE).to_u256());
  EXPECT_EQ(run_word(ret("GASLIMIT")), u256{30'000'000});
  EXPECT_EQ(run_word(ret("BASEFEE")), u256{7});
}

TEST_P(EvmTest, CallValueAndSelfBalance) {
  const CallResult r = run(assemble(ret("CALLVALUE")), {}, u256{12345});
  EXPECT_EQ(u256::from_be_bytes(r.output), u256{12345});
  // The transferred value is visible via SELFBALANCE.
  const CallResult r2 = run(assemble(ret("SELFBALANCE")), {}, u256{777});
  EXPECT_EQ(u256::from_be_bytes(r2.output), u256{777});
}

TEST_P(EvmTest, BalanceOpcode) {
  base_.put_account(addr(0x55), state::Account{.balance = u256{424242}});
  const std::string src = "PUSH20 0x" + to_hex(addr(0x55).view()) + " BALANCE";
  EXPECT_EQ(run_word(ret(src)), u256{424242});
}

TEST_P(EvmTest, ExtCodeOps) {
  base_.put_code(addr(0x66), Bytes{0x60, 0x01, 0x00});
  const std::string target = "PUSH20 0x" + to_hex(addr(0x66).view());
  EXPECT_EQ(run_word(ret(target + " EXTCODESIZE")), u256{3});
  EXPECT_EQ(run_word(ret(target + " EXTCODEHASH")),
            crypto::keccak256(Bytes{0x60, 0x01, 0x00}).to_u256());
  // Nonexistent account hashes to zero.
  EXPECT_EQ(run_word(ret("PUSH20 0x00000000000000000000000000000000000000de EXTCODEHASH")),
            u256{});
}

// --- storage ---

TEST_P(EvmTest, SloadSstore) {
  EXPECT_EQ(run_word(ret(R"(
    PUSH1 0x2a PUSH1 0x01 SSTORE
    PUSH1 0x01 SLOAD
  )")), u256{42});
  EXPECT_EQ(overlay_get().storage(kContract, u256{1}), u256{42});
}

TEST_P(EvmTest, SstoreGasWarmVsCold) {
  // Two stores to different cold slots vs. two stores to the same slot.
  const CallResult two_cold = run_asm(
      "PUSH1 1 PUSH1 0x01 SSTORE PUSH1 1 PUSH1 0x02 SSTORE STOP");
  state::OverlayState fresh(base_);
  Interpreter interp2(fresh, BlockContext{});
  Interpreter::Message msg2;
  msg2.code_address = kContract;
  msg2.recipient = kContract;
  msg2.sender = kCaller;
  msg2.gas = 10'000'000;
  msg2.depth = 1;
  base_.put_code(kContract, assemble("PUSH1 1 PUSH1 0x01 SSTORE PUSH1 2 PUSH1 0x01 SSTORE STOP"));
  const CallResult warm_second = interp2.call(msg2);
  EXPECT_LT(two_cold.gas_left, warm_second.gas_left);
}

TEST_P(EvmTest, SstoreRefundOnClear) {
  base_.put_storage(kContract, u256{5}, u256{99});
  const CallResult r = run_asm("PUSH0 PUSH1 0x05 SSTORE STOP");
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(overlay_get().refund(), 4800u);
}

TEST_P(EvmTest, SstoreSentryGas) {
  // SSTORE with <= 2300 gas left must fail (EIP-2200 sentry).
  const Bytes code = assemble("PUSH1 1 PUSH1 1 SSTORE STOP");
  base_.put_code(kContract, code);
  Interpreter::Message msg;
  msg.code_address = kContract;
  msg.recipient = kContract;
  msg.sender = kCaller;
  msg.gas = 2300 + 6;  // 2 pushes charged, then sentry trips
  msg.depth = 1;
  EXPECT_EQ(interp_get().call(msg).status, VmStatus::kOutOfGas);
}

TEST_P(EvmTest, TransientStorage) {
  EXPECT_EQ(run_word(ret(R"(
    PUSH1 0x63 PUSH1 0x07 TSTORE
    PUSH1 0x07 TLOAD
  )")), u256{0x63});
  // Not persisted to regular storage.
  EXPECT_EQ(overlay_get().storage(kContract, u256{7}), u256{});
}

// --- return / revert ---

TEST_P(EvmTest, RevertReturnsPayloadAndKeepsGas) {
  const CallResult r = run_asm(R"(
    PUSH1 0xee PUSH1 0x00 MSTORE
    PUSH1 0x20 PUSH1 0x00 REVERT
  )");
  EXPECT_EQ(r.status, VmStatus::kRevert);
  EXPECT_EQ(u256::from_be_bytes(r.output), u256{0xee});
  EXPECT_GT(r.gas_left, 0u);
}

TEST_P(EvmTest, RevertRollsBackState) {
  const CallResult r = run_asm("PUSH1 9 PUSH1 1 SSTORE PUSH1 0 PUSH1 0 REVERT");
  EXPECT_EQ(r.status, VmStatus::kRevert);
  EXPECT_EQ(overlay_get().storage(kContract, u256{1}), u256{});
}

// --- calls ---

TEST_P(EvmTest, CallTransfersValueAndReturnsData) {
  // Callee returns CALLVALUE.
  base_.put_code(addr(0x77), assemble(ret("CALLVALUE")));
  base_.put_account(kContract, state::Account{.balance = u256{100000}});
  const std::string src = R"(
    PUSH1 0x20   ; retLen
    PUSH1 0x00   ; retOff
    PUSH1 0x00   ; argLen
    PUSH1 0x00   ; argOff
    PUSH2 0x1234 ; value
    PUSH20 0x0000000000000000000000000000000000000077
    PUSH3 0xffffff
    CALL
    POP
    PUSH1 0x20 PUSH1 0x00 RETURN
  )";
  const CallResult r = run_asm(src);
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(u256::from_be_bytes(r.output), u256{0x1234});
  EXPECT_EQ(overlay_get().balance(addr(0x77)), u256{0x1234});
}

TEST_P(EvmTest, CallToEmptyAccountSucceeds) {
  EXPECT_EQ(run_word(ret(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x00000000000000000000000000000000000000e1
    PUSH2 0xffff
    CALL
  )")), u256{1});
}

TEST_P(EvmTest, FailedCalleeRevertBubblesReturnData) {
  base_.put_code(addr(0x78), assemble(R"(
    PUSH1 0xbd PUSH1 0x00 MSTORE
    PUSH1 0x20 PUSH1 0x00 REVERT
  )"));
  const CallResult r = run_asm(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x0000000000000000000000000000000000000078
    PUSH3 0xffffff
    CALL
    PUSH1 0x00 MSTORE                     ; success flag (0)
    RETURNDATASIZE PUSH1 0x00 PUSH1 0x20 RETURNDATACOPY
    PUSH1 0x40 PUSH1 0x00 RETURN
  )");
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  ASSERT_EQ(r.output.size(), 64u);
  EXPECT_EQ(u256::from_be_bytes(BytesView{r.output.data(), 32}), u256{});      // flag 0
  EXPECT_EQ(u256::from_be_bytes(BytesView{r.output.data() + 32, 32}), u256{0xbd});
}

TEST_P(EvmTest, CalleeStateRevertedOnFailure) {
  base_.put_code(addr(0x79), assemble("PUSH1 5 PUSH1 9 SSTORE INVALID"));
  const CallResult r = run_asm(ret(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x0000000000000000000000000000000000000079
    PUSH3 0xffffff
    CALL
  )"));
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(u256::from_be_bytes(r.output), u256{});  // call failed
  EXPECT_EQ(overlay_get().storage(addr(0x79), u256{9}), u256{});  // rolled back
}

TEST_P(EvmTest, DelegatecallRunsInCallerContext) {
  // The library writes to slot 3; under DELEGATECALL the write lands in the
  // caller's storage and CALLER is preserved.
  base_.put_code(addr(0x7A), assemble("PUSH1 0x11 PUSH1 0x03 SSTORE CALLER PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN"));
  const CallResult r = run_asm(R"(
    PUSH1 0x20 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x000000000000000000000000000000000000007a
    PUSH3 0xffffff
    DELEGATECALL
    POP
    PUSH1 0x20 PUSH1 0x00 RETURN
  )");
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(Address::from_u256(u256::from_be_bytes(r.output)), kCaller);
  EXPECT_EQ(overlay_get().storage(kContract, u256{3}), u256{0x11});
  EXPECT_EQ(overlay_get().storage(addr(0x7A), u256{3}), u256{});
}

TEST_P(EvmTest, StaticcallBlocksWrites) {
  base_.put_code(addr(0x7B), assemble("PUSH1 1 PUSH1 1 SSTORE STOP"));
  EXPECT_EQ(run_word(ret(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x000000000000000000000000000000000000007b
    PUSH3 0xffffff
    STATICCALL
  )")), u256{});  // callee failed with static violation
  EXPECT_EQ(overlay_get().storage(addr(0x7B), u256{1}), u256{});
}

TEST_P(EvmTest, StaticcallAllowsReads) {
  base_.put_storage(addr(0x7C), u256{2}, u256{0x5a});
  base_.put_code(addr(0x7C), assemble(ret("PUSH1 0x02 SLOAD")));
  const CallResult r = run_asm(R"(
    PUSH1 0x20 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x000000000000000000000000000000000000007c
    PUSH3 0xffffff
    STATICCALL
    POP
    PUSH1 0x20 PUSH1 0x00 RETURN
  )");
  EXPECT_EQ(u256::from_be_bytes(r.output), u256{0x5a});
}

TEST_P(EvmTest, InsufficientBalanceCallPushesZero) {
  // Contract has no balance; CALL with value must fail locally.
  EXPECT_EQ(run_word(ret(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH2 0xffff
    PUSH20 0x00000000000000000000000000000000000000e2
    PUSH2 0xffff
    CALL
  )")), u256{});
}

TEST_P(EvmTest, CallDepthLimit) {
  // Self-recursive call; must bottom out at depth 1024 without crashing.
  const std::string src = ret(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x00000000000000000000000000000000000000cc
    GAS
    CALL
  )");
  const CallResult r = run_asm(src);
  EXPECT_EQ(r.status, VmStatus::kSuccess);
}

// --- create ---

TEST_P(EvmTest, CreateDeploysRunnableCode) {
  // Init code returns the runtime code `PUSH1 0x2a ...ret word` (returns 42).
  const Bytes runtime = assemble(ret("PUSH1 0x2a"));
  const std::string init_src = "PUSH32 0x" + to_hex(right_pad(runtime, 32)) +
                               " PUSH1 0x00 MSTORE PUSH1 " +
                               std::to_string(runtime.size()) +
                               " PUSH1 0x00 RETURN";
  const Bytes init = assemble(init_src);
  ASSERT_LE(init.size(), 64u);
  // Stage the init code into memory with two word stores, then CREATE.
  const Bytes lo(init.begin(), init.begin() + std::min<size_t>(32, init.size()));
  const Bytes hi(init.begin() + std::min<size_t>(32, init.size()), init.end());
  const std::string src =
      "PUSH32 0x" + to_hex(right_pad(lo, 32)) + " PUSH1 0x00 MSTORE " +
      "PUSH32 0x" + to_hex(right_pad(hi, 32)) + " PUSH1 0x20 MSTORE " +
      "PUSH1 " + std::to_string(init.size()) + " PUSH1 0x00 PUSH1 0x00 CREATE " +
      "PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN";
  const CallResult r = run_asm(src);
  ASSERT_EQ(r.status, VmStatus::kSuccess);
  const Address deployed = Address::from_u256(u256::from_be_bytes(r.output));
  EXPECT_FALSE(deployed.is_zero());
  EXPECT_EQ(overlay_get().code(deployed), runtime);
  EXPECT_EQ(overlay_get().nonce(deployed), 1u);
  // Deployer nonce bumped.
  EXPECT_EQ(overlay_get().nonce(kContract), 1u);
}

TEST_P(EvmTest, CreateAddressKnownVector) {
  // Well-known: the first contract of 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0
  // (nonce 0) is the famous 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d.
  state::InMemoryState base;
  const Address sender = Address::from_hex("0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0");
  base.put_account(sender, state::Account{.balance = u256{1} << 60});
  state::OverlayState overlay(base);
  Interpreter interp(overlay, BlockContext{});
  Transaction tx;
  tx.from = sender;
  tx.to = std::nullopt;
  tx.data = assemble("PUSH1 0x00 PUSH1 0x00 RETURN");  // deploy empty code
  const TxResult r = interp.execute_transaction(tx);
  ASSERT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(r.create_address.hex(), "0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d");
}

TEST_P(EvmTest, Create2AddressDeterministic) {
  const std::string create2 = R"(
    PUSH1 0x00        ; empty init code -> empty contract
    PUSH1 0x00
    PUSH1 0x00
    PUSH1 0x07        ; salt... wait: order is value, offset, len, salt
  )";
  // CREATE2 stack: value, offset, length, salt (salt popped last).
  const std::string src = ret(R"(
    PUSH1 0x07   ; salt
    PUSH1 0x00   ; length
    PUSH1 0x00   ; offset
    PUSH1 0x00   ; value
    CREATE2
  )");
  const u256 addr1 = run_word(src);
  // Second create at the same salt collides.
  const u256 addr2 = run_word(ret(R"(
    PUSH1 0x07 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 CREATE2
    POP
    PUSH1 0x07 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 CREATE2
  )"));
  EXPECT_FALSE(addr1.is_zero());
  EXPECT_TRUE(addr2.is_zero());  // collision pushes 0
}

TEST_P(EvmTest, CreateRevertedInitcodePushesZero) {
  // Init code is the single byte 0xfd (REVERT with an empty stack ->
  // failure), so CREATE must push zero.
  EXPECT_EQ(run_word(ret(R"(
    PUSH1 0xfd PUSH1 0x00 MSTORE8
    PUSH1 0x01   ; length
    PUSH1 0x00   ; offset
    PUSH1 0x00   ; value (popped first)
    CREATE
  )")), u256{});
}

TEST_P(EvmTest, CreateRejectsEfPrefix) {
  // Init code returning 0xEF-prefixed runtime must fail (EIP-3541).
  const Bytes init = assemble("PUSH1 0xef PUSH1 0x00 MSTORE8 PUSH1 0x01 PUSH1 0x00 RETURN");
  const std::string src = ret(
      "PUSH32 0x" + to_hex(right_pad(init, 32)) + " PUSH1 0x00 MSTORE PUSH1 " +
      std::to_string(init.size()) + " PUSH1 0x00 PUSH1 0x00 CREATE");
  EXPECT_EQ(run_word(src), u256{});
}

// --- selfdestruct ---

TEST_P(EvmTest, SelfdestructMovesBalance) {
  base_.put_account(kContract, state::Account{.balance = u256{5000}});
  const CallResult r = run_asm(
      "PUSH20 0x00000000000000000000000000000000000000b1 SELFDESTRUCT");
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(overlay_get().balance(addr(0xb1)), u256{5000});
  EXPECT_EQ(overlay_get().balance(kContract), u256{});
}

// --- precompiles ---

TEST_P(EvmTest, Sha256Precompile) {
  const Bytes input = {'a', 'b', 'c'};
  const CallResult r = run_asm(R"(
    PUSH1 0x61 PUSH1 0x00 MSTORE8
    PUSH1 0x62 PUSH1 0x01 MSTORE8
    PUSH1 0x63 PUSH1 0x02 MSTORE8
    PUSH1 0x20 PUSH1 0x40 PUSH1 0x03 PUSH1 0x00
    PUSH1 0x02       ; sha256 precompile
    PUSH2 0xffff
    STATICCALL
    POP
    PUSH1 0x20 PUSH1 0x40 RETURN
  )");
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(to_hex(r.output),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST_P(EvmTest, IdentityPrecompile) {
  Bytes input = from_hex("deadbeef");
  const CallResult r = run_asm(R"(
    PUSH1 0x04 PUSH1 0x00 PUSH1 0x00 CALLDATACOPY
    PUSH1 0x04 PUSH1 0x20 PUSH1 0x04 PUSH1 0x00
    PUSH1 0x04       ; identity precompile
    PUSH2 0xffff
    STATICCALL
    POP
    PUSH1 0x04 PUSH1 0x20 RETURN
  )", input);
  EXPECT_EQ(to_hex(r.output), "deadbeef");
}

TEST_P(EvmTest, EcrecoverPrecompile) {
  // Host-side: sign a hash, then recover in-EVM.
  const crypto::PrivateKey key(u256{0xbeef});
  const H256 hash = crypto::keccak256("sign me");
  const crypto::Signature sig = key.sign(hash);
  Bytes input;
  append(input, hash.view());
  append(input, u256{uint64_t{27} + sig.recovery_id}.to_be_bytes_vec());
  append(input, sig.r.to_be_bytes_vec());
  append(input, sig.s.to_be_bytes_vec());
  const CallResult r = run_asm(R"(
    PUSH1 0x80 PUSH1 0x00 PUSH1 0x00 CALLDATACOPY
    PUSH1 0x20 PUSH1 0x80 PUSH1 0x80 PUSH1 0x00
    PUSH1 0x01       ; ecrecover
    PUSH2 0xffff
    STATICCALL
    POP
    PUSH1 0x20 PUSH1 0x80 RETURN
  )", input);
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(Address::from_u256(u256::from_be_bytes(r.output)),
            crypto::pubkey_to_address(key.public_key()));
}

TEST_P(EvmTest, ModexpPrecompile) {
  // 3^5 mod 7 = 5, via the 0x05 precompile.
  Bytes input;
  append(input, u256{1}.to_be_bytes_vec());  // base_len
  append(input, u256{1}.to_be_bytes_vec());  // exp_len
  append(input, u256{1}.to_be_bytes_vec());  // mod_len
  input.push_back(3);
  input.push_back(5);
  input.push_back(7);
  const CallResult r = run_asm(R"(
    PUSH1 0x63 PUSH1 0x00 PUSH1 0x00 CALLDATACOPY
    PUSH1 0x01 PUSH1 0x80 PUSH1 0x63 PUSH1 0x00
    PUSH1 0x05       ; modexp
    PUSH2 0xffff
    STATICCALL
    POP
    PUSH1 0x01 PUSH1 0x80 RETURN
  )", input);
  ASSERT_EQ(r.status, VmStatus::kSuccess);
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 5);
}

TEST_P(EvmTest, ModexpWordSizedOperands) {
  // Fermat: a^(p-1) mod p == 1 for prime p (secp256k1's field prime).
  const u256 p = crypto::secp256k1::field_prime();
  Bytes input;
  append(input, u256{32}.to_be_bytes_vec());
  append(input, u256{32}.to_be_bytes_vec());
  append(input, u256{32}.to_be_bytes_vec());
  append(input, u256{0xabcdef}.to_be_bytes_vec());      // base
  append(input, (p - u256{1}).to_be_bytes_vec());       // exponent
  append(input, p.to_be_bytes_vec());                   // modulus
  const CallResult r = run_asm(R"(
    PUSH2 0x00c0 PUSH1 0x00 PUSH1 0x00 CALLDATACOPY
    PUSH1 0x20 PUSH2 0x0100 PUSH2 0x00c0 PUSH1 0x00
    PUSH1 0x05
    PUSH3 0xffffff
    STATICCALL
    POP
    PUSH1 0x20 PUSH2 0x0100 RETURN
  )", input);
  ASSERT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(u256::from_be_bytes(r.output), u256{1});
}

TEST_P(EvmTest, ModexpZeroModulusYieldsZero) {
  Bytes input;
  append(input, u256{1}.to_be_bytes_vec());
  append(input, u256{1}.to_be_bytes_vec());
  append(input, u256{1}.to_be_bytes_vec());
  input.push_back(3);
  input.push_back(5);
  input.push_back(0);  // modulus 0
  const CallResult r = run_asm(R"(
    PUSH1 0x63 PUSH1 0x00 PUSH1 0x00 CALLDATACOPY
    PUSH1 0x01 PUSH1 0x80 PUSH1 0x63 PUSH1 0x00
    PUSH1 0x05 PUSH2 0xffff STATICCALL
    POP
    PUSH1 0x01 PUSH1 0x80 RETURN
  )", input);
  ASSERT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(r.output[0], 0);
}

// --- transactions ---

TEST_P(EvmTest, PlainTransferCosts21000) {
  Transaction tx;
  tx.from = kCaller;
  tx.to = addr(0x99);
  tx.value = u256{1000};
  tx.gas_limit = 100000;
  const TxResult r = interp_get().execute_transaction(tx);
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_EQ(r.gas_used, 21000u);
  EXPECT_EQ(overlay_get().balance(addr(0x99)), u256{1000});
  EXPECT_EQ(overlay_get().nonce(kCaller), 1u);
}

TEST_P(EvmTest, TransactionFeesSettle) {
  Transaction tx;
  tx.from = kCaller;
  tx.to = addr(0x99);
  tx.gas_limit = 50000;
  tx.gas_price = u256{3};
  const u256 before = overlay_get().balance(kCaller);
  const TxResult r = interp_get().execute_transaction(tx);
  EXPECT_EQ(overlay_get().balance(kCaller), before - u256{r.gas_used} * u256{3});
  EXPECT_EQ(overlay_get().balance(addr(0xFE)), u256{r.gas_used} * u256{3});  // coinbase
}

TEST_P(EvmTest, TransactionNonceChecks) {
  Transaction tx;
  tx.from = kCaller;
  tx.to = addr(0x99);
  tx.nonce = 5;  // account nonce is 0
  EXPECT_EQ(interp_get().execute_transaction(tx).status, VmStatus::kNonceMismatch);
  tx.nonce = 0;
  EXPECT_EQ(interp_get().execute_transaction(tx).status, VmStatus::kSuccess);
  // Nonce advanced; replay fails.
  EXPECT_EQ(interp_get().execute_transaction(tx).status, VmStatus::kNonceMismatch);
}

TEST_P(EvmTest, TransactionInsufficientBalance) {
  Transaction tx;
  tx.from = addr(0x01);  // empty account
  tx.to = addr(0x99);
  tx.value = u256{1};
  EXPECT_EQ(interp_get().execute_transaction(tx).status, VmStatus::kInsufficientBalance);
}

TEST_P(EvmTest, TransactionIntrinsicGasTooLow) {
  Transaction tx;
  tx.from = kCaller;
  tx.to = addr(0x99);
  tx.gas_limit = 20000;
  EXPECT_EQ(interp_get().execute_transaction(tx).status, VmStatus::kOutOfGas);
}

TEST_P(EvmTest, IntrinsicGasCountsCalldata) {
  Transaction tx;
  tx.data = Bytes{0x00, 0x00, 0x01, 0x02};  // 2 zero + 2 nonzero
  tx.to = addr(0x99);
  EXPECT_EQ(tx.intrinsic_gas(), 21000u + 2 * 4 + 2 * 16);
  tx.to = std::nullopt;
  EXPECT_EQ(tx.intrinsic_gas(), 21000u + 2 * 4 + 2 * 16 + 32000 + 2);
}

TEST_P(EvmTest, RefundCappedAtFifth) {
  // Clear two pre-existing slots: refund 9600, but cap = gas_used / 5.
  base_.put_storage(kContract, u256{1}, u256{1});
  base_.put_storage(kContract, u256{2}, u256{1});
  base_.put_code(kContract, assemble("PUSH0 PUSH1 1 SSTORE PUSH0 PUSH1 2 SSTORE STOP"));
  Transaction tx;
  tx.from = kCaller;
  tx.to = kContract;
  tx.gas_limit = 200000;
  const TxResult r = interp_get().execute_transaction(tx);
  EXPECT_EQ(r.status, VmStatus::kSuccess);
  EXPECT_GT(r.gas_refunded, 0u);
  EXPECT_LE(r.gas_refunded, (r.gas_used + r.gas_refunded) / 5);
}

// --- HarDTAPE memory overflow ---

TEST_P(EvmTest, FrameMemoryLimitTriggersMemoryOverflow) {
  set_frame_memory_limit(512 * 1024);  // half of 1 MB layer 2 (§IV-B)
  const CallResult r = run_asm("PUSH1 1 PUSH3 0x100000 MSTORE STOP");  // touch 1 MB
  EXPECT_EQ(r.status, VmStatus::kMemoryOverflow);
}

TEST_P(EvmTest, MemoryOverflowCannotBeCaughtByCaller) {
  set_frame_memory_limit(512 * 1024);
  // Callee blows the limit; caller tries to swallow the failure.
  base_.put_code(addr(0x7D), assemble("PUSH1 1 PUSH3 0x100000 MSTORE STOP"));
  const CallResult r = run_asm(ret(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x000000000000000000000000000000000000007d
    PUSH4 0xffffffff
    CALL
  )"));
  EXPECT_EQ(r.status, VmStatus::kMemoryOverflow);
}

TEST_P(EvmTest, NoLimitWhenDisabled) {
  const CallResult r = run_asm("PUSH1 1 PUSH3 0x100000 MSTORE STOP");
  EXPECT_EQ(r.status, VmStatus::kSuccess);
}

// --- tracing ---

TEST_P(EvmTest, StepTracerRecordsProgram) {
  StepTracer tracer;
  set_observer(&tracer);
  run_asm("PUSH1 1 PUSH1 2 ADD STOP");
  ASSERT_EQ(tracer.steps().size(), 4u);
  EXPECT_EQ(tracer.steps()[0].opcode, 0x60);
  EXPECT_EQ(tracer.steps()[2].opcode, 0x01);  // ADD
  EXPECT_EQ(tracer.steps()[2].stack_size, 2u);
  EXPECT_EQ(tracer.steps()[3].opcode, 0x00);  // STOP
  // Gas decreases monotonically within a frame.
  EXPECT_GT(tracer.steps()[0].gas_left, tracer.steps()[3].gas_left);
}

TEST_P(EvmTest, FrameStatsCollectorSeesNestedCalls) {
  FrameStatsCollector stats;
  set_observer(&stats);
  base_.put_code(addr(0x7E), assemble(ret("PUSH1 0x05 SLOAD")));
  run_asm(ret(R"(
    PUSH1 0x20 PUSH1 0x00 PUSH1 0x04 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x000000000000000000000000000000000000007e
    PUSH3 0xffffff
    CALL
  )"));
  ASSERT_EQ(stats.frames().size(), 2u);  // callee exits first
  EXPECT_EQ(stats.max_depth(), 2);
  const auto& callee = stats.frames()[0];
  EXPECT_EQ(callee.depth, 2);
  EXPECT_EQ(callee.input_size, 4u);
  EXPECT_EQ(callee.storage_slots, 1u);
  EXPECT_GT(callee.code_size, 0u);
}

TEST_P(EvmTest, LogsReachObserver) {
  StepTracer tracer;
  set_observer(&tracer);
  run_asm(R"(
    PUSH1 0xaa PUSH1 0x00 MSTORE
    PUSH1 0x99             ; topic
    PUSH1 0x20 PUSH1 0x00  ; data
    LOG1
    STOP
  )");
  ASSERT_EQ(tracer.logs().size(), 1u);
  EXPECT_EQ(tracer.logs()[0].address, kContract);
  ASSERT_EQ(tracer.logs()[0].topics.size(), 1u);
  EXPECT_EQ(tracer.logs()[0].topics[0], u256{0x99});
  EXPECT_EQ(u256::from_be_bytes(tracer.logs()[0].data), u256{0xaa});
}

TEST_P(EvmTest, StaticContextBlocksLogs) {
  base_.put_code(addr(0x7F), assemble("PUSH1 0x00 PUSH1 0x00 LOG0 STOP"));
  EXPECT_EQ(run_word(ret(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x000000000000000000000000000000000000007f
    PUSH3 0xffffff
    STATICCALL
  )")), u256{});
}

// --- CALLDATALOAD offset-overflow regression ---

TEST_P(EvmTest, CalldataloadOffsetNear2e64ZeroPads) {
  // Offset 2^64 - 16: with wrapping `off + i` bounds, the guard passes for
  // i >= 16 and the word picks up the *start* of calldata instead of the
  // zero padding past its end.
  Bytes input(32, 0xAB);
  EXPECT_TRUE(run_word(ret(R"(
    PUSH8 0xfffffffffffffff0
    CALLDATALOAD
  )"), std::move(input)).is_zero());
}

TEST_P(EvmTest, CalldataloadTailStillZeroPads) {
  Bytes input(32, 0);
  input[16] = 0x12;
  // Offset 16 of a 32-byte input: high half is data, low half zero-padded.
  const u256 word = run_word(ret(R"(
    PUSH1 0x10
    CALLDATALOAD
  )"), std::move(input));
  EXPECT_EQ(word, u256{0x12} << 248);
}

TEST_P(EvmTest, CalldataloadHugeOffsetIsZero) {
  Bytes input(64, 0xFF);
  EXPECT_TRUE(run_word(ret(R"(
    PUSH9 0x010000000000000000
    CALLDATALOAD
  )"), std::move(input)).is_zero());
}

// --- cross-engine differential checks ---

// Records every observer callback as a canonical string, so two engines'
// full event streams can be compared for bit-identity.
class RecordingObserver : public ExecutionObserver {
 public:
  void on_step(const StepInfo& s) override {
    add("step pc=" + std::to_string(s.pc) + " op=" + std::to_string(s.opcode) +
        " gas=" + std::to_string(s.gas_left) + " d=" + std::to_string(s.depth) +
        " ss=" + std::to_string(s.stack_size) + " top=" + s.stack_top.to_hex());
  }
  void on_memory_access(MemoryLike m, uint64_t off, uint64_t size, bool w) override {
    add(std::string("mem ") + to_string(m) + " off=" + std::to_string(off) +
        " n=" + std::to_string(size) + (w ? " w" : " r"));
  }
  void on_storage_access(const Address& a, const u256& k, bool w, bool c) override {
    add("sto " + a.hex() + " k=" + k.to_hex() + (w ? " w" : " r") +
        (c ? " cold" : " warm"));
  }
  void on_account_access(const Address& a, bool c) override {
    add("acct " + a.hex() + (c ? " cold" : " warm"));
  }
  void on_code_load(const Address& a, size_t n) override {
    add("code " + a.hex() + " n=" + std::to_string(n));
  }
  void on_frame_enter(const FrameInfo& f) override {
    add("enter " + f.code_address.hex() + " gas=" + std::to_string(f.gas) +
        " d=" + std::to_string(f.depth) + (f.is_static ? " static" : "") +
        (f.is_create ? " create" : ""));
  }
  void on_frame_exit(const FrameExitInfo& f) override {
    add(std::string("exit ") + to_string(f.status) +
        " used=" + std::to_string(f.gas_used) + " out=" + std::to_string(f.output_size) +
        " mem=" + std::to_string(f.memory_size) + " d=" + std::to_string(f.depth));
  }
  void on_log(const LogEntry& l) override {
    std::string s = "log " + l.address.hex() + " data=" + to_hex(l.data);
    for (const u256& t : l.topics) s += " t=" + t.to_hex();
    add(std::move(s));
  }

  const std::vector<std::string>& events() const { return events_; }

 private:
  void add(std::string s) { events_.push_back(std::move(s)); }
  std::vector<std::string> events_;
};

struct DifferentialRun {
  CallResult result;
  Interpreter::FrameDebug frame;
  std::vector<std::string> events;
};

// Executes the code at kContract on one engine over a fresh overlay.
DifferentialRun run_engine(state::InMemoryState& base, const Bytes& input,
                           uint64_t gas, EngineKind engine, bool observed,
                           uint64_t mem_limit) {
  state::OverlayState overlay(base);
  BlockContext block;
  block.number = 19145194;
  block.timestamp = 1706600000;
  block.coinbase = addr(0xFE);
  Interpreter interp(overlay, std::move(block));
  interp.set_engine(engine);
  interp.set_frame_memory_limit(mem_limit);
  DifferentialRun out;
  RecordingObserver recorder;
  if (observed) interp.set_observer(&recorder);
  interp.set_frame_debug(&out.frame);
  Interpreter::Message msg;
  msg.code_address = kContract;
  msg.recipient = kContract;
  msg.sender = kCaller;
  msg.origin = kCaller;
  msg.input = input;
  msg.gas = gas;
  msg.depth = 1;
  out.result = interp.call(msg);
  out.events = recorder.events();
  return out;
}

// Runs `code` through both engines (observed and unobserved) and asserts
// bit-identical externals: status, gas remainder, output, observer event
// stream, and — for frames that end in success/revert — the outermost
// frame's final stack and memory. (A failed frame dies with gas zeroed and
// its internals unobservable, where the group-prepaid fast path may legally
// differ internally.)
void expect_engines_agree(state::InMemoryState& base, const Bytes& input,
                          uint64_t gas, uint64_t mem_limit,
                          const std::string& tag) {
  for (const bool observed : {false, true}) {
    SCOPED_TRACE(tag + (observed ? " observed" : " unobserved"));
    const DifferentialRun ref =
        run_engine(base, input, gas, EngineKind::kReference, observed, mem_limit);
    const DifferentialRun fast =
        run_engine(base, input, gas, EngineKind::kFast, observed, mem_limit);
    EXPECT_EQ(ref.result.status, fast.result.status)
        << to_string(ref.result.status) << " vs " << to_string(fast.result.status);
    EXPECT_EQ(ref.result.gas_left, fast.result.gas_left);
    EXPECT_EQ(to_hex(ref.result.output), to_hex(fast.result.output));
    ASSERT_EQ(ref.events.size(), fast.events.size())
        << "event stream lengths diverge";
    for (size_t i = 0; i < ref.events.size(); ++i) {
      ASSERT_EQ(ref.events[i], fast.events[i]) << "event " << i;
    }
    EXPECT_EQ(ref.frame.status, fast.frame.status);
    EXPECT_EQ(ref.frame.gas_left, fast.frame.gas_left);
    if (ref.result.status == VmStatus::kSuccess ||
        ref.result.status == VmStatus::kRevert) {
      EXPECT_EQ(ref.frame.stack.size(), fast.frame.stack.size());
      if (ref.frame.stack == fast.frame.stack) {
        SUCCEED();
      } else {
        ADD_FAILURE() << "final stacks diverge";
      }
      EXPECT_EQ(to_hex(ref.frame.memory), to_hex(fast.frame.memory));
    }
  }
}

class EvmDifferentialTest : public ::testing::Test {
 protected:
  EvmDifferentialTest() {
    base_.put_account(kCaller,
                      state::Account{.balance = u256::from_string("1000000000000000000")});
    base_.put_account(kContract, state::Account{.balance = u256{12345}});
    base_.put_code(addr(0x7F), assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN"));
  }

  void agree(std::string_view source, Bytes input = {},
             uint64_t gas = 1'000'000, uint64_t mem_limit = 0) {
    const Bytes code = assemble(source);
    base_.put_code(kContract, code);
    expect_engines_agree(base_, input, gas, mem_limit,
                         std::string(source.substr(0, 40)));
  }

  state::InMemoryState base_;
};

TEST_F(EvmDifferentialTest, FusedPushAdd) {
  agree("PUSH1 0x05 PUSH1 0x07 ADD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
}

TEST_F(EvmDifferentialTest, FusedPushJumpAndJumpdest) {
  agree(R"(
    PUSH1 0x04
    JUMP
    INVALID
    JUMPDEST
    PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
  )");
}

TEST_F(EvmDifferentialTest, FusedPushJumpiBothWays) {
  agree(R"(
    PUSH1 0x01
    PUSH1 0x06
    JUMPI
    INVALID
    JUMPDEST
    PUSH1 0x00
    PUSH1 0x0c
    JUMPI
    STOP
  )");
}

TEST_F(EvmDifferentialTest, FusedBadJumpTarget) {
  agree("PUSH1 0x03 JUMP INVALID");
}

TEST_F(EvmDifferentialTest, FusedDupMloadAndStaticStore) {
  agree(R"(
    PUSH1 0x40
    PUSH1 0xbe PUSH1 0x40 MSTORE
    DUP1 MLOAD
    PUSH1 0x00 MSTORE
    PUSH1 0x20 PUSH1 0x00 RETURN
  )");
}

TEST_F(EvmDifferentialTest, GasOpcodeSeesIdenticalRemainder) {
  // GAS ends a charge group, so the prepaid static gas must equal the
  // reference loop's cumulative charge at exactly that opcode.
  agree(R"(
    PUSH1 0x01 PUSH1 0x02 ADD POP
    GAS
    PUSH1 0x00 MSTORE
    GAS PUSH1 0x20 MSTORE
    PUSH1 0x40 PUSH1 0x00 RETURN
  )");
}

TEST_F(EvmDifferentialTest, MsizeSeesIdenticalExpansion) {
  agree(R"(
    MSIZE
    PUSH1 0xaa PUSH2 0x0123 MSTORE
    MSIZE
    ADD
    PUSH1 0x00 MSTORE
    PUSH1 0x20 PUSH1 0x00 RETURN
  )");
}

TEST_F(EvmDifferentialTest, OutOfGasMidBlockMatches) {
  // 20 gas: dies partway through a straight-line block; the fast path must
  // bail to the reference loop rather than prepay past the limit.
  agree("PUSH1 0x01 PUSH1 0x02 ADD PUSH1 0x03 MUL PUSH1 0x04 ADD POP STOP",
        {}, 20);
}

TEST_F(EvmDifferentialTest, FrameMemoryLimitAbortMatches) {
  agree("PUSH1 0x01 PUSH2 0x2000 MSTORE STOP", {}, 1'000'000, 4096);
}

TEST_F(EvmDifferentialTest, CallFamilyAndReturndata) {
  agree(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x000000000000000000000000000000000000007f
    PUSH3 0x01ffff
    STATICCALL
    POP
    RETURNDATASIZE
    PUSH1 0x00 MSTORE
    PUSH1 0x00 PUSH1 0x20 PUSH1 0x20 RETURNDATACOPY
    PUSH1 0x40 PUSH1 0x00 RETURN
  )");
}

// --- seeded differential fuzz over the full opcode set ---

// Emits a mostly-plausible random program: valid opcodes with fed stacks,
// liberal JUMPDESTs so random jumps sometimes land, plus raw random bytes
// for undefined-opcode coverage.
Bytes random_program(Random& rng) {
  Bytes code;
  const size_t target = rng.uniform_range(16, 192);
  const auto emit = [&](std::initializer_list<uint8_t> bytes) {
    for (uint8_t b : bytes) code.push_back(b);
  };
  const uint8_t alu[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
                         0x09, 0x0a, 0x0b, 0x10, 0x11, 0x12, 0x13, 0x14,
                         0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d};
  const uint8_t env[] = {0x30, 0x32, 0x33, 0x34, 0x35, 0x36, 0x38, 0x3a,
                         0x3d, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46,
                         0x47, 0x48, 0x58, 0x59, 0x5a};
  const uint8_t state_ops[] = {0x31, 0x3b, 0x3f, 0x54, 0x55, 0x5c, 0x5d, 0x20};
  const uint8_t mem_ops[] = {0x51, 0x52, 0x53, 0x5e, 0x37, 0x39, 0x3c, 0x3e};
  const uint8_t calls[] = {0xf0, 0xf1, 0xf2, 0xf4, 0xf5, 0xfa};
  const uint8_t halts[] = {0x00, 0xf3, 0xfd, 0xfe, 0xff};
  while (code.size() < target) {
    switch (rng.uniform(100)) {
      case 0: case 1: case 2: case 3: case 4: case 5: case 6: case 7:
      case 8: case 9: case 10: case 11: case 12: case 13: case 14: case 15:
      case 16: case 17:  // small PUSH1 (feeds offsets and jump targets)
        emit({0x60, static_cast<uint8_t>(rng.uniform(192))});
        break;
      case 18: case 19: case 20: case 21: case 22: case 23: {  // PUSHn random
        const auto n = static_cast<uint8_t>(rng.uniform_range(1, 8));
        code.push_back(static_cast<uint8_t>(0x5f + n));
        for (uint8_t i = 0; i < n; ++i)
          code.push_back(static_cast<uint8_t>(rng.uniform(256)));
        break;
      }
      case 24:  // PUSH32 full word
        code.push_back(0x7f);
        for (int i = 0; i < 32; ++i)
          code.push_back(static_cast<uint8_t>(rng.uniform(256)));
        break;
      case 25: case 26: case 27: case 28: case 29: case 30: case 31:
      case 32: case 33: case 34: case 35: case 36: case 37: case 38:
      case 39: case 40: case 41: case 42: case 43: case 44:  // ALU
        code.push_back(alu[rng.uniform(sizeof alu)]);
        break;
      case 45: case 46: case 47: case 48: case 49: case 50: case 51:
      case 52:  // DUP/SWAP
        code.push_back(static_cast<uint8_t>(0x80 + rng.uniform(32)));
        break;
      case 53: case 54: case 55: case 56: case 57: case 58:  // POP / PUSH0
        code.push_back(rng.uniform(2) == 0 ? 0x50 : 0x5f);
        break;
      case 59: case 60: case 61: case 62: case 63: case 64: case 65:
      case 66:  // environment / gas / msize / pc
        code.push_back(env[rng.uniform(sizeof env)]);
        break;
      case 67: case 68: case 69: case 70: case 71: case 72:  // memory
        emit({0x60, static_cast<uint8_t>(rng.uniform(96))});
        code.push_back(mem_ops[rng.uniform(sizeof mem_ops)]);
        break;
      case 73: case 74: case 75: case 76:  // storage / keccak / ext
        code.push_back(state_ops[rng.uniform(sizeof state_ops)]);
        break;
      case 77: case 78: case 79: case 80: case 81: case 82: case 83:
      case 84: case 85:  // JUMPDEST: liberal landing pads
        code.push_back(0x5b);
        break;
      case 86: case 87: case 88: case 89: case 90:  // jump
        emit({0x60, static_cast<uint8_t>(rng.uniform(192))});
        code.push_back(rng.uniform(2) == 0 ? 0x56 : 0x57);
        break;
      case 91: case 92:  // LOG0-4
        code.push_back(static_cast<uint8_t>(0xa0 + rng.uniform(5)));
        break;
      case 93: case 94:  // call family
        code.push_back(calls[rng.uniform(sizeof calls)]);
        break;
      case 95:  // halting
        code.push_back(halts[rng.uniform(sizeof halts)]);
        break;
      default:  // raw byte: undefined-opcode and decoder robustness
        code.push_back(static_cast<uint8_t>(rng.uniform(256)));
        break;
    }
  }
  return code;
}

TEST(EvmDifferentialFuzz, RandomProgramsAgreeOnBothEngines) {
  state::InMemoryState base;
  base.put_account(kCaller,
                   state::Account{.balance = u256::from_string("1000000000000000000")});
  base.put_account(kContract, state::Account{.balance = u256{999}});
  base.put_code(addr(0x7F),
                assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN"));
  Random rng(0x48617244'54415045ull);  // seeded: deterministic in CI
  constexpr int kPrograms = 300;
  const uint64_t gas_limits[] = {500, 5'000, 100'000};
  for (int p = 0; p < kPrograms; ++p) {
    const Bytes code = random_program(rng);
    const Bytes input = rng.bytes(rng.uniform(64));
    const uint64_t gas = gas_limits[p % 3];
    const uint64_t mem_limit = p % 7 == 0 ? 4096 : 0;
    base.put_code(kContract, code);
    expect_engines_agree(base, input, gas, mem_limit,
                         "program " + std::to_string(p) + " seed-fixed code=" +
                             to_hex(code));
    if (::testing::Test::HasFatalFailure()) break;
  }
}

}  // namespace
}  // namespace hardtape::evm
