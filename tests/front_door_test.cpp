// Front-door tests (PR 7 + PR 9): the framed service API fails closed,
// admission is fair and deadline-honest, overload sheds instead of
// collapsing, the dedicated-hardware invariant holds (no device ever serves
// two sessions at once), the elastic device pool hot-adds/drains/crashes
// with fail-closed failover, and the whole front door is bit-identical
// across worker counts — churn included.
// This binary runs under TSan in CI alongside engine_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.hpp"
#include "faults/device_fault_plan.hpp"
#include "faults/faulty_link.hpp"
#include "service/admission.hpp"
#include "service/device_pool.hpp"
#include "service/front_door.hpp"
#include "workload/generator.hpp"

namespace hardtape::service {
namespace {

crypto::AesKey128 test_key(uint8_t seed) {
  crypto::AesKey128 key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(seed + 31 * i);
  }
  return key;
}

// ---------------------------------------------------------------- frames --

evm::Transaction sample_tx(uint64_t salt) {
  evm::Transaction tx;
  for (size_t i = 0; i < tx.from.bytes.size(); ++i) {
    tx.from.bytes[i] = static_cast<uint8_t>(salt + i);
  }
  if (salt % 2 == 0) {
    Address to;
    for (size_t i = 0; i < to.bytes.size(); ++i) {
      to.bytes[i] = static_cast<uint8_t>(0x80 + salt + i);
    }
    tx.to = to;
  }
  tx.value = u256{salt, 0, 0, salt + 7};  // exercises > 64-bit values
  tx.data = Bytes{0x01, 0x02, 0x00, 0xff};
  tx.gas_limit = 700'000 + salt;
  tx.gas_price = u256{2};
  if (salt % 3 == 0) tx.nonce = 42 + salt;
  return tx;
}

TEST(ServiceFramesTest, RequestFrameRoundTrips) {
  RequestFrame frame;
  frame.verb = Verb::kSubmit;
  frame.session_id = 0x1234'5678'9abcull;
  frame.tenant_id = 7;
  frame.request_id = 99;
  frame.deadline_ns = 5'000'000;
  frame.client_time_ns = 123'456'789;
  frame.bundle = {sample_tx(0), sample_tx(1), sample_tx(3)};

  const auto decoded = RequestFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, kServiceFrameVersion);
  EXPECT_EQ(decoded->verb, Verb::kSubmit);
  EXPECT_EQ(decoded->session_id, frame.session_id);
  EXPECT_EQ(decoded->tenant_id, frame.tenant_id);
  EXPECT_EQ(decoded->request_id, frame.request_id);
  EXPECT_EQ(decoded->deadline_ns, frame.deadline_ns);
  EXPECT_EQ(decoded->client_time_ns, frame.client_time_ns);
  ASSERT_EQ(decoded->bundle.size(), frame.bundle.size());
  for (size_t i = 0; i < frame.bundle.size(); ++i) {
    const auto& a = frame.bundle[i];
    const auto& b = decoded->bundle[i];
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(a.gas_limit, b.gas_limit);
    EXPECT_EQ(a.gas_price, b.gas_price);
    EXPECT_EQ(a.nonce, b.nonce);
  }
}

TEST(ServiceFramesTest, ResponseFrameRoundTrips) {
  ResponseFrame frame;
  frame.verb = Verb::kPoll;
  frame.session_id = 5;
  frame.request_id = 17;
  frame.status = Status::kOk;
  frame.done = true;
  frame.outcome_status = Status::kDeadlineExceeded;
  frame.queue_wait_ns = 1'000;
  frame.exec_ns = 2'000;
  frame.gas_used = 21'000;

  const auto decoded = ResponseFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->verb, Verb::kPoll);
  EXPECT_EQ(decoded->session_id, 5u);
  EXPECT_EQ(decoded->request_id, 17u);
  EXPECT_EQ(decoded->status, Status::kOk);
  EXPECT_TRUE(decoded->done);
  EXPECT_EQ(decoded->outcome_status, Status::kDeadlineExceeded);
  EXPECT_EQ(decoded->queue_wait_ns, 1'000u);
  EXPECT_EQ(decoded->exec_ns, 2'000u);
  EXPECT_EQ(decoded->gas_used, 21'000u);
}

// Every deviation from the wire contract must decode to nullopt — no
// partial parses, no best-effort guesses.
TEST(ServiceFramesTest, DecodeFailsClosedOnEveryDeviation) {
  RequestFrame good;
  good.verb = Verb::kPoll;
  good.session_id = 1;
  good.request_id = 2;
  const Bytes encoded = good.encode();
  ASSERT_TRUE(RequestFrame::decode(encoded).has_value());

  // Truncations at every length below full.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(
        RequestFrame::decode(BytesView{encoded.data(), len}).has_value())
        << "truncation to " << len << " bytes parsed";
  }
  // Trailing garbage.
  Bytes trailing = encoded;
  trailing.push_back(0x00);
  EXPECT_FALSE(RequestFrame::decode(trailing).has_value());
  // Not a list.
  EXPECT_FALSE(RequestFrame::decode(Bytes{0x82, 0x01, 0x02}).has_value());

  // Wrong version.
  RequestFrame bad_version = good;
  bad_version.version = kServiceFrameVersion + 1;
  EXPECT_FALSE(RequestFrame::decode(bad_version.encode()).has_value());
  // Unknown verb.
  RequestFrame bad_verb = good;
  bad_verb.verb = static_cast<Verb>(9);
  EXPECT_FALSE(RequestFrame::decode(bad_verb.encode()).has_value());
  // A bundle on a non-submit verb.
  RequestFrame poll_with_bundle = good;
  poll_with_bundle.bundle = {sample_tx(0)};
  EXPECT_FALSE(RequestFrame::decode(poll_with_bundle.encode()).has_value());

  // Response with an out-of-range status byte.
  ResponseFrame response;
  response.status = static_cast<Status>(
      static_cast<int>(Status::kStatusCount_));
  EXPECT_FALSE(ResponseFrame::decode(response.encode()).has_value());
}

// ------------------------------------------------- lossy secure channel --

TEST(LossyChannelTest, SkipsForwardAcceptsRejectsReplayAndReorder) {
  const auto key = test_key(9);
  hypervisor::SecureChannel sender(key);
  hypervisor::SecureChannel receiver(key);
  receiver.set_lossy_transport(true);

  const Bytes body{0x01};
  auto f0 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
  auto f1 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
  auto f2 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);

  EXPECT_EQ(receiver.open(f0, 1 << 10, 0).status, Status::kOk);
  // f1 is dropped by the wire; f2 must still be accepted (forward skip).
  EXPECT_EQ(receiver.open(f2, 1 << 10, 0).status, Status::kOk);
  // Replay of f2 and late delivery of f1 are both behind the window: closed.
  EXPECT_EQ(receiver.open(f2, 1 << 10, 0).status, Status::kRejected);
  EXPECT_EQ(receiver.open(f1, 1 << 10, 0).status, Status::kRejected);

  // Strict mode (the hypervisor's default) still refuses the skip.
  hypervisor::SecureChannel strict(key);
  auto g0 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
  auto g1 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
  (void)g0;
  EXPECT_EQ(strict.open(g1, 1 << 10, 0).status, Status::kRejected);
}

// --------------------------------------------------- admission controller --

AdmissionConfig small_admission() {
  AdmissionConfig config;
  config.defaults.weight = 1;
  config.defaults.queue_capacity = 64;
  config.defaults.max_in_flight = 64;
  config.defaults.priority = 1;
  return config;
}

QueuedRequest make_request(uint64_t tenant, uint64_t request_id,
                           uint64_t deadline_ns = 0) {
  QueuedRequest request;
  request.session_id = tenant;
  request.tenant_id = tenant;
  request.request_id = request_id;
  request.deadline_ns = deadline_ns;
  return request;
}

TEST(AdmissionTest, DeficitRoundRobinHonorsWeights) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.tenants = {
      TenantConfig{.tenant_id = 1, .weight = 2, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 1},
      TenantConfig{.tenant_id = 2, .weight = 1, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 1},
  };
  AdmissionController admission(config, &registry);
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_EQ(admission.admit(make_request(1, i), 0), Status::kOk);
    ASSERT_EQ(admission.admit(make_request(2, 100 + i), 0), Status::kOk);
  }
  // Over two full DRR rounds, tenant 1 (weight 2) dispatches twice per
  // round, tenant 2 once — and consecutively within a quantum.
  std::vector<uint64_t> order;
  for (int i = 0; i < 6; ++i) {
    auto pick = admission.next(1);
    ASSERT_TRUE(pick.has_value());
    ASSERT_FALSE(pick->expired);
    order.push_back(pick->request.tenant_id);
  }
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 1, 2, 1, 1, 2}));
}

TEST(AdmissionTest, QuotaSkipsTenantWithoutStarvingOthers) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.defaults.max_in_flight = 1;
  AdmissionController admission(config, &registry);
  ASSERT_EQ(admission.admit(make_request(1, 0), 0), Status::kOk);
  ASSERT_EQ(admission.admit(make_request(1, 1), 0), Status::kOk);
  ASSERT_EQ(admission.admit(make_request(2, 2), 0), Status::kOk);

  auto first = admission.next(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.tenant_id, 1u);
  // Tenant 1 is now at quota: its second request must wait, tenant 2 runs.
  auto second = admission.next(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request.tenant_id, 2u);
  EXPECT_FALSE(admission.next(1).has_value());  // everyone queued is at quota
  admission.on_complete(1);
  auto third = admission.next(2);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->request.tenant_id, 1u);
}

TEST(AdmissionTest, FullTenantQueueShedsOnlyThatTenant) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.defaults.queue_capacity = 2;
  AdmissionController admission(config, &registry);
  EXPECT_EQ(admission.admit(make_request(1, 0), 0), Status::kOk);
  EXPECT_EQ(admission.admit(make_request(1, 1), 0), Status::kOk);
  EXPECT_EQ(admission.admit(make_request(1, 2), 0), Status::kOverloaded);
  EXPECT_EQ(admission.admit(make_request(2, 3), 0), Status::kOk);
  EXPECT_EQ(
      registry.counter("hardtape_service_tenant_1_shed_total").value(), 1u);
}

TEST(AdmissionTest, DeadlineRefusedAtArrivalAndExpiredInQueue) {
  obs::Registry registry;
  AdmissionController admission(small_admission(), &registry);
  // Dead on arrival: the absolute deadline already passed.
  EXPECT_EQ(admission.admit(make_request(1, 0, /*deadline_ns=*/100), 100),
            Status::kDeadlineExceeded);
  EXPECT_EQ(admission.admit(make_request(1, 1, /*deadline_ns=*/500), 100),
            Status::kOk);
  // Ages out while queued: the pick comes back expired, consuming nothing.
  auto pick = admission.next(1'000);
  ASSERT_TRUE(pick.has_value());
  EXPECT_TRUE(pick->expired);
  EXPECT_EQ(pick->request.request_id, 1u);
  EXPECT_FALSE(admission.next(1'000).has_value());
  // Both refusals count: the dead-on-arrival admit and the in-queue expiry.
  EXPECT_EQ(registry
                .counter("hardtape_service_tenant_1_deadline_exceeded_total")
                .value(),
            2u);
}

TEST(AdmissionTest, BrownoutLadderEscalatesAndRecoversWithHysteresis) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.tenants = {
      TenantConfig{.tenant_id = 1, .weight = 1, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 1},  // below the floor
      TenantConfig{.tenant_id = 2, .weight = 1, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 5},  // above the floor
  };
  config.shed_priority_floor = 2;
  config.shed_depth_enter = 4;
  config.shed_depth_exit = 2;
  config.admit_none_depth_enter = 8;
  config.admit_none_depth_exit = 4;
  AdmissionController admission(config, &registry);

  uint64_t id = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(admission.admit(make_request(2, id++), 0), Status::kOk);
  }
  EXPECT_EQ(admission.state(), BrownoutState::kShedLowPriority);
  // Rung 1: the low-priority tenant is refused, the high-priority one runs.
  EXPECT_EQ(admission.admit(make_request(1, id++), 0), Status::kOverloaded);
  EXPECT_EQ(admission.admit(make_request(2, id++), 0), Status::kOk);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(admission.admit(make_request(2, id++), 0), Status::kOk);
  }
  EXPECT_EQ(admission.state(), BrownoutState::kAdmitNone);
  // Rung 2: everyone is refused.
  EXPECT_EQ(admission.admit(make_request(2, id++), 0), Status::kOverloaded);

  // Drain below the exit marks, one rung per update: 8 -> 3 leaves
  // admit-none, then shed; 3 -> 1 restores healthy.
  auto drain_to = [&](size_t depth) {
    while (admission.total_queued() > depth) {
      auto pick = admission.next(10);
      ASSERT_TRUE(pick.has_value());
      admission.on_complete(pick->request.tenant_id);
    }
  };
  drain_to(3);
  EXPECT_EQ(admission.state(), BrownoutState::kShedLowPriority);
  EXPECT_EQ(admission.admit(make_request(1, id++), 10), Status::kOverloaded);
  drain_to(1);
  EXPECT_EQ(admission.state(), BrownoutState::kHealthy);
  EXPECT_EQ(admission.admit(make_request(1, id++), 10), Status::kOk);
  // The ladder is visible as a gauge.
  EXPECT_EQ(registry.gauge("hardtape_service_brownout_state").value(), 0.0);
}

// Short-window p99 semantics (pinned contract, see admission.hpp): an empty
// window reports 0, one sample IS the p99, and under 100 samples the
// nearest-rank p99 is the window maximum.
TEST(AdmissionTest, WindowP99ShortWindowSemantics) {
  obs::Registry registry;
  AdmissionController admission(small_admission(), &registry);
  // n = 0: no samples yet. Must be 0 (not a throw from obs::percentile) so
  // a wait-based rung can never enter before the first dispatch.
  EXPECT_EQ(admission.window_p99_wait_ns(), 0u);
  // n = 1: the p99 is exactly the single sample.
  ASSERT_EQ(admission.admit(make_request(1, 0), 0), Status::kOk);
  auto first = admission.next(700);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(admission.window_p99_wait_ns(), 700u);
  // n = 2: the window MAXIMUM, even though the newer sample is smaller —
  // nearest-rank p99 over n < 100 samples picks the last order statistic.
  ASSERT_EQ(admission.admit(make_request(1, 1), 1'000), Status::kOk);
  auto second = admission.next(1'300);  // waited 300 ns < 700 ns
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(admission.window_p99_wait_ns(), 700u);
  admission.on_complete(1);
  admission.on_complete(1);
}

// The empty-window -> 0 rule, observed through the ladder: a wait-enter
// threshold alone cannot trip brownout before the first wait sample lands,
// and the very first slow dispatch trips it (max-biased short window).
TEST(AdmissionTest, WaitTriggerCannotFireBeforeFirstSample) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.shed_depth_enter = 100;          // depth can never be the trigger here
  config.shed_p99_wait_enter_ns = 1'000;  // any real wait sample is past this
  config.shed_p99_wait_exit_ns = 1;       // and keeps it latched
  AdmissionController admission(config, &registry);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(admission.admit(make_request(1, i), 0), Status::kOk);
  }
  EXPECT_EQ(admission.state(), BrownoutState::kHealthy)
      << "wait rung entered with an empty wait window";
  auto pick = admission.next(5'000);  // first sample: 5000 ns >= enter mark
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(admission.state(), BrownoutState::kShedLowPriority);
  admission.on_complete(1);
}

// Cost-aware brownout (PR 9): with shed_gas_budget_per_priority set, the
// kShedLowPriority rung sheds by estimated cost x priority instead of
// refusing a whole priority class — a cheap low-priority bundle survives a
// brownout that sheds an expensive bundle from the very same tenant.
TEST(AdmissionTest, CostAwareBrownoutShedsExpensiveWorkNotWholeClasses) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.tenants = {
      TenantConfig{.tenant_id = 1, .weight = 1, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 1},
      TenantConfig{.tenant_id = 2, .weight = 1, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 3},
  };
  config.shed_gas_budget_per_priority = 100'000;
  config.shed_depth_enter = 2;
  config.shed_depth_exit = 1;
  AdmissionController admission(config, &registry);

  ASSERT_EQ(admission.admit(make_request(2, 0), 0), Status::kOk);
  ASSERT_EQ(admission.admit(make_request(2, 1), 0), Status::kOk);
  ASSERT_EQ(admission.state(), BrownoutState::kShedLowPriority);

  // Priority 1: budget 100k gas. The cheap request survives the brownout...
  QueuedRequest cheap = make_request(1, 10);
  cheap.estimated_gas = 50'000;
  EXPECT_EQ(admission.admit(std::move(cheap), 0), Status::kOk);
  // ...the expensive one from the SAME tenant/class is shed.
  QueuedRequest pricey = make_request(1, 11);
  pricey.estimated_gas = 150'000;
  EXPECT_EQ(admission.admit(std::move(pricey), 0), Status::kOverloaded);
  // Priority 3 buys a 300k budget: 250k passes, 350k is shed.
  QueuedRequest mid = make_request(2, 12);
  mid.estimated_gas = 250'000;
  EXPECT_EQ(admission.admit(std::move(mid), 0), Status::kOk);
  QueuedRequest big = make_request(2, 13);
  big.estimated_gas = 350'000;
  EXPECT_EQ(admission.admit(std::move(big), 0), Status::kOverloaded);
}

// Failover re-admission: readmit() bypasses the brownout ladder and the
// queue cap (the request already won admission once) and re-enters at the
// FRONT of its tenant queue, ahead of earlier arrivals.
TEST(AdmissionTest, ReadmitBypassesBrownoutAndGoesToTheFront) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.defaults.priority = 1;  // below the floor: shed in brownout
  config.shed_depth_enter = 2;
  config.shed_depth_exit = 1;
  AdmissionController admission(config, &registry);
  ASSERT_EQ(admission.admit(make_request(1, 0), 0), Status::kOk);
  ASSERT_EQ(admission.admit(make_request(1, 1), 0), Status::kOk);
  ASSERT_EQ(admission.state(), BrownoutState::kShedLowPriority);
  // A fresh admit from this sub-floor tenant is refused...
  EXPECT_EQ(admission.admit(make_request(1, 2), 0), Status::kOverloaded);
  // ...but the failover re-admission is not, and it dispatches FIRST.
  admission.readmit(make_request(1, 99), 10);
  auto pick = admission.next(10);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->request.request_id, 99u);
  admission.on_complete(1);
}

// ------------------------------------------------------------ device pool --

sim::BackoffPolicy fast_probe() {
  sim::BackoffPolicy policy;
  policy.base_ns = 1'000'000;
  policy.cap_ns = 8'000'000;
  policy.jitter_frac = 0.0;  // exact wake instants for the assertions below
  return policy;
}

TEST(DevicePoolTest, StaticFleetServesAndDrains) {
  obs::Registry registry;
  DevicePoolConfig config;
  config.initial_devices = 2;
  DevicePool pool(config, &registry);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.serving_count(), 2u);
  EXPECT_EQ(pool.next_transition_ns(), UINT64_MAX);

  // acquire() binds the lowest-id idle serving device.
  EXPECT_EQ(pool.acquire(0), std::optional<uint32_t>(0));
  EXPECT_EQ(pool.acquire(0), std::optional<uint32_t>(1));
  EXPECT_FALSE(pool.acquire(0).has_value());
  EXPECT_FALSE(pool.has_idle());
  pool.complete(0, 100);
  EXPECT_TRUE(pool.has_idle());

  // Draining a BUSY device: kDraining until its session completes, then dead.
  ASSERT_EQ(pool.start_drain(1, 200), std::optional(DeviceState::kDraining));
  EXPECT_FALSE(pool.start_drain(1, 210).has_value());  // idempotent
  pool.complete(1, 300);
  EXPECT_EQ(pool.state(1), DeviceState::kDead);
  // Draining an IDLE device completes immediately.
  EXPECT_FALSE(pool.start_drain(0, 400).has_value());
  EXPECT_EQ(pool.state(0), DeviceState::kDead);
  EXPECT_FALSE(pool.can_ever_serve());
  EXPECT_EQ(
      registry.counter("hardtape_service_device_drains_completed_total")
          .value(),
      2u);
  // The lifecycle log caught every transition, in order, at the right times.
  const std::vector<DeviceEvent> expected{
      {0, 0, DeviceEventKind::kJoin},       {0, 0, DeviceEventKind::kServe},
      {0, 1, DeviceEventKind::kJoin},       {0, 1, DeviceEventKind::kServe},
      {200, 1, DeviceEventKind::kDrainStart},
      {300, 1, DeviceEventKind::kDrainDone},
      {400, 0, DeviceEventKind::kDrainStart},
      {400, 0, DeviceEventKind::kDrainDone},
  };
  EXPECT_EQ(pool.events(), expected);
}

TEST(DevicePoolTest, HotAddWarmsUpBeforeServing) {
  obs::Registry registry;
  DevicePoolConfig config;
  config.initial_devices = 1;
  config.join_warmup_ns = 1'000;
  DevicePool pool(config, &registry);
  const uint32_t id = pool.add_device(500);
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(pool.state(id), DeviceState::kJoining);
  EXPECT_TRUE(pool.can_ever_serve());
  EXPECT_EQ(pool.next_transition_ns(), 1'500u);
  // Not bindable while warming up (occupy device 0 to prove it).
  ASSERT_EQ(pool.acquire(600), std::optional<uint32_t>(0));
  EXPECT_FALSE(pool.acquire(600).has_value());
  pool.advance_to(1'499);
  EXPECT_EQ(pool.state(id), DeviceState::kJoining);
  pool.advance_to(1'500);
  EXPECT_EQ(pool.state(id), DeviceState::kServing);
  EXPECT_EQ(pool.acquire(1'500), std::optional<uint32_t>(1));
  EXPECT_EQ(
      registry.counter("hardtape_service_device_hot_adds_total").value(), 1u);
}

TEST(DevicePoolTest, StickyBreakerQuarantinesAndRejoins) {
  obs::Registry registry;
  DevicePoolConfig config;
  config.initial_devices = 1;
  config.quarantine_threshold = 2;
  config.probe_backoff = fast_probe();
  DevicePool pool(config, &registry);

  // One sticky fault: streak 1, still serving.
  ASSERT_TRUE(pool.acquire(0).has_value());
  pool.sticky_fault(0, 10);
  EXPECT_EQ(pool.state(0), DeviceState::kServing);
  // Second consecutive: breaker trips at the deterministic backoff.
  ASSERT_TRUE(pool.acquire(10).has_value());
  pool.sticky_fault(0, 20);
  EXPECT_EQ(pool.state(0), DeviceState::kQuarantined);
  EXPECT_FALSE(pool.has_idle());
  EXPECT_TRUE(pool.can_ever_serve());
  const uint64_t wake =
      20 + sim::backoff_delay_ns(config.probe_backoff, 1, /*stream_tag=*/0);
  EXPECT_EQ(pool.next_transition_ns(), wake);
  pool.advance_to(wake);
  EXPECT_EQ(pool.state(0), DeviceState::kServing);

  // A clean completion resets the streak: one more sticky does NOT re-trip.
  ASSERT_TRUE(pool.acquire(wake).has_value());
  pool.complete(0, wake + 10);
  ASSERT_TRUE(pool.acquire(wake + 10).has_value());
  pool.sticky_fault(0, wake + 20);
  EXPECT_EQ(pool.state(0), DeviceState::kServing);
  EXPECT_EQ(
      registry.counter("hardtape_service_device_quarantines_total").value(),
      1u);
  EXPECT_EQ(registry.counter("hardtape_service_device_rejoins_total").value(),
            1u);
}

TEST(DevicePoolTest, CrashIsPermanentUnlessFlapRejoins) {
  obs::Registry registry;
  DevicePoolConfig config;
  config.initial_devices = 2;
  DevicePool pool(config, &registry);
  // Permanent death; idempotent on a dead device.
  ASSERT_TRUE(pool.acquire(0).has_value());
  pool.crash(0, 100, /*rejoin_at_ns=*/0);
  EXPECT_EQ(pool.state(0), DeviceState::kDead);
  pool.crash(0, 200, 0);  // no-op, no double count
  EXPECT_EQ(
      registry.counter("hardtape_service_device_crashes_total").value(), 1u);
  // Flap: quarantined until the repair instant, then serving again.
  pool.crash(1, 150, /*rejoin_at_ns=*/5'000);
  EXPECT_EQ(pool.state(1), DeviceState::kQuarantined);
  EXPECT_EQ(pool.next_transition_ns(), 5'000u);
  pool.advance_to(5'000);
  EXPECT_EQ(pool.state(1), DeviceState::kServing);
  EXPECT_EQ(pool.serving_count(), 1u);
}

// -------------------------------------------------------- device faults --

TEST(DeviceFaultPlanTest, DecisionsArePureInSeedDeviceAndIndex) {
  faults::DeviceFaultPlanConfig config;
  config.seed = 42;
  config.crash_rate = 0.2;
  config.sticky_rate = 0.2;
  config.flap_rate = 0.2;
  faults::DeviceFaultPlan a(config);
  faults::DeviceFaultPlan b(config);
  for (uint32_t device = 0; device < 4; ++device) {
    for (uint64_t index = 0; index < 64; ++index) {
      const auto da = a.decide(device, index);
      const auto db = b.decide(device, index);
      EXPECT_EQ(da.kind, db.kind);
      EXPECT_EQ(da.kill_frac, db.kill_frac);
      EXPECT_EQ(da.downtime_ns, db.downtime_ns);
    }
  }
  EXPECT_GT(a.injected(), 0u) << "rates of 0.6 total never fired in 256 draws";
  EXPECT_EQ(a.trace(), b.trace());

  // A different seed produces a different fault schedule.
  config.seed = 43;
  faults::DeviceFaultPlan c(config);
  bool differs = false;
  for (uint32_t device = 0; device < 4 && !differs; ++device) {
    for (uint64_t index = 0; index < 64 && !differs; ++index) {
      differs = c.decide(device, index).kind != a.decide(device, index).kind;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(DeviceFaultPlanTest, RatesBoundDecisionsAndForceOverrides) {
  // Zero rates: a reliable fleet, nothing injected.
  faults::DeviceFaultPlan quiet(faults::DeviceFaultPlanConfig{.seed = 1});
  for (uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(quiet.decide(0, i).kind, faults::DeviceFaultKind::kNone);
  }
  EXPECT_EQ(quiet.injected(), 0u);

  // crash_rate 1.0: every binding dies, kill_frac uniform in [0, 1).
  faults::DeviceFaultPlanConfig all_crash;
  all_crash.seed = 2;
  all_crash.crash_rate = 1.0;
  faults::DeviceFaultPlan lethal(all_crash);
  for (uint64_t i = 0; i < 32; ++i) {
    const auto d = lethal.decide(3, i);
    EXPECT_EQ(d.kind, faults::DeviceFaultKind::kCrash);
    EXPECT_GE(d.kill_frac, 0.0);
    EXPECT_LT(d.kill_frac, 1.0);
  }

  // flap_rate 1.0: downtime lands inside the configured band.
  faults::DeviceFaultPlanConfig all_flap;
  all_flap.seed = 3;
  all_flap.flap_rate = 1.0;
  all_flap.min_downtime_ns = 1'000;
  all_flap.max_downtime_ns = 2'000;
  faults::DeviceFaultPlan flappy(all_flap);
  for (uint64_t i = 0; i < 32; ++i) {
    const auto d = flappy.decide(0, i);
    EXPECT_EQ(d.kind, faults::DeviceFaultKind::kFlap);
    EXPECT_GE(d.downtime_ns, 1'000u);
    EXPECT_LE(d.downtime_ns, 2'000u);
  }

  // force() pins one (device, index) regardless of rates.
  quiet.force(7, 3, {.kind = faults::DeviceFaultKind::kSticky});
  EXPECT_EQ(quiet.decide(7, 2).kind, faults::DeviceFaultKind::kNone);
  EXPECT_EQ(quiet.decide(7, 3).kind, faults::DeviceFaultKind::kSticky);
}

// ------------------------------------------------- front door integration --

class FrontDoorTest : public ::testing::Test {
 protected:
  FrontDoorTest() {
    gen_.deploy(node_.world());
    node_.produce_block({});
  }

  EngineConfig engine_config(int workers) {
    EngineConfig config;
    config.security = SecurityConfig::full();
    config.num_hevms = workers;
    config.queue_depth = 32;
    config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
    config.seal_mode = oram::SealMode::kChaChaHmac;
    config.perform_channel_crypto = false;
    return config;
  }

  FrontDoorConfig door_config() {
    FrontDoorConfig config;
    config.num_devices = 3;
    config.admission.defaults.weight = 1;
    config.admission.defaults.queue_capacity = 64;
    config.admission.defaults.max_in_flight = 8;
    config.admission.defaults.priority = 2;
    return config;
  }

  std::vector<evm::Transaction> bundle_for(uint64_t id) {
    const auto& users = gen_.users();
    evm::Transaction transfer;
    transfer.from = users[id % users.size()];
    transfer.to = gen_.tokens()[id % gen_.tokens().size()];
    transfer.data = workload::erc20_transfer(users[(id + 1) % users.size()],
                                             u256{10 + id % 7});
    transfer.gas_limit = 500'000;
    return {transfer};
  }

  static RequestFrame open_frame(uint64_t tenant) {
    RequestFrame frame;
    frame.verb = Verb::kOpenSession;
    frame.tenant_id = tenant;
    return frame;
  }

  static RequestFrame submit_frame(uint64_t session, uint64_t request_id,
                                   std::vector<evm::Transaction> bundle,
                                   uint64_t client_time_ns,
                                   uint64_t deadline_ns = 0) {
    RequestFrame frame;
    frame.verb = Verb::kSubmit;
    frame.session_id = session;
    frame.request_id = request_id;
    frame.client_time_ns = client_time_ns;
    frame.deadline_ns = deadline_ns;
    frame.bundle = std::move(bundle);
    return frame;
  }

  static RequestFrame poll_frame(uint64_t session, uint64_t request_id) {
    RequestFrame frame;
    frame.verb = Verb::kPoll;
    frame.session_id = session;
    frame.request_id = request_id;
    return frame;
  }

  node::NodeSimulator node_;
  workload::WorkloadGenerator gen_{workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 2}};
};

TEST_F(FrontDoorTest, OpenSubmitPollCloseRoundTrip) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();
  ServiceClient client(door, test_key(1));

  auto opened = client.call(open_frame(/*tenant=*/7), /*now_ns=*/0);
  ASSERT_TRUE(opened.has_value());
  ASSERT_EQ(opened->status, Status::kOk);
  const uint64_t session = opened->session_id;
  ASSERT_NE(session, 0u);

  auto admitted =
      client.call(submit_frame(session, 1, bundle_for(0), 0), /*now_ns=*/0);
  ASSERT_TRUE(admitted.has_value());
  EXPECT_EQ(admitted->status, Status::kOk);

  door.finish();
  auto polled = client.call(poll_frame(session, 1), door.now_ns());
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->status, Status::kOk);
  EXPECT_TRUE(polled->done);
  EXPECT_EQ(polled->outcome_status, Status::kOk);
  EXPECT_GT(polled->exec_ns, 0u);
  EXPECT_GT(polled->gas_used, 0u);

  RequestFrame close;
  close.verb = Verb::kCloseSession;
  close.session_id = session;
  auto closed = client.call(close, door.now_ns());
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->status, Status::kOk);

  const auto outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, Status::kOk);
}

TEST_F(FrontDoorTest, MalformedBodyIsRefusedWithoutStateChange) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();

  const auto key = test_key(2);
  hypervisor::SecureChannel client_channel(key);
  client_channel.set_lossy_transport(true);
  const uint64_t conn = door.connect(key);

  // Authenticated garbage: seals fine, fails the service decode.
  auto garbage = client_channel.seal(hypervisor::MessageType::kBundleSubmit, 0,
                                     Bytes{0xde, 0xad, 0xbe, 0xef});
  auto replies = door.deliver(conn, garbage, 0);
  ASSERT_EQ(replies.size(), 1u);
  auto opened = client_channel.open(replies[0], 1 << 20, 0);
  ASSERT_EQ(opened.status, Status::kOk);
  auto response = ResponseFrame::decode(opened.body);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kMalformedMessage);

  // The session machinery is untouched: a real open on the same connection
  // still works.
  auto open_sealed = client_channel.seal(hypervisor::MessageType::kBundleSubmit,
                                         0, open_frame(1).encode());
  replies = door.deliver(conn, open_sealed, 1);
  ASSERT_EQ(replies.size(), 1u);
  opened = client_channel.open(replies[0], 1 << 20, 0);
  ASSERT_EQ(opened.status, Status::kOk);
  response = ResponseFrame::decode(opened.body);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kOk);
  engine.drain();
}

TEST_F(FrontDoorTest, TamperedAndReplayedFramesEarnNoReply) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();

  const auto key = test_key(3);
  hypervisor::SecureChannel client_channel(key);
  client_channel.set_lossy_transport(true);
  const uint64_t conn = door.connect(key);

  auto sealed = client_channel.seal(hypervisor::MessageType::kBundleSubmit, 0,
                                    open_frame(1).encode());
  auto tampered = sealed;
  tampered.ciphertext[0] ^= 0x01;
  EXPECT_TRUE(door.deliver(conn, tampered, 0).empty());

  // The genuine frame still goes through (tampering did not advance the
  // receive window)...
  auto replies = door.deliver(conn, sealed, 1);
  ASSERT_EQ(replies.size(), 1u);
  // ...and an exact replay of it is refused without a reply.
  EXPECT_TRUE(door.deliver(conn, sealed, 2).empty());

  obs::Registry& registry = engine.metrics_registry();
  EXPECT_EQ(
      registry.counter("hardtape_service_frames_rejected_total").value(), 2u);
  EXPECT_EQ(registry.counter("hardtape_service_frames_total").value(), 3u);
  engine.drain();
}

// The dedicated-hardware audit (acceptance criterion): across a saturating
// multi-tenant run, no simulated device is ever bound to two sessions at
// the same simulated instant.
TEST_F(FrontDoorTest, NoDeviceIsEverBoundToTwoSessionsConcurrently) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();

  std::vector<std::unique_ptr<ServiceClient>> clients;
  std::vector<uint64_t> sessions;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(std::make_unique<ServiceClient>(
        door, test_key(static_cast<uint8_t>(10 + c))));
    auto opened = clients.back()->call(open_frame(c % 3), 0);
    ASSERT_TRUE(opened.has_value());
    ASSERT_EQ(opened->status, Status::kOk);
    sessions.push_back(opened->session_id);
  }
  uint64_t now = 0;
  for (uint64_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < clients.size(); ++c) {
      auto admitted = clients[c]->call(
          submit_frame(sessions[c], r + 1, bundle_for(r * clients.size() + c),
                       now),
          now);
      ASSERT_TRUE(admitted.has_value());
      now += 1'000;
    }
  }
  door.finish();
  engine.drain();

  const auto& bindings = door.bindings();
  ASSERT_EQ(bindings.size(), 30u);  // every admitted request ran exactly once
  std::map<uint32_t, std::vector<std::pair<uint64_t, uint64_t>>> by_device;
  for (const auto& b : bindings) {
    EXPECT_LT(b.device, 3u);
    EXPECT_LT(b.start_ns, b.end_ns);
    by_device[b.device].emplace_back(b.start_ns, b.end_ns);
  }
  for (auto& [device, intervals] : by_device) {
    std::sort(intervals.begin(), intervals.end());
    for (size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second)
          << "device " << device << " double-booked at interval " << i;
    }
  }
}

// Determinism across worker counts (acceptance criterion): the identical
// delivery schedule through the front door yields bit-identical engine
// outcomes AND identical binding logs at 1 worker and 8 — the pool is pure
// host parallelism.
TEST_F(FrontDoorTest, FrontDoorIsBitIdenticalAcrossWorkerCounts) {
  auto run = [&](int workers) {
    PreExecutionEngine engine(node_, engine_config(workers));
    EXPECT_EQ(engine.synchronize(), Status::kOk);
    FrontDoor door(engine, door_config());
    engine.start();
    std::vector<std::unique_ptr<ServiceClient>> clients;
    std::vector<uint64_t> sessions;
    std::vector<Status> verdicts;
    for (int c = 0; c < 4; ++c) {
      clients.push_back(std::make_unique<ServiceClient>(
          door, test_key(static_cast<uint8_t>(20 + c))));
      auto opened = clients.back()->call(open_frame(c), 0);
      sessions.push_back(opened->session_id);
    }
    uint64_t now = 0;
    for (uint64_t r = 0; r < 6; ++r) {
      for (size_t c = 0; c < clients.size(); ++c) {
        auto response = clients[c]->call(
            submit_frame(sessions[c], r + 1,
                         bundle_for(r * clients.size() + c), now,
                         /*deadline_ns=*/40'000'000),
            now);
        verdicts.push_back(response->status);
        now += 500;
      }
    }
    door.finish();
    auto outcomes = engine.drain();
    std::sort(outcomes.begin(), outcomes.end(),
              [](const SessionOutcome& a, const SessionOutcome& b) {
                return a.bundle_id < b.bundle_id;
              });
    return std::make_tuple(std::move(verdicts), door.bindings(),
                           std::move(outcomes));
  };

  const auto [verdicts1, bindings1, outcomes1] = run(1);
  const auto [verdicts8, bindings8, outcomes8] = run(8);

  EXPECT_EQ(verdicts1, verdicts8);
  ASSERT_EQ(bindings1.size(), bindings8.size());
  for (size_t i = 0; i < bindings1.size(); ++i) {
    EXPECT_EQ(bindings1[i].device, bindings8[i].device) << "binding " << i;
    EXPECT_EQ(bindings1[i].session_id, bindings8[i].session_id);
    EXPECT_EQ(bindings1[i].bundle_id, bindings8[i].bundle_id);
    EXPECT_EQ(bindings1[i].start_ns, bindings8[i].start_ns);
    EXPECT_EQ(bindings1[i].end_ns, bindings8[i].end_ns);
  }
  ASSERT_EQ(outcomes1.size(), outcomes8.size());
  for (size_t i = 0; i < outcomes1.size(); ++i) {
    EXPECT_TRUE(outcomes_bit_identical(outcomes1[i], outcomes8[i]))
        << "bundle " << outcomes1[i].bundle_id
        << " diverged across worker counts";
  }
}

// Starved-tenant bound (acceptance criterion): one tenant floods; the
// others' p99 queue wait stays within the configured bound while the
// flooder is shed at its own queue cap.
TEST_F(FrontDoorTest, FloodingTenantIsShedWhileOthersKeepTheirLatencyBound) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  // The flooder buys weight 1 and a short queue; the paying tenants get 4x
  // the scheduler share and enough queue to absorb the service backlog the
  // flood creates.
  config.admission.tenants = {
      TenantConfig{.tenant_id = 1, .weight = 1, .queue_capacity = 8,
                   .max_in_flight = 2, .priority = 1},
      TenantConfig{.tenant_id = 2, .weight = 4, .queue_capacity = 64,
                   .max_in_flight = 3, .priority = 2},
      TenantConfig{.tenant_id = 3, .weight = 4, .queue_capacity = 64,
                   .max_in_flight = 3, .priority = 2},
  };
  FrontDoor door(engine, config);
  engine.start();

  ServiceClient flooder(door, test_key(40));
  ServiceClient victim_a(door, test_key(41));
  ServiceClient victim_b(door, test_key(42));
  const uint64_t flood_session = flooder.call(open_frame(1), 0)->session_id;
  const uint64_t victim_a_session = victim_a.call(open_frame(2), 0)->session_id;
  const uint64_t victim_b_session = victim_b.call(open_frame(3), 0)->session_id;

  uint64_t now = 0;
  uint64_t flood_id = 0;
  uint64_t victim_id = 0;
  uint64_t shed = 0;
  for (int round = 0; round < 12; ++round) {
    // The flooder fires a burst every round; the victims one request each.
    for (int i = 0; i < 8; ++i) {
      auto response = flooder.call(
          submit_frame(flood_session, ++flood_id, bundle_for(flood_id), now),
          now);
      if (response->status == Status::kOverloaded) ++shed;
    }
    ++victim_id;
    ASSERT_EQ(victim_a
                  .call(submit_frame(victim_a_session, victim_id,
                                     bundle_for(victim_id), now),
                        now)
                  ->status,
              Status::kOk);
    ASSERT_EQ(victim_b
                  .call(submit_frame(victim_b_session, victim_id,
                                     bundle_for(victim_id + 7), now),
                        now)
                  ->status,
              Status::kOk);
    now += 2'000'000;
  }
  door.finish();
  engine.drain();

  EXPECT_GT(shed, 0u) << "the flood never hit the tenant queue cap";
  obs::Registry& registry = engine.metrics_registry();
  EXPECT_GT(registry.counter("hardtape_service_tenant_1_shed_total").value(),
            0u);
  // The victims were admitted every round and their p99 queue wait stayed
  // within bound. The bound is expressed in service times (the arrival
  // schedule is far faster than a full-security bundle, so everything is
  // backlogged): with 4x the DRR weight the victims' 24 bundles drain at
  // ~8/9 of the 3-device pool, so the worst victim waits well under 20
  // mean service times, while the flooder's saturated queue waits the full
  // drain horizon.
  const double mean_service_ns =
      registry.histogram("hardtape_engine_bundle_latency_sim_ns").mean();
  ASSERT_GT(mean_service_ns, 0.0);
  const uint64_t victim_p99 = std::max(
      registry.histogram("hardtape_service_tenant_2_queue_wait_sim_ns")
          .percentile(99),
      registry.histogram("hardtape_service_tenant_3_queue_wait_sim_ns")
          .percentile(99));
  const uint64_t flooder_p99 =
      registry.histogram("hardtape_service_tenant_1_queue_wait_sim_ns")
          .percentile(99);
  EXPECT_LT(victim_p99, static_cast<uint64_t>(20.0 * mean_service_ns));
  EXPECT_LT(victim_p99, flooder_p99)
      << "fair queueing failed to insulate the victims from the flood";
}

// FaultyLink chaos (acceptance criterion): drops, tampers, duplicates and
// reorders on the service wire must never wedge a session or leak a worker
// — every request eventually resolves through retransmission, and the
// engine drains clean.
TEST_F(FrontDoorTest, FaultyLinkChaosNeverWedgesASession) {
  faults::FaultPlan plan(faults::FaultPlanConfig{
      .seed = 7,
      .fault_rate = 0.3,
      .weight_drop = 1.0,
      .weight_delay = 0.0,
      .weight_tamper = 1.0,
      .weight_stale_proof = 0.0,
      .weight_duplicate = 1.0,
      .weight_reorder = 1.0,
  });
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();

  ServiceClient client(door, test_key(50));
  faults::FaultyLink link(plan, /*stream=*/1);
  uint64_t now = 0;

  // Every verb is retransmitted (a fresh seal) until a response survives
  // the wire — the client-side recovery the lossy channel mode exists for.
  auto call_until_answered =
      [&](const RequestFrame& frame) -> ResponseFrame {
    for (int attempt = 0; attempt < 64; ++attempt) {
      now += 1'000;
      auto response = client.call(frame, now, &link);
      if (response.has_value()) return *response;
    }
    ADD_FAILURE() << "session wedged: no response after 64 retransmissions";
    return {};
  };

  const auto opened = call_until_answered(open_frame(1));
  ASSERT_EQ(opened.status, Status::kOk);
  const uint64_t session = opened.session_id;

  constexpr uint64_t kRequests = 10;
  for (uint64_t r = 1; r <= kRequests; ++r) {
    const auto admitted = call_until_answered(
        submit_frame(session, r, bundle_for(r), now));
    EXPECT_EQ(admitted.status, Status::kOk);
  }
  door.finish();

  // Every admitted request resolved (poll sees done) and none ran twice.
  for (uint64_t r = 1; r <= kRequests; ++r) {
    const auto polled = call_until_answered(poll_frame(session, r));
    ASSERT_EQ(polled.status, Status::kOk);
    EXPECT_TRUE(polled.done) << "request " << r << " never resolved";
    EXPECT_EQ(polled.outcome_status, Status::kOk);
  }
  const auto outcomes = engine.drain();
  EXPECT_EQ(outcomes.size(), kRequests)
      << "duplicated or leaked executions under link chaos";
  EXPECT_GT(plan.injected(), 0u) << "the chaos plan never actually fired";
}

// ------------------------------------------- device churn & failover (PR 9) --

// Helper: poll one request and require a terminal verdict.
ResponseFrame poll_done(ServiceClient& client, FrontDoor& door,
                        uint64_t session, uint64_t request_id) {
  RequestFrame frame;
  frame.verb = Verb::kPoll;
  frame.session_id = session;
  frame.request_id = request_id;
  auto response = client.call(frame, door.now_ns());
  EXPECT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kOk);
  EXPECT_TRUE(response->done)
      << "request " << request_id << " never reached a terminal status";
  return response.value_or(ResponseFrame{});
}

TEST_F(FrontDoorTest, HotAddedDeviceTakesLoadMidRun) {
  PreExecutionEngine engine(node_, engine_config(2));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  config.num_devices = 1;
  config.devices.join_warmup_ns = 1'000;
  FrontDoor door(engine, config);
  engine.start();
  ServiceClient client(door, test_key(60));
  const uint64_t session = client.call(open_frame(1), 0)->session_id;

  for (uint64_t r = 1; r <= 6; ++r) {
    ASSERT_EQ(client.call(submit_frame(session, r, bundle_for(r), 0), 0)->status,
              Status::kOk);
  }
  const uint32_t added = door.add_device();
  EXPECT_EQ(added, 1u);
  door.finish();

  for (uint64_t r = 1; r <= 6; ++r) {
    EXPECT_EQ(poll_done(client, door, session, r).outcome_status, Status::kOk);
  }
  // The hot-added device actually served part of the backlog.
  bool new_device_used = false;
  for (const auto& b : door.bindings()) new_device_used |= b.device == 1;
  EXPECT_TRUE(new_device_used);
  const auto audit = door.audit_bindings();
  EXPECT_TRUE(audit.ok) << audit.violation;
  engine.drain();
}

TEST_F(FrontDoorTest, GracefulDrainLetsTheInFlightSessionFinish) {
  PreExecutionEngine engine(node_, engine_config(2));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  config.num_devices = 2;
  config.devices.drain_grace_ns = 1'000'000'000'000;  // grace far beyond exec
  FrontDoor door(engine, config);
  engine.start();
  ServiceClient client(door, test_key(61));
  const uint64_t session = client.call(open_frame(1), 0)->session_id;
  ASSERT_EQ(client.call(submit_frame(session, 1, bundle_for(1), 0), 0)->status,
            Status::kOk);

  door.drain_device(0);  // device 0 is mid-session: it may finish
  EXPECT_EQ(door.devices().state(0), DeviceState::kDraining);
  door.finish();

  // The session ran to completion — no failover, no re-execution — and the
  // drain then completed.
  EXPECT_EQ(poll_done(client, door, session, 1).outcome_status, Status::kOk);
  EXPECT_EQ(door.devices().state(0), DeviceState::kDead);
  obs::Registry& registry = engine.metrics_registry();
  EXPECT_EQ(registry.counter("hardtape_service_failovers_total").value(), 0u);
  EXPECT_EQ(
      registry.counter("hardtape_service_device_drains_completed_total")
          .value(),
      1u);
  EXPECT_EQ(engine.drain().size(), 1u);
  const auto audit = door.audit_bindings();
  EXPECT_TRUE(audit.ok) << audit.violation;
}

TEST_F(FrontDoorTest, DrainDeadlineCutsTheBindingAndFailsOver) {
  PreExecutionEngine engine(node_, engine_config(2));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  config.num_devices = 2;
  config.devices.drain_grace_ns = 1'000;  // far shorter than any execution
  FrontDoor door(engine, config);
  engine.start();
  ServiceClient client(door, test_key(62));
  const uint64_t session = client.call(open_frame(1), 0)->session_id;
  ASSERT_EQ(client.call(submit_frame(session, 1, bundle_for(1), 0), 0)->status,
            Status::kOk);

  door.drain_device(0);
  door.finish();

  // The grace expired mid-session: the binding was cut at the deadline and
  // the bundle re-executed on device 1, fail-closed.
  EXPECT_EQ(poll_done(client, door, session, 1).outcome_status, Status::kOk);
  const auto& bindings = door.bindings();
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0].device, 0u);
  EXPECT_EQ(bindings[0].end_ns, 1'000u);  // cut exactly at drain start + grace
  EXPECT_EQ(bindings[1].device, 1u);
  EXPECT_EQ(door.devices().state(0), DeviceState::kDead);
  obs::Registry& registry = engine.metrics_registry();
  EXPECT_EQ(registry.counter("hardtape_service_failovers_total").value(), 1u);
  EXPECT_EQ(
      registry.histogram("hardtape_service_rebind_latency_sim_ns").count(),
      1u);
  // Two engine executions of the one bundle: attempt 0 (cut) and attempt 1.
  EXPECT_EQ(engine.drain().size(), 2u);
  const auto audit = door.audit_bindings();
  EXPECT_TRUE(audit.ok) << audit.violation;
}

TEST_F(FrontDoorTest, CrashedDeviceFailsOverToAnotherDevice) {
  faults::DeviceFaultPlan plan(faults::DeviceFaultPlanConfig{.seed = 5});
  plan.force(0, 0,
             {.kind = faults::DeviceFaultKind::kCrash, .kill_frac = 0.5});
  PreExecutionEngine engine(node_, engine_config(2));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  config.num_devices = 2;
  config.devices.fault_plan = &plan;
  FrontDoor door(engine, config);
  engine.start();
  ServiceClient client(door, test_key(63));
  const uint64_t session = client.call(open_frame(1), 0)->session_id;
  ASSERT_EQ(client.call(submit_frame(session, 1, bundle_for(1), 0), 0)->status,
            Status::kOk);
  door.finish();

  // Device 0 died halfway through the session; the sealed state died with
  // it, and the bundle re-executed from scratch on device 1.
  EXPECT_EQ(poll_done(client, door, session, 1).outcome_status, Status::kOk);
  EXPECT_EQ(door.devices().state(0), DeviceState::kDead);
  const auto& bindings = door.bindings();
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0].device, 0u);
  EXPECT_EQ(bindings[1].device, 1u);
  // The cut binding is strictly shorter than the completed re-execution.
  EXPECT_LT(bindings[0].end_ns - bindings[0].start_ns,
            bindings[1].end_ns - bindings[1].start_ns);
  EXPECT_EQ(plan.injected(), 1u);
  const auto audit = door.audit_bindings();
  EXPECT_TRUE(audit.ok) << audit.violation;
  engine.drain();
}

TEST_F(FrontDoorTest, FlappingSoleDeviceRejoinsAndFinishesTheWork) {
  faults::DeviceFaultPlan plan(faults::DeviceFaultPlanConfig{.seed = 6});
  plan.force(0, 0,
             {.kind = faults::DeviceFaultKind::kFlap,
              .kill_frac = 0.25,
              .downtime_ns = 2'000'000});
  PreExecutionEngine engine(node_, engine_config(1));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  config.num_devices = 1;
  config.devices.fault_plan = &plan;
  FrontDoor door(engine, config);
  engine.start();
  ServiceClient client(door, test_key(64));
  const uint64_t session = client.call(open_frame(1), 0)->session_id;
  ASSERT_EQ(client.call(submit_frame(session, 1, bundle_for(1), 0), 0)->status,
            Status::kOk);
  // finish() must survive a window with NO serving devices: it jumps to the
  // pool's next transition (the flap rejoin) instead of spinning or bailing.
  door.finish();

  EXPECT_EQ(poll_done(client, door, session, 1).outcome_status, Status::kOk);
  const auto& bindings = door.bindings();
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0].device, 0u);
  EXPECT_EQ(bindings[1].device, 0u);  // same device, after repair
  EXPECT_GE(bindings[1].start_ns, bindings[0].end_ns + 2'000'000);
  EXPECT_EQ(
      engine.metrics_registry()
          .counter("hardtape_service_device_rejoins_total")
          .value(),
      1u);
  const auto audit = door.audit_bindings();
  EXPECT_TRUE(audit.ok) << audit.violation;
  engine.drain();
}

TEST_F(FrontDoorTest, RepeatedCrashesExhaustTheRetryBudget) {
  faults::DeviceFaultPlan plan(faults::DeviceFaultPlanConfig{.seed = 7});
  for (uint32_t device = 0; device < 3; ++device) {
    plan.force(device, 0,
               {.kind = faults::DeviceFaultKind::kCrash, .kill_frac = 0.5});
  }
  PreExecutionEngine engine(node_, engine_config(2));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();  // 3 devices; max_bundle_attempts 3
  config.devices.fault_plan = &plan;
  FrontDoor door(engine, config);
  engine.start();
  ServiceClient client(door, test_key(65));
  const uint64_t session = client.call(open_frame(1), 0)->session_id;
  ASSERT_EQ(client.call(submit_frame(session, 1, bundle_for(1), 0), 0)->status,
            Status::kOk);
  door.finish();

  // Three devices, three crashes, budget of three executions: the failover
  // after the third loss is refused and the request resolves fail-closed.
  EXPECT_EQ(poll_done(client, door, session, 1).outcome_status,
            Status::kRetryExhausted);
  obs::Registry& registry = engine.metrics_registry();
  EXPECT_EQ(registry.counter("hardtape_service_failovers_total").value(), 3u);
  EXPECT_EQ(
      registry.counter("hardtape_service_failover_retry_exhausted_total")
          .value(),
      1u);
  EXPECT_FALSE(door.devices().can_ever_serve());
  EXPECT_EQ(door.bindings().size(), 3u);
  const auto audit = door.audit_bindings();
  EXPECT_TRUE(audit.ok) << audit.violation;
  EXPECT_EQ(engine.drain().size(), 3u);
}

TEST_F(FrontDoorTest, WholeFleetLossResolvesEverythingDeviceLost) {
  PreExecutionEngine engine(node_, engine_config(2));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  config.num_devices = 2;
  FrontDoor door(engine, config);
  engine.start();
  ServiceClient client(door, test_key(66));
  const uint64_t session = client.call(open_frame(1), 0)->session_id;
  for (uint64_t r = 1; r <= 3; ++r) {
    ASSERT_EQ(
        client.call(submit_frame(session, r, bundle_for(r), 0), 0)->status,
        Status::kOk);
  }
  // Two requests are on devices, one is queued. Kill the whole fleet.
  door.kill_device(0);
  door.kill_device(1);
  door.finish();

  // Fail-closed, not wedged: every admitted request gets a terminal verdict
  // even though no device will ever serve again.
  for (uint64_t r = 1; r <= 3; ++r) {
    EXPECT_EQ(poll_done(client, door, session, r).outcome_status,
              Status::kDeviceLost);
  }
  obs::Registry& registry = engine.metrics_registry();
  EXPECT_EQ(registry.counter("hardtape_service_device_lost_total").value(),
            3u);
  EXPECT_EQ(registry.counter("hardtape_service_failovers_total").value(), 2u);
  const auto audit = door.audit_bindings();
  EXPECT_TRUE(audit.ok) << audit.violation;
  engine.drain();
}

TEST_F(FrontDoorTest, StickyFailerIsQuarantinedAndWorkRetriesAfterBackoff) {
  faults::DeviceFaultPlan plan(faults::DeviceFaultPlanConfig{.seed = 8});
  plan.force(0, 0, {.kind = faults::DeviceFaultKind::kSticky});
  plan.force(0, 1, {.kind = faults::DeviceFaultKind::kSticky});
  PreExecutionEngine engine(node_, engine_config(1));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  config.num_devices = 1;
  config.devices.quarantine_threshold = 2;
  config.devices.probe_backoff = fast_probe();
  config.devices.fault_plan = &plan;
  FrontDoor door(engine, config);
  engine.start();
  ServiceClient client(door, test_key(67));
  const uint64_t session = client.call(open_frame(1), 0)->session_id;
  ASSERT_EQ(client.call(submit_frame(session, 1, bundle_for(1), 0), 0)->status,
            Status::kOk);
  door.finish();

  // Two sticky results in a row: the breaker quarantined the device, the
  // third execution (after the deterministic backoff) finally passed.
  EXPECT_EQ(poll_done(client, door, session, 1).outcome_status, Status::kOk);
  obs::Registry& registry = engine.metrics_registry();
  EXPECT_EQ(
      registry.counter("hardtape_service_device_sticky_faults_total").value(),
      2u);
  EXPECT_EQ(
      registry.counter("hardtape_service_device_quarantines_total").value(),
      1u);
  EXPECT_EQ(registry.counter("hardtape_service_device_rejoins_total").value(),
            1u);
  EXPECT_EQ(registry.counter("hardtape_service_failovers_total").value(), 2u);
  EXPECT_EQ(door.bindings().size(), 3u);
  const auto audit = door.audit_bindings();
  EXPECT_TRUE(audit.ok) << audit.violation;
  engine.drain();
}

// Determinism WITH churn (acceptance criterion): a fault plan plus scripted
// kill/drain/hot-add, replayed at 1 worker and 8, must produce bit-identical
// verdicts, terminal outcomes, binding logs AND device lifecycle logs.
TEST_F(FrontDoorTest, ChurnRunIsBitIdenticalAcrossWorkerCounts) {
  auto run = [&](int workers) {
    faults::DeviceFaultPlan plan(faults::DeviceFaultPlanConfig{
        .seed = 77,
        .crash_rate = 0.08,
        .sticky_rate = 0.08,
        .flap_rate = 0.08,
        .min_downtime_ns = 1'000'000,
        .max_downtime_ns = 8'000'000,
    });
    PreExecutionEngine engine(node_, engine_config(workers));
    EXPECT_EQ(engine.synchronize(), Status::kOk);
    FrontDoorConfig config = door_config();
    config.devices.join_warmup_ns = 500'000;
    config.devices.drain_grace_ns = 2'000'000;
    config.devices.quarantine_threshold = 2;
    config.devices.probe_backoff = fast_probe();
    config.devices.fault_plan = &plan;
    FrontDoor door(engine, config);
    engine.start();
    std::vector<std::unique_ptr<ServiceClient>> clients;
    std::vector<uint64_t> sessions;
    for (int c = 0; c < 4; ++c) {
      clients.push_back(std::make_unique<ServiceClient>(
          door, test_key(static_cast<uint8_t>(70 + c))));
      sessions.push_back(clients[c]->call(open_frame(c), 0)->session_id);
    }
    std::vector<Status> verdicts;
    uint64_t now = 0;
    for (uint64_t r = 0; r < 6; ++r) {
      for (size_t c = 0; c < clients.size(); ++c) {
        auto response = clients[c]->call(
            submit_frame(sessions[c], r + 1,
                         bundle_for(r * clients.size() + c), now),
            now);
        verdicts.push_back(response->status);
        now += 700;
      }
      if (r == 2) door.kill_device(0);
      if (r == 3) door.drain_device(1);
      if (r == 4) door.add_device();
    }
    door.finish();
    std::vector<std::tuple<Status, uint64_t, uint64_t, uint64_t>> finals;
    for (size_t c = 0; c < clients.size(); ++c) {
      for (uint64_t r = 1; r <= 6; ++r) {
        const auto polled = poll_done(*clients[c], door, sessions[c], r);
        finals.emplace_back(polled.outcome_status, polled.queue_wait_ns,
                            polled.exec_ns, polled.gas_used);
      }
    }
    auto outcomes = engine.drain();
    // Re-executions share a bundle id; (id, attempt) is the unique key.
    std::sort(outcomes.begin(), outcomes.end(),
              [](const SessionOutcome& a, const SessionOutcome& b) {
                return std::tie(a.bundle_id, a.attempt) <
                       std::tie(b.bundle_id, b.attempt);
              });
    const auto audit = door.audit_bindings();
    EXPECT_TRUE(audit.ok) << audit.violation;
    return std::make_tuple(std::move(verdicts), std::move(finals),
                           door.bindings(), door.devices().events(),
                           std::move(outcomes));
  };

  const auto [verdicts1, finals1, bindings1, events1, outcomes1] = run(1);
  const auto [verdicts8, finals8, bindings8, events8, outcomes8] = run(8);

  EXPECT_EQ(verdicts1, verdicts8);
  EXPECT_EQ(finals1, finals8);
  EXPECT_EQ(events1, events8) << "device lifecycle diverged across workers";
  ASSERT_EQ(bindings1.size(), bindings8.size());
  for (size_t i = 0; i < bindings1.size(); ++i) {
    EXPECT_EQ(bindings1[i].device, bindings8[i].device) << "binding " << i;
    EXPECT_EQ(bindings1[i].session_id, bindings8[i].session_id);
    EXPECT_EQ(bindings1[i].bundle_id, bindings8[i].bundle_id);
    EXPECT_EQ(bindings1[i].start_ns, bindings8[i].start_ns);
    EXPECT_EQ(bindings1[i].end_ns, bindings8[i].end_ns);
  }
  ASSERT_EQ(outcomes1.size(), outcomes8.size());
  for (size_t i = 0; i < outcomes1.size(); ++i) {
    EXPECT_TRUE(outcomes_bit_identical(outcomes1[i], outcomes8[i]))
        << "bundle " << outcomes1[i].bundle_id << " attempt "
        << outcomes1[i].attempt << " diverged across worker counts";
  }
}

// Property-style churn drill (acceptance criterion): random drain/add/crash
// schedules against saturating multi-tenant load. After finish(), the three
// churn invariants must hold: (a) no per-device binding overlap, (b) no
// binding outside its device's service windows — both via audit_bindings() —
// and (c) every admitted request reaches a terminal status.
TEST_F(FrontDoorTest, RandomChurnSchedulesHoldTheThreeInvariants) {
  for (const uint64_t seed : {101u, 202u, 303u}) {
    faults::DeviceFaultPlan plan(faults::DeviceFaultPlanConfig{
        .seed = seed,
        .crash_rate = 0.10,
        .sticky_rate = 0.10,
        .flap_rate = 0.10,
        .min_downtime_ns = 500'000,
        .max_downtime_ns = 5'000'000,
    });
    PreExecutionEngine engine(node_, engine_config(3));
    ASSERT_EQ(engine.synchronize(), Status::kOk);
    FrontDoorConfig config = door_config();
    config.admission.defaults.max_in_flight = 2;  // keep a standing queue
    config.devices.join_warmup_ns = 200'000;
    config.devices.drain_grace_ns = 1'000'000;
    config.devices.quarantine_threshold = 2;
    config.devices.probe_backoff = fast_probe();
    config.devices.fault_plan = &plan;
    FrontDoor door(engine, config);
    engine.start();

    std::vector<std::unique_ptr<ServiceClient>> clients;
    std::vector<uint64_t> sessions;
    for (int c = 0; c < 3; ++c) {
      clients.push_back(std::make_unique<ServiceClient>(
          door, test_key(static_cast<uint8_t>(80 + c))));
      sessions.push_back(clients[c]->call(open_frame(c + 1), 0)->session_id);
    }

    Random rng(seed * 7919);
    std::vector<std::pair<size_t, uint64_t>> admitted;  // (client, request)
    uint64_t now = 0;
    for (uint64_t i = 0; i < 30; ++i) {
      const size_t c = i % clients.size();
      const uint64_t request_id = 100 + i;
      auto response = clients[c]->call(
          submit_frame(sessions[c], request_id, bundle_for(i), now), now);
      ASSERT_TRUE(response.has_value());
      if (response->status == Status::kOk) admitted.emplace_back(c, request_id);
      now += 300'000;
      // Random churn ops — including against devices already dead/draining
      // (must be safe no-ops) — plus two scripted ones so every seed
      // genuinely churns.
      const uint64_t op = rng.uniform(10);
      const auto target = static_cast<uint32_t>(
          rng.uniform(static_cast<uint64_t>(door.devices().size())));
      if (op == 0 || i == 10) door.kill_device(target);
      if (op == 1 || i == 20) door.drain_device(target);
      if (op == 2 && door.devices().size() < 8) door.add_device();
    }
    door.finish();

    // Invariants (a) and (b): the audit proves them from the logs.
    const auto audit = door.audit_bindings();
    EXPECT_TRUE(audit.ok) << "seed " << seed << ": " << audit.violation;
    // Invariant (c): every admitted request is terminal, with a legal status.
    for (const auto& [c, request_id] : admitted) {
      const auto polled = poll_done(*clients[c], door, sessions[c], request_id);
      EXPECT_TRUE(polled.outcome_status == Status::kOk ||
                  polled.outcome_status == Status::kRetryExhausted ||
                  polled.outcome_status == Status::kDeviceLost)
          << "seed " << seed << " request " << request_id << ": "
          << to_string(polled.outcome_status);
    }
    // The schedule must have actually churned the fleet.
    obs::Registry& registry = engine.metrics_registry();
    EXPECT_GT(registry.counter("hardtape_service_device_crashes_total").value() +
                  registry
                      .counter("hardtape_service_device_drains_started_total")
                      .value(),
              0u);
    engine.drain();
  }
}

}  // namespace
}  // namespace hardtape::service
