// Front-door tests (PR 7): the framed service API fails closed, admission
// is fair and deadline-honest, overload sheds instead of collapsing, the
// dedicated-hardware invariant holds (no device ever serves two sessions at
// once), and the whole front door is bit-identical across worker counts.
// This binary runs under TSan in CI alongside engine_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "faults/faulty_link.hpp"
#include "service/admission.hpp"
#include "service/front_door.hpp"
#include "workload/generator.hpp"

namespace hardtape::service {
namespace {

crypto::AesKey128 test_key(uint8_t seed) {
  crypto::AesKey128 key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(seed + 31 * i);
  }
  return key;
}

// ---------------------------------------------------------------- frames --

evm::Transaction sample_tx(uint64_t salt) {
  evm::Transaction tx;
  for (size_t i = 0; i < tx.from.bytes.size(); ++i) {
    tx.from.bytes[i] = static_cast<uint8_t>(salt + i);
  }
  if (salt % 2 == 0) {
    Address to;
    for (size_t i = 0; i < to.bytes.size(); ++i) {
      to.bytes[i] = static_cast<uint8_t>(0x80 + salt + i);
    }
    tx.to = to;
  }
  tx.value = u256{salt, 0, 0, salt + 7};  // exercises > 64-bit values
  tx.data = Bytes{0x01, 0x02, 0x00, 0xff};
  tx.gas_limit = 700'000 + salt;
  tx.gas_price = u256{2};
  if (salt % 3 == 0) tx.nonce = 42 + salt;
  return tx;
}

TEST(ServiceFramesTest, RequestFrameRoundTrips) {
  RequestFrame frame;
  frame.verb = Verb::kSubmit;
  frame.session_id = 0x1234'5678'9abcull;
  frame.tenant_id = 7;
  frame.request_id = 99;
  frame.deadline_ns = 5'000'000;
  frame.client_time_ns = 123'456'789;
  frame.bundle = {sample_tx(0), sample_tx(1), sample_tx(3)};

  const auto decoded = RequestFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, kServiceFrameVersion);
  EXPECT_EQ(decoded->verb, Verb::kSubmit);
  EXPECT_EQ(decoded->session_id, frame.session_id);
  EXPECT_EQ(decoded->tenant_id, frame.tenant_id);
  EXPECT_EQ(decoded->request_id, frame.request_id);
  EXPECT_EQ(decoded->deadline_ns, frame.deadline_ns);
  EXPECT_EQ(decoded->client_time_ns, frame.client_time_ns);
  ASSERT_EQ(decoded->bundle.size(), frame.bundle.size());
  for (size_t i = 0; i < frame.bundle.size(); ++i) {
    const auto& a = frame.bundle[i];
    const auto& b = decoded->bundle[i];
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(a.gas_limit, b.gas_limit);
    EXPECT_EQ(a.gas_price, b.gas_price);
    EXPECT_EQ(a.nonce, b.nonce);
  }
}

TEST(ServiceFramesTest, ResponseFrameRoundTrips) {
  ResponseFrame frame;
  frame.verb = Verb::kPoll;
  frame.session_id = 5;
  frame.request_id = 17;
  frame.status = Status::kOk;
  frame.done = true;
  frame.outcome_status = Status::kDeadlineExceeded;
  frame.queue_wait_ns = 1'000;
  frame.exec_ns = 2'000;
  frame.gas_used = 21'000;

  const auto decoded = ResponseFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->verb, Verb::kPoll);
  EXPECT_EQ(decoded->session_id, 5u);
  EXPECT_EQ(decoded->request_id, 17u);
  EXPECT_EQ(decoded->status, Status::kOk);
  EXPECT_TRUE(decoded->done);
  EXPECT_EQ(decoded->outcome_status, Status::kDeadlineExceeded);
  EXPECT_EQ(decoded->queue_wait_ns, 1'000u);
  EXPECT_EQ(decoded->exec_ns, 2'000u);
  EXPECT_EQ(decoded->gas_used, 21'000u);
}

// Every deviation from the wire contract must decode to nullopt — no
// partial parses, no best-effort guesses.
TEST(ServiceFramesTest, DecodeFailsClosedOnEveryDeviation) {
  RequestFrame good;
  good.verb = Verb::kPoll;
  good.session_id = 1;
  good.request_id = 2;
  const Bytes encoded = good.encode();
  ASSERT_TRUE(RequestFrame::decode(encoded).has_value());

  // Truncations at every length below full.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(
        RequestFrame::decode(BytesView{encoded.data(), len}).has_value())
        << "truncation to " << len << " bytes parsed";
  }
  // Trailing garbage.
  Bytes trailing = encoded;
  trailing.push_back(0x00);
  EXPECT_FALSE(RequestFrame::decode(trailing).has_value());
  // Not a list.
  EXPECT_FALSE(RequestFrame::decode(Bytes{0x82, 0x01, 0x02}).has_value());

  // Wrong version.
  RequestFrame bad_version = good;
  bad_version.version = kServiceFrameVersion + 1;
  EXPECT_FALSE(RequestFrame::decode(bad_version.encode()).has_value());
  // Unknown verb.
  RequestFrame bad_verb = good;
  bad_verb.verb = static_cast<Verb>(9);
  EXPECT_FALSE(RequestFrame::decode(bad_verb.encode()).has_value());
  // A bundle on a non-submit verb.
  RequestFrame poll_with_bundle = good;
  poll_with_bundle.bundle = {sample_tx(0)};
  EXPECT_FALSE(RequestFrame::decode(poll_with_bundle.encode()).has_value());

  // Response with an out-of-range status byte.
  ResponseFrame response;
  response.status = static_cast<Status>(
      static_cast<int>(Status::kStatusCount_));
  EXPECT_FALSE(ResponseFrame::decode(response.encode()).has_value());
}

// ------------------------------------------------- lossy secure channel --

TEST(LossyChannelTest, SkipsForwardAcceptsRejectsReplayAndReorder) {
  const auto key = test_key(9);
  hypervisor::SecureChannel sender(key);
  hypervisor::SecureChannel receiver(key);
  receiver.set_lossy_transport(true);

  const Bytes body{0x01};
  auto f0 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
  auto f1 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
  auto f2 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);

  EXPECT_EQ(receiver.open(f0, 1 << 10, 0).status, Status::kOk);
  // f1 is dropped by the wire; f2 must still be accepted (forward skip).
  EXPECT_EQ(receiver.open(f2, 1 << 10, 0).status, Status::kOk);
  // Replay of f2 and late delivery of f1 are both behind the window: closed.
  EXPECT_EQ(receiver.open(f2, 1 << 10, 0).status, Status::kRejected);
  EXPECT_EQ(receiver.open(f1, 1 << 10, 0).status, Status::kRejected);

  // Strict mode (the hypervisor's default) still refuses the skip.
  hypervisor::SecureChannel strict(key);
  auto g0 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
  auto g1 = sender.seal(hypervisor::MessageType::kBundleSubmit, 0, body);
  (void)g0;
  EXPECT_EQ(strict.open(g1, 1 << 10, 0).status, Status::kRejected);
}

// --------------------------------------------------- admission controller --

AdmissionConfig small_admission() {
  AdmissionConfig config;
  config.defaults.weight = 1;
  config.defaults.queue_capacity = 64;
  config.defaults.max_in_flight = 64;
  config.defaults.priority = 1;
  return config;
}

QueuedRequest make_request(uint64_t tenant, uint64_t request_id,
                           uint64_t deadline_ns = 0) {
  QueuedRequest request;
  request.session_id = tenant;
  request.tenant_id = tenant;
  request.request_id = request_id;
  request.deadline_ns = deadline_ns;
  return request;
}

TEST(AdmissionTest, DeficitRoundRobinHonorsWeights) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.tenants = {
      TenantConfig{.tenant_id = 1, .weight = 2, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 1},
      TenantConfig{.tenant_id = 2, .weight = 1, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 1},
  };
  AdmissionController admission(config, &registry);
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_EQ(admission.admit(make_request(1, i), 0), Status::kOk);
    ASSERT_EQ(admission.admit(make_request(2, 100 + i), 0), Status::kOk);
  }
  // Over two full DRR rounds, tenant 1 (weight 2) dispatches twice per
  // round, tenant 2 once — and consecutively within a quantum.
  std::vector<uint64_t> order;
  for (int i = 0; i < 6; ++i) {
    auto pick = admission.next(1);
    ASSERT_TRUE(pick.has_value());
    ASSERT_FALSE(pick->expired);
    order.push_back(pick->request.tenant_id);
  }
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 1, 2, 1, 1, 2}));
}

TEST(AdmissionTest, QuotaSkipsTenantWithoutStarvingOthers) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.defaults.max_in_flight = 1;
  AdmissionController admission(config, &registry);
  ASSERT_EQ(admission.admit(make_request(1, 0), 0), Status::kOk);
  ASSERT_EQ(admission.admit(make_request(1, 1), 0), Status::kOk);
  ASSERT_EQ(admission.admit(make_request(2, 2), 0), Status::kOk);

  auto first = admission.next(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.tenant_id, 1u);
  // Tenant 1 is now at quota: its second request must wait, tenant 2 runs.
  auto second = admission.next(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request.tenant_id, 2u);
  EXPECT_FALSE(admission.next(1).has_value());  // everyone queued is at quota
  admission.on_complete(1);
  auto third = admission.next(2);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->request.tenant_id, 1u);
}

TEST(AdmissionTest, FullTenantQueueShedsOnlyThatTenant) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.defaults.queue_capacity = 2;
  AdmissionController admission(config, &registry);
  EXPECT_EQ(admission.admit(make_request(1, 0), 0), Status::kOk);
  EXPECT_EQ(admission.admit(make_request(1, 1), 0), Status::kOk);
  EXPECT_EQ(admission.admit(make_request(1, 2), 0), Status::kOverloaded);
  EXPECT_EQ(admission.admit(make_request(2, 3), 0), Status::kOk);
  EXPECT_EQ(
      registry.counter("hardtape_service_tenant_1_shed_total").value(), 1u);
}

TEST(AdmissionTest, DeadlineRefusedAtArrivalAndExpiredInQueue) {
  obs::Registry registry;
  AdmissionController admission(small_admission(), &registry);
  // Dead on arrival: the absolute deadline already passed.
  EXPECT_EQ(admission.admit(make_request(1, 0, /*deadline_ns=*/100), 100),
            Status::kDeadlineExceeded);
  EXPECT_EQ(admission.admit(make_request(1, 1, /*deadline_ns=*/500), 100),
            Status::kOk);
  // Ages out while queued: the pick comes back expired, consuming nothing.
  auto pick = admission.next(1'000);
  ASSERT_TRUE(pick.has_value());
  EXPECT_TRUE(pick->expired);
  EXPECT_EQ(pick->request.request_id, 1u);
  EXPECT_FALSE(admission.next(1'000).has_value());
  // Both refusals count: the dead-on-arrival admit and the in-queue expiry.
  EXPECT_EQ(registry
                .counter("hardtape_service_tenant_1_deadline_exceeded_total")
                .value(),
            2u);
}

TEST(AdmissionTest, BrownoutLadderEscalatesAndRecoversWithHysteresis) {
  obs::Registry registry;
  AdmissionConfig config = small_admission();
  config.tenants = {
      TenantConfig{.tenant_id = 1, .weight = 1, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 1},  // below the floor
      TenantConfig{.tenant_id = 2, .weight = 1, .queue_capacity = 64,
                   .max_in_flight = 64, .priority = 5},  // above the floor
  };
  config.shed_priority_floor = 2;
  config.shed_depth_enter = 4;
  config.shed_depth_exit = 2;
  config.admit_none_depth_enter = 8;
  config.admit_none_depth_exit = 4;
  AdmissionController admission(config, &registry);

  uint64_t id = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(admission.admit(make_request(2, id++), 0), Status::kOk);
  }
  EXPECT_EQ(admission.state(), BrownoutState::kShedLowPriority);
  // Rung 1: the low-priority tenant is refused, the high-priority one runs.
  EXPECT_EQ(admission.admit(make_request(1, id++), 0), Status::kOverloaded);
  EXPECT_EQ(admission.admit(make_request(2, id++), 0), Status::kOk);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(admission.admit(make_request(2, id++), 0), Status::kOk);
  }
  EXPECT_EQ(admission.state(), BrownoutState::kAdmitNone);
  // Rung 2: everyone is refused.
  EXPECT_EQ(admission.admit(make_request(2, id++), 0), Status::kOverloaded);

  // Drain below the exit marks, one rung per update: 8 -> 3 leaves
  // admit-none, then shed; 3 -> 1 restores healthy.
  auto drain_to = [&](size_t depth) {
    while (admission.total_queued() > depth) {
      auto pick = admission.next(10);
      ASSERT_TRUE(pick.has_value());
      admission.on_complete(pick->request.tenant_id);
    }
  };
  drain_to(3);
  EXPECT_EQ(admission.state(), BrownoutState::kShedLowPriority);
  EXPECT_EQ(admission.admit(make_request(1, id++), 10), Status::kOverloaded);
  drain_to(1);
  EXPECT_EQ(admission.state(), BrownoutState::kHealthy);
  EXPECT_EQ(admission.admit(make_request(1, id++), 10), Status::kOk);
  // The ladder is visible as a gauge.
  EXPECT_EQ(registry.gauge("hardtape_service_brownout_state").value(), 0.0);
}

// ------------------------------------------------- front door integration --

class FrontDoorTest : public ::testing::Test {
 protected:
  FrontDoorTest() {
    gen_.deploy(node_.world());
    node_.produce_block({});
  }

  EngineConfig engine_config(int workers) {
    EngineConfig config;
    config.security = SecurityConfig::full();
    config.num_hevms = workers;
    config.queue_depth = 32;
    config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
    config.seal_mode = oram::SealMode::kChaChaHmac;
    config.perform_channel_crypto = false;
    return config;
  }

  FrontDoorConfig door_config() {
    FrontDoorConfig config;
    config.num_devices = 3;
    config.admission.defaults.weight = 1;
    config.admission.defaults.queue_capacity = 64;
    config.admission.defaults.max_in_flight = 8;
    config.admission.defaults.priority = 2;
    return config;
  }

  std::vector<evm::Transaction> bundle_for(uint64_t id) {
    const auto& users = gen_.users();
    evm::Transaction transfer;
    transfer.from = users[id % users.size()];
    transfer.to = gen_.tokens()[id % gen_.tokens().size()];
    transfer.data = workload::erc20_transfer(users[(id + 1) % users.size()],
                                             u256{10 + id % 7});
    transfer.gas_limit = 500'000;
    return {transfer};
  }

  static RequestFrame open_frame(uint64_t tenant) {
    RequestFrame frame;
    frame.verb = Verb::kOpenSession;
    frame.tenant_id = tenant;
    return frame;
  }

  static RequestFrame submit_frame(uint64_t session, uint64_t request_id,
                                   std::vector<evm::Transaction> bundle,
                                   uint64_t client_time_ns,
                                   uint64_t deadline_ns = 0) {
    RequestFrame frame;
    frame.verb = Verb::kSubmit;
    frame.session_id = session;
    frame.request_id = request_id;
    frame.client_time_ns = client_time_ns;
    frame.deadline_ns = deadline_ns;
    frame.bundle = std::move(bundle);
    return frame;
  }

  static RequestFrame poll_frame(uint64_t session, uint64_t request_id) {
    RequestFrame frame;
    frame.verb = Verb::kPoll;
    frame.session_id = session;
    frame.request_id = request_id;
    return frame;
  }

  node::NodeSimulator node_;
  workload::WorkloadGenerator gen_{workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 2}};
};

TEST_F(FrontDoorTest, OpenSubmitPollCloseRoundTrip) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();
  ServiceClient client(door, test_key(1));

  auto opened = client.call(open_frame(/*tenant=*/7), /*now_ns=*/0);
  ASSERT_TRUE(opened.has_value());
  ASSERT_EQ(opened->status, Status::kOk);
  const uint64_t session = opened->session_id;
  ASSERT_NE(session, 0u);

  auto admitted =
      client.call(submit_frame(session, 1, bundle_for(0), 0), /*now_ns=*/0);
  ASSERT_TRUE(admitted.has_value());
  EXPECT_EQ(admitted->status, Status::kOk);

  door.finish();
  auto polled = client.call(poll_frame(session, 1), door.now_ns());
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->status, Status::kOk);
  EXPECT_TRUE(polled->done);
  EXPECT_EQ(polled->outcome_status, Status::kOk);
  EXPECT_GT(polled->exec_ns, 0u);
  EXPECT_GT(polled->gas_used, 0u);

  RequestFrame close;
  close.verb = Verb::kCloseSession;
  close.session_id = session;
  auto closed = client.call(close, door.now_ns());
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->status, Status::kOk);

  const auto outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, Status::kOk);
}

TEST_F(FrontDoorTest, MalformedBodyIsRefusedWithoutStateChange) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();

  const auto key = test_key(2);
  hypervisor::SecureChannel client_channel(key);
  client_channel.set_lossy_transport(true);
  const uint64_t conn = door.connect(key);

  // Authenticated garbage: seals fine, fails the service decode.
  auto garbage = client_channel.seal(hypervisor::MessageType::kBundleSubmit, 0,
                                     Bytes{0xde, 0xad, 0xbe, 0xef});
  auto replies = door.deliver(conn, garbage, 0);
  ASSERT_EQ(replies.size(), 1u);
  auto opened = client_channel.open(replies[0], 1 << 20, 0);
  ASSERT_EQ(opened.status, Status::kOk);
  auto response = ResponseFrame::decode(opened.body);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kMalformedMessage);

  // The session machinery is untouched: a real open on the same connection
  // still works.
  auto open_sealed = client_channel.seal(hypervisor::MessageType::kBundleSubmit,
                                         0, open_frame(1).encode());
  replies = door.deliver(conn, open_sealed, 1);
  ASSERT_EQ(replies.size(), 1u);
  opened = client_channel.open(replies[0], 1 << 20, 0);
  ASSERT_EQ(opened.status, Status::kOk);
  response = ResponseFrame::decode(opened.body);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kOk);
  engine.drain();
}

TEST_F(FrontDoorTest, TamperedAndReplayedFramesEarnNoReply) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();

  const auto key = test_key(3);
  hypervisor::SecureChannel client_channel(key);
  client_channel.set_lossy_transport(true);
  const uint64_t conn = door.connect(key);

  auto sealed = client_channel.seal(hypervisor::MessageType::kBundleSubmit, 0,
                                    open_frame(1).encode());
  auto tampered = sealed;
  tampered.ciphertext[0] ^= 0x01;
  EXPECT_TRUE(door.deliver(conn, tampered, 0).empty());

  // The genuine frame still goes through (tampering did not advance the
  // receive window)...
  auto replies = door.deliver(conn, sealed, 1);
  ASSERT_EQ(replies.size(), 1u);
  // ...and an exact replay of it is refused without a reply.
  EXPECT_TRUE(door.deliver(conn, sealed, 2).empty());

  obs::Registry& registry = engine.metrics_registry();
  EXPECT_EQ(
      registry.counter("hardtape_service_frames_rejected_total").value(), 2u);
  EXPECT_EQ(registry.counter("hardtape_service_frames_total").value(), 3u);
  engine.drain();
}

// The dedicated-hardware audit (acceptance criterion): across a saturating
// multi-tenant run, no simulated device is ever bound to two sessions at
// the same simulated instant.
TEST_F(FrontDoorTest, NoDeviceIsEverBoundToTwoSessionsConcurrently) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();

  std::vector<std::unique_ptr<ServiceClient>> clients;
  std::vector<uint64_t> sessions;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(std::make_unique<ServiceClient>(
        door, test_key(static_cast<uint8_t>(10 + c))));
    auto opened = clients.back()->call(open_frame(c % 3), 0);
    ASSERT_TRUE(opened.has_value());
    ASSERT_EQ(opened->status, Status::kOk);
    sessions.push_back(opened->session_id);
  }
  uint64_t now = 0;
  for (uint64_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < clients.size(); ++c) {
      auto admitted = clients[c]->call(
          submit_frame(sessions[c], r + 1, bundle_for(r * clients.size() + c),
                       now),
          now);
      ASSERT_TRUE(admitted.has_value());
      now += 1'000;
    }
  }
  door.finish();
  engine.drain();

  const auto& bindings = door.bindings();
  ASSERT_EQ(bindings.size(), 30u);  // every admitted request ran exactly once
  std::map<uint32_t, std::vector<std::pair<uint64_t, uint64_t>>> by_device;
  for (const auto& b : bindings) {
    EXPECT_LT(b.device, 3u);
    EXPECT_LT(b.start_ns, b.end_ns);
    by_device[b.device].emplace_back(b.start_ns, b.end_ns);
  }
  for (auto& [device, intervals] : by_device) {
    std::sort(intervals.begin(), intervals.end());
    for (size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second)
          << "device " << device << " double-booked at interval " << i;
    }
  }
}

// Determinism across worker counts (acceptance criterion): the identical
// delivery schedule through the front door yields bit-identical engine
// outcomes AND identical binding logs at 1 worker and 8 — the pool is pure
// host parallelism.
TEST_F(FrontDoorTest, FrontDoorIsBitIdenticalAcrossWorkerCounts) {
  auto run = [&](int workers) {
    PreExecutionEngine engine(node_, engine_config(workers));
    EXPECT_EQ(engine.synchronize(), Status::kOk);
    FrontDoor door(engine, door_config());
    engine.start();
    std::vector<std::unique_ptr<ServiceClient>> clients;
    std::vector<uint64_t> sessions;
    std::vector<Status> verdicts;
    for (int c = 0; c < 4; ++c) {
      clients.push_back(std::make_unique<ServiceClient>(
          door, test_key(static_cast<uint8_t>(20 + c))));
      auto opened = clients.back()->call(open_frame(c), 0);
      sessions.push_back(opened->session_id);
    }
    uint64_t now = 0;
    for (uint64_t r = 0; r < 6; ++r) {
      for (size_t c = 0; c < clients.size(); ++c) {
        auto response = clients[c]->call(
            submit_frame(sessions[c], r + 1,
                         bundle_for(r * clients.size() + c), now,
                         /*deadline_ns=*/40'000'000),
            now);
        verdicts.push_back(response->status);
        now += 500;
      }
    }
    door.finish();
    auto outcomes = engine.drain();
    std::sort(outcomes.begin(), outcomes.end(),
              [](const SessionOutcome& a, const SessionOutcome& b) {
                return a.bundle_id < b.bundle_id;
              });
    return std::make_tuple(std::move(verdicts), door.bindings(),
                           std::move(outcomes));
  };

  const auto [verdicts1, bindings1, outcomes1] = run(1);
  const auto [verdicts8, bindings8, outcomes8] = run(8);

  EXPECT_EQ(verdicts1, verdicts8);
  ASSERT_EQ(bindings1.size(), bindings8.size());
  for (size_t i = 0; i < bindings1.size(); ++i) {
    EXPECT_EQ(bindings1[i].device, bindings8[i].device) << "binding " << i;
    EXPECT_EQ(bindings1[i].session_id, bindings8[i].session_id);
    EXPECT_EQ(bindings1[i].bundle_id, bindings8[i].bundle_id);
    EXPECT_EQ(bindings1[i].start_ns, bindings8[i].start_ns);
    EXPECT_EQ(bindings1[i].end_ns, bindings8[i].end_ns);
  }
  ASSERT_EQ(outcomes1.size(), outcomes8.size());
  for (size_t i = 0; i < outcomes1.size(); ++i) {
    EXPECT_TRUE(outcomes_bit_identical(outcomes1[i], outcomes8[i]))
        << "bundle " << outcomes1[i].bundle_id
        << " diverged across worker counts";
  }
}

// Starved-tenant bound (acceptance criterion): one tenant floods; the
// others' p99 queue wait stays within the configured bound while the
// flooder is shed at its own queue cap.
TEST_F(FrontDoorTest, FloodingTenantIsShedWhileOthersKeepTheirLatencyBound) {
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoorConfig config = door_config();
  // The flooder buys weight 1 and a short queue; the paying tenants get 4x
  // the scheduler share and enough queue to absorb the service backlog the
  // flood creates.
  config.admission.tenants = {
      TenantConfig{.tenant_id = 1, .weight = 1, .queue_capacity = 8,
                   .max_in_flight = 2, .priority = 1},
      TenantConfig{.tenant_id = 2, .weight = 4, .queue_capacity = 64,
                   .max_in_flight = 3, .priority = 2},
      TenantConfig{.tenant_id = 3, .weight = 4, .queue_capacity = 64,
                   .max_in_flight = 3, .priority = 2},
  };
  FrontDoor door(engine, config);
  engine.start();

  ServiceClient flooder(door, test_key(40));
  ServiceClient victim_a(door, test_key(41));
  ServiceClient victim_b(door, test_key(42));
  const uint64_t flood_session = flooder.call(open_frame(1), 0)->session_id;
  const uint64_t victim_a_session = victim_a.call(open_frame(2), 0)->session_id;
  const uint64_t victim_b_session = victim_b.call(open_frame(3), 0)->session_id;

  uint64_t now = 0;
  uint64_t flood_id = 0;
  uint64_t victim_id = 0;
  uint64_t shed = 0;
  for (int round = 0; round < 12; ++round) {
    // The flooder fires a burst every round; the victims one request each.
    for (int i = 0; i < 8; ++i) {
      auto response = flooder.call(
          submit_frame(flood_session, ++flood_id, bundle_for(flood_id), now),
          now);
      if (response->status == Status::kOverloaded) ++shed;
    }
    ++victim_id;
    ASSERT_EQ(victim_a
                  .call(submit_frame(victim_a_session, victim_id,
                                     bundle_for(victim_id), now),
                        now)
                  ->status,
              Status::kOk);
    ASSERT_EQ(victim_b
                  .call(submit_frame(victim_b_session, victim_id,
                                     bundle_for(victim_id + 7), now),
                        now)
                  ->status,
              Status::kOk);
    now += 2'000'000;
  }
  door.finish();
  engine.drain();

  EXPECT_GT(shed, 0u) << "the flood never hit the tenant queue cap";
  obs::Registry& registry = engine.metrics_registry();
  EXPECT_GT(registry.counter("hardtape_service_tenant_1_shed_total").value(),
            0u);
  // The victims were admitted every round and their p99 queue wait stayed
  // within bound. The bound is expressed in service times (the arrival
  // schedule is far faster than a full-security bundle, so everything is
  // backlogged): with 4x the DRR weight the victims' 24 bundles drain at
  // ~8/9 of the 3-device pool, so the worst victim waits well under 20
  // mean service times, while the flooder's saturated queue waits the full
  // drain horizon.
  const double mean_service_ns =
      registry.histogram("hardtape_engine_bundle_latency_sim_ns").mean();
  ASSERT_GT(mean_service_ns, 0.0);
  const uint64_t victim_p99 = std::max(
      registry.histogram("hardtape_service_tenant_2_queue_wait_sim_ns")
          .percentile(99),
      registry.histogram("hardtape_service_tenant_3_queue_wait_sim_ns")
          .percentile(99));
  const uint64_t flooder_p99 =
      registry.histogram("hardtape_service_tenant_1_queue_wait_sim_ns")
          .percentile(99);
  EXPECT_LT(victim_p99, static_cast<uint64_t>(20.0 * mean_service_ns));
  EXPECT_LT(victim_p99, flooder_p99)
      << "fair queueing failed to insulate the victims from the flood";
}

// FaultyLink chaos (acceptance criterion): drops, tampers, duplicates and
// reorders on the service wire must never wedge a session or leak a worker
// — every request eventually resolves through retransmission, and the
// engine drains clean.
TEST_F(FrontDoorTest, FaultyLinkChaosNeverWedgesASession) {
  faults::FaultPlan plan(faults::FaultPlanConfig{
      .seed = 7,
      .fault_rate = 0.3,
      .weight_drop = 1.0,
      .weight_delay = 0.0,
      .weight_tamper = 1.0,
      .weight_stale_proof = 0.0,
      .weight_duplicate = 1.0,
      .weight_reorder = 1.0,
  });
  PreExecutionEngine engine(node_, engine_config(3));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  FrontDoor door(engine, door_config());
  engine.start();

  ServiceClient client(door, test_key(50));
  faults::FaultyLink link(plan, /*stream=*/1);
  uint64_t now = 0;

  // Every verb is retransmitted (a fresh seal) until a response survives
  // the wire — the client-side recovery the lossy channel mode exists for.
  auto call_until_answered =
      [&](const RequestFrame& frame) -> ResponseFrame {
    for (int attempt = 0; attempt < 64; ++attempt) {
      now += 1'000;
      auto response = client.call(frame, now, &link);
      if (response.has_value()) return *response;
    }
    ADD_FAILURE() << "session wedged: no response after 64 retransmissions";
    return {};
  };

  const auto opened = call_until_answered(open_frame(1));
  ASSERT_EQ(opened.status, Status::kOk);
  const uint64_t session = opened.session_id;

  constexpr uint64_t kRequests = 10;
  for (uint64_t r = 1; r <= kRequests; ++r) {
    const auto admitted = call_until_answered(
        submit_frame(session, r, bundle_for(r), now));
    EXPECT_EQ(admitted.status, Status::kOk);
  }
  door.finish();

  // Every admitted request resolved (poll sees done) and none ran twice.
  for (uint64_t r = 1; r <= kRequests; ++r) {
    const auto polled = call_until_answered(poll_frame(session, r));
    ASSERT_EQ(polled.status, Status::kOk);
    EXPECT_TRUE(polled.done) << "request " << r << " never resolved";
    EXPECT_EQ(polled.outcome_status, Status::kOk);
  }
  const auto outcomes = engine.drain();
  EXPECT_EQ(outcomes.size(), kRequests)
      << "duplicated or leaked executions under link chaos";
  EXPECT_GT(plan.injected(), 0u) << "the chaos plan never actually fired";
}

}  // namespace
}  // namespace hardtape::service
