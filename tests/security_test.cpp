// Cross-module adversarial scenarios: one end-to-end test per threat of the
// paper's Section III-B, exercising the defense through the full stack
// (Section V's security analysis, as executable checks).
#include <gtest/gtest.h>

#include "memlayer/observer.hpp"
#include "service/pre_execution.hpp"
#include "workload/generator.hpp"

namespace hardtape {
namespace {

class SecurityTest : public ::testing::Test {
 protected:
  SecurityTest() {
    gen_.deploy(node_.world());
    node_.produce_block({});
    service::PreExecutionService::Config config;
    config.security = service::SecurityConfig::full();
    config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
    config.seal_mode = oram::SealMode::kChaChaHmac;
    config.perform_channel_crypto = false;
    service_ = std::make_unique<service::PreExecutionService>(node_, config);
    EXPECT_EQ(service_->synchronize(), Status::kOk);
  }

  evm::Transaction token_tx(size_t token_index) {
    evm::Transaction tx;
    tx.from = gen_.users()[0];
    tx.to = gen_.tokens()[token_index];
    tx.data = workload::erc20_transfer(gen_.users()[1], u256{10});
    tx.gas_limit = 500'000;
    return tx;
  }

  node::NodeSimulator node_;
  workload::WorkloadGenerator gen_{workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 4, .dex_pairs = 2, .routers = 1}};
  std::unique_ptr<service::PreExecutionService> service_;
};

// A1: a fake pre-executor cannot produce an acceptable attestation — covered
// in hypervisor_test; here we check the integration point: a user that
// verifies against the real manufacturer root accepts this service.
TEST_F(SecurityTest, A1_AttestationChainVerifiesEndToEnd) {
  const crypto::PrivateKey user = crypto::PrivateKey::from_seed(Bytes{9});
  const H256 nonce = crypto::keccak256("a1");
  const auto session = service_->hypervisor().begin_session(nonce, user.public_key());
  EXPECT_TRUE(hypervisor::verify_attestation(
      service_->manufacturer().root_public_key(),
      service_->hypervisor().firmware_measurement(), nonce, session.report));
  // Against a different manufacturer's root: rejected.
  hypervisor::Manufacturer other(999);
  EXPECT_FALSE(hypervisor::verify_attestation(
      other.root_public_key(), service_->hypervisor().firmware_measurement(), nonce,
      session.report));
  service_->hypervisor().end_session(session.session_id);
}

// A2: dedicated hardware — two concurrent sessions on different cores share
// no mutable execution state; each bundle's effects are invisible to the
// other and to the persistent world.
TEST_F(SecurityTest, A2_SessionsAreIsolated) {
  sim::SimClock clock;
  hevm::HevmCore core_a(0, clock), core_b(1, clock);
  crypto::AesKey128 key_a{}, key_b{};
  key_a[0] = 1;
  key_b[0] = 2;
  core_a.assign(node_.world(), node_.block_context(), key_a, 1);
  core_b.assign(node_.world(), node_.block_context(), key_b, 2);
  core_a.execute_bundle({token_tx(0)});
  // Core B sees the pristine world, not core A's overlay.
  EXPECT_EQ(core_b.overlay().storage(gen_.tokens()[0], gen_.users()[1].to_u256()),
            node_.world().storage(gen_.tokens()[0], gen_.users()[1].to_u256()));
  core_a.release();
  core_b.release();
}

// A3: control-flow hardening — a malicious bundle cannot corrupt the
// service; malformed contract behavior ends in a contained VM error.
TEST_F(SecurityTest, A3_MaliciousBundleIsContained) {
  evm::Transaction bomb;
  bomb.from = gen_.users()[0];
  bomb.to = gen_.routers()[0];
  // Garbage calldata: unknown selector -> contract reverts; service stays up.
  bomb.data = Bytes(64, 0xff);
  bomb.gas_limit = 1'000'000;
  const auto outcome = service_->pre_execute({bomb, token_tx(0)});
  ASSERT_EQ(outcome.report.transactions.size(), 2u);
  EXPECT_EQ(outcome.report.transactions[0].status, evm::VmStatus::kRevert);
  EXPECT_EQ(outcome.report.transactions[1].status, evm::VmStatus::kSuccess);
}

// A4: swapped-out layer-3 pages are sealed; bit flips and replays fail
// authentication (unit coverage in memlayer_test; here the session-key
// separation aspect).
TEST_F(SecurityTest, A4_SwapDataSealedPerSession) {
  memlayer::Layer3Memory session1(crypto::AesKey128{}, 1);
  crypto::AesKey128 key2{};
  key2[0] = 9;
  memlayer::Layer3Memory session2(key2, 1);
  session1.store(0, Bytes(64, 0xaa));
  session2.store(0, Bytes(64, 0xbb));
  // Pages sealed under session 1 cannot be decrypted under session 2's key:
  // model by moving the sealed page across (replay between sessions).
  // Layer3Memory binds slot+key; a cross-session replay means loading a slot
  // stored by another instance -> different key -> auth failure. Simulated:
  memlayer::Layer3Memory attacker_view(key2, 2);
  attacker_view.store(0, Bytes(64, 0xcc));
  EXPECT_TRUE(attacker_view.load(0).has_value());
  // The adversary has session1's sealed bytes but not its key; any attempt
  // to splice them into session2 is just a tamper -> covered by tamper test.
  ASSERT_TRUE(session1.tamper(0));
  EXPECT_FALSE(session1.load(0).has_value());
}

// A5: with noise enabled, two bundles with identical true frame sizes give
// different observable swap traces (covered statistically in memlayer_test;
// here through the full service path).
TEST_F(SecurityTest, A5_SwapEventsCarryNoise) {
  // A deep call chain with bulky frames forces layer-2 spills.
  evm::Transaction deep;
  deep.from = gen_.users()[0];
  deep.to = gen_.routers()[0];
  Bytes data = workload::router_route(10, gen_.tokens()[0], gen_.users()[1], u256{1});
  data.resize(data.size() + 60'000, 0xcd);
  deep.data = std::move(data);
  deep.gas_limit = 30'000'000;

  sim::SimClock clock;
  hevm::HevmCore::Config config;
  config.l2.l2_bytes = 128 * 1024;  // small L2 to force swapping
  std::vector<uint64_t> observed1, observed2;
  for (int run = 0; run < 2; ++run) {
    hevm::HevmCore core(run, clock, config);
    crypto::AesKey128 key{};
    core.assign(node_.world(), node_.block_context(), key, /*noise_seed=*/run * 7919 + 13);
    const auto report = core.execute_bundle({deep});
    for (const auto& event : report.swap_events) {
      (run == 0 ? observed1 : observed2).push_back(event.pages);
    }
    core.release();
  }
  ASSERT_FALSE(observed1.empty());
  EXPECT_NE(observed1, observed2) << "identical swap traces leak frame sizes";
}

// A6: a dishonest node cannot poison the ORAM — integration-level re-check.
TEST_F(SecurityTest, A6_DishonestNodeBlockedAtSync) {
  node_.set_dishonest(true);
  service::PreExecutionService::Config config;
  config.security = service::SecurityConfig::full();
  config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
  config.seal_mode = oram::SealMode::kChaChaHmac;
  service::PreExecutionService dirty(node_, config);
  EXPECT_EQ(dirty.synchronize(), Status::kBadProof);
  node_.set_dishonest(false);
}

// A7: the SP's observable trace is identical in *shape* regardless of which
// token the user touches: same access granularity, uniform leaves.
TEST_F(SecurityTest, A7_TargetContractNotInferrableFromServerView) {
  service_->oram_server().clear_observations();
  service_->pre_execute({token_tx(0)});
  const auto view_token0 = service_->oram_server().observed_leaves();
  service_->oram_server().clear_observations();
  service_->pre_execute({token_tx(2)});
  const auto view_token2 = service_->oram_server().observed_leaves();

  // The adversary sees only leaf indices. Any token-identifying signal would
  // have to come from (a) the number of accesses or (b) the leaf values.
  // (a) differs only via code size (randomized per contract at deploy), and
  // (b) is uniformly random: check both views pass the same coarse
  // uniformity screen and share no improbable structure.
  auto mean_leaf = [&](const std::vector<uint64_t>& v) {
    double s = 0;
    for (uint64_t x : v) s += static_cast<double>(x);
    return s / static_cast<double>(v.size());
  };
  const double half = static_cast<double>(service_->oram_server().leaf_count()) / 2;
  EXPECT_NEAR(mean_leaf(view_token0), half, half * 0.45);
  EXPECT_NEAR(mean_leaf(view_token2), half, half * 0.45);
  // Repeating the SAME query sequence gives a fresh view (re-randomized).
  service_->oram_server().clear_observations();
  service_->pre_execute({token_tx(0)});
  EXPECT_NE(service_->oram_server().observed_leaves(), view_token0);
}

// Integrity of results: the trace the user receives reflects exactly what
// executed — the SP cannot silently drop a storage write from the report
// (the report is produced on-chip and signed; here we check fidelity).
TEST_F(SecurityTest, TraceFidelity) {
  const auto outcome = service_->pre_execute({token_tx(0)});
  const auto& trace = outcome.report.transactions[0];
  ASSERT_EQ(trace.status, evm::VmStatus::kSuccess);
  // Sender and recipient balance slots must both appear in the write set.
  bool sender_seen = false, recipient_seen = false;
  for (const auto& write : trace.storage_writes) {
    if (write.key == gen_.users()[0].to_u256()) sender_seen = true;
    if (write.key == gen_.users()[1].to_u256()) recipient_seen = true;
  }
  EXPECT_TRUE(sender_seen);
  EXPECT_TRUE(recipient_seen);
  ASSERT_EQ(trace.logs.size(), 1u);  // the Transfer event
}

}  // namespace
}  // namespace hardtape
