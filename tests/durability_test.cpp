// Crash-consistent durability (PR 5): the simulated filesystem's power-loss
// semantics, the WAL's fail-closed replay, checkpoint atomicity, recovery's
// staging state machine, the DurableStore mirror, and the engine's warm
// restart. Every crash here is seeded and replayable — a failing case is a
// unit test, not an anecdote.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hpp"

#include "durability/checkpoint.hpp"
#include "durability/durable_store.hpp"
#include "durability/journal.hpp"
#include "durability/recovery.hpp"
#include "durability/vfs.hpp"
#include "faults/crash_plan.hpp"
#include "service/engine.hpp"
#include "workload/generator.hpp"

namespace hardtape::durability {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---------------------------------------------------------------- SimFs ----

TEST(SimFs, AppendIsPendingUntilFsync) {
  SimFs fs;
  fs.append("f", bytes_of("hello"));
  EXPECT_EQ(fs.pending_bytes(), 5u);
  ASSERT_TRUE(fs.read("f").has_value());
  EXPECT_EQ(*fs.read("f"), bytes_of("hello"));  // working view sees it
  fs.fsync("f");
  EXPECT_EQ(fs.pending_bytes(), 0u);
}

TEST(SimFs, CrashDropsUnsyncedBytes) {
  SimFs fs;
  fs.append("f", bytes_of("durable"));
  fs.fsync("f");
  fs.sync_dir();
  CrashConfig crash;
  crash.unsynced_survival = 0.0;
  crash.allow_torn_tail = false;
  fs.append("f", bytes_of("lost"));
  crash.crash_at_op = fs.op_count() + 1;
  fs.arm(crash);
  fs.append("f", bytes_of("also lost"));  // the armed op: power out
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(fs.read("f").has_value());  // dead until restart
  fs.restart();
  EXPECT_EQ(*fs.read("f"), bytes_of("durable"));
}

TEST(SimFs, CrashResolutionIsDeterministic) {
  const auto run = [](uint64_t resolve_seed) {
    SimFs fs;
    fs.append("f", bytes_of("base"));
    fs.fsync("f");
    fs.sync_dir();
    for (int i = 0; i < 8; ++i) {
      fs.append("f", bytes_of("chunk" + std::to_string(i)));
    }
    CrashConfig crash;
    crash.crash_at_op = fs.op_count() + 1;
    crash.resolve_seed = resolve_seed;
    crash.unsynced_survival = 0.5;
    fs.arm(crash);
    fs.fsync("nonexistent");  // any op fires the crash
    fs.restart();
    return *fs.read("f");
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different platter resolution
}

TEST(SimFs, UnsyncedCreateNeedsSyncDir) {
  SimFs fs;
  fs.append("f", bytes_of("data"));
  fs.fsync("f");  // bytes durable, name is not
  CrashConfig crash;
  crash.unsynced_survival = 0.0;
  crash.allow_reorder = false;
  crash.crash_at_op = fs.op_count() + 1;
  fs.arm(crash);
  fs.remove("unrelated");
  fs.restart();
  // The classic forgot-to-fsync-the-directory bug: the file is gone.
  EXPECT_FALSE(fs.exists("f"));
}

TEST(SimFs, RenameIsAtomic) {
  SimFs fs;
  fs.append("a", bytes_of("old"));
  fs.fsync("a");
  fs.sync_dir();
  fs.append("a.tmp", bytes_of("new"));
  fs.fsync("a.tmp");
  fs.sync_dir();
  CrashConfig crash;
  crash.unsynced_survival = 0.0;
  crash.allow_reorder = false;
  crash.crash_at_op = fs.op_count() + 2;  // die on the sync_dir after rename
  fs.arm(crash);
  fs.rename("a.tmp", "a");
  fs.sync_dir();
  fs.restart();
  // Rename never became durable: the OLD content is intact, not a mix.
  EXPECT_EQ(*fs.read("a"), bytes_of("old"));
}

TEST(SimFs, PartialPageWriteLeavesStrictPrefix) {
  // A lost page-sized append with partial_page_writes set resolves to a
  // seeded STRICT prefix of the page — never the whole page, never bytes
  // that were not written. This is the torn-partial-page shape the paged
  // store's checksum walk must refuse.
  Bytes page(4096);
  for (size_t i = 0; i < page.size(); ++i) page[i] = static_cast<uint8_t>(i);
  const Bytes base = bytes_of("base");
  bool saw_nonempty_prefix = false;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    SimFs fs;
    fs.append("f", base);
    fs.fsync("f");
    fs.sync_dir();
    fs.append("f", page);  // pending: the page that gets torn
    CrashConfig crash;
    crash.crash_at_op = fs.op_count() + 1;
    crash.resolve_seed = seed;
    crash.unsynced_survival = 0.0;  // the chunk is always LOST...
    crash.allow_torn_tail = false;
    crash.partial_page_writes = true;  // ...but may land a strict prefix
    fs.arm(crash);
    fs.fsync("nonexistent");
    fs.restart();
    const Bytes got = *fs.read("f");
    ASSERT_GE(got.size(), base.size());
    ASSERT_LT(got.size(), base.size() + page.size());  // strictly partial
    EXPECT_TRUE(std::equal(base.begin(), base.end(), got.begin()));
    const size_t keep = got.size() - base.size();
    EXPECT_TRUE(std::equal(page.begin(), page.begin() + static_cast<ptrdiff_t>(keep),
                           got.begin() + static_cast<ptrdiff_t>(base.size())));
    if (keep > 0) saw_nonempty_prefix = true;
  }
  EXPECT_TRUE(saw_nonempty_prefix);  // the mode actually fires across seeds
}

TEST(SimFs, PartialPageThenSurvivorLeavesGarbageSuffix) {
  // Lost-page prefix + a LATER surviving page: the torn page's missing
  // suffix becomes a garbage hole so the survivor lands at its true offset.
  Bytes page1(1024, 0x11);
  Bytes page2(1024, 0x22);
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    SimFs fs;
    fs.append("f", page1);
    fs.append("f", page2);
    CrashConfig crash;
    crash.crash_at_op = fs.op_count() + 1;
    crash.resolve_seed = seed;
    crash.unsynced_survival = 0.5;
    crash.allow_torn_tail = false;
    crash.partial_page_writes = true;
    fs.arm(crash);
    fs.fsync("nonexistent");
    fs.restart();
    const auto got = fs.read("f");
    if (!got.has_value()) continue;  // the pending create did not survive
    if (got->size() < 2 * 1024) continue;  // page2 lost (or torn) too
    // page2 survived whole, so page1's region is exactly 1024 bytes:
    // a true prefix of 0x11s followed by seeded garbage — never silently
    // healed back into a full valid page unless it genuinely survived.
    ASSERT_EQ(got->size(), 2 * 1024u);
    EXPECT_TRUE(std::equal(page2.begin(), page2.end(), got->begin() + 1024));
  }
}

TEST(SimFs, SyncDirIsAReorderBarrier) {
  // Directory ops AFTER a sync_dir resolve with independent coins (metadata
  // reorder), but the barrier itself is absolute: the pre-barrier published
  // state is never torn or reordered-away by post-barrier ops.
  const Bytes data0 = bytes_of("published");
  const Bytes data1 = bytes_of("late file");
  std::set<std::pair<bool, bool>> outcomes;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    SimFs fs;
    fs.append("g0", data0);
    fs.fsync("g0");
    fs.sync_dir();  // the barrier: g0 is fully published
    fs.remove("g0");        // pending post-barrier op A
    fs.append("g1", data1); // pending post-barrier op B (create)
    fs.fsync("g1");
    CrashConfig crash;
    crash.crash_at_op = fs.op_count() + 1;
    crash.resolve_seed = seed;
    crash.unsynced_survival = 0.5;
    crash.allow_reorder = true;
    fs.arm(crash);
    fs.sync_dir();  // armed op: crash fires before this barrier lands
    fs.restart();
    const bool has_g0 = fs.exists("g0");
    const bool has_g1 = fs.exists("g1");
    // g0 is either intact with its exact pre-barrier bytes or removed by
    // the surviving post-barrier remove — never a modified hybrid.
    if (has_g0) {
      EXPECT_EQ(*fs.read("g0"), data0);
    }
    if (has_g1) {
      EXPECT_EQ(*fs.read("g1"), data1);
    }
    outcomes.insert({has_g0, has_g1});
  }
  // The post-barrier ops really do resolve independently: across seeds we
  // see more than one (remove survived?, create survived?) combination.
  EXPECT_GT(outcomes.size(), 1u);
}

// -------------------------------------------------------------- Journal ----

Journal::ReplayResult replay_all(const SimFs& fs, const std::string& path,
                                 std::vector<JournalRecord>* out = nullptr) {
  return Journal::replay(fs, path, 0, [out](const JournalRecord& rec) {
    if (out != nullptr) out->push_back(rec);
    return true;
  });
}

TEST(JournalTest, RoundTripAllRecordTypes) {
  SimFs fs;
  Journal journal(fs, "wal-0", 0);
  const H256 root = crypto::keccak256(bytes_of("root"));
  journal.append_epoch_begin(0, root, 41);
  journal.append_bundle_admit(7);
  journal.append_page_install(u256{123}, bytes_of("page contents"), 5);
  journal.append_position_update(u256{123}, 5);
  journal.append_epoch_commit(0);
  journal.append_bundle_resolve(7);
  journal.append_epoch_begin(1, root, 42);
  journal.append_epoch_abort(1);
  journal.sync();

  std::vector<JournalRecord> records;
  const auto result = replay_all(fs, "wal-0", &records);
  EXPECT_EQ(result.stop_reason, "");
  EXPECT_EQ(result.records, 8u);
  EXPECT_EQ(result.next_seq, 8u);
  EXPECT_EQ(result.truncated_bytes, 0u);
  ASSERT_EQ(records.size(), 8u);
  EXPECT_EQ(records[0].type, RecordType::kEpochBegin);
  EXPECT_EQ(records[0].root, root);
  EXPECT_EQ(records[0].block_number, 41u);
  EXPECT_EQ(records[1].bundle_id, 7u);
  EXPECT_EQ(records[2].page_id, u256{123});
  EXPECT_EQ(records[2].page_data, bytes_of("page contents"));
  EXPECT_EQ(records[2].leaf, 5u);
  EXPECT_EQ(records[7].type, RecordType::kEpochAbort);
}

TEST(JournalTest, TornTailTruncatesToValidPrefix) {
  SimFs fs;
  Journal journal(fs, "wal-0", 0);
  journal.append_bundle_admit(1);
  journal.append_bundle_admit(2);
  journal.sync();
  // A record cut mid-payload, as a torn last sector would leave it.
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kBundleAdmit));
  for (int i = 0; i < 8; ++i) p.push_back(3);
  Bytes torn = Journal::encode(2, p);
  torn.resize(torn.size() - 4);
  fs.append("wal-0", torn);
  fs.fsync("wal-0");

  const auto result = replay_all(fs, "wal-0");
  EXPECT_EQ(result.records, 2u);
  EXPECT_EQ(result.stop_reason, "torn payload");
  EXPECT_GT(result.truncated_bytes, 0u);
}

TEST(JournalTest, ChecksumMismatchTruncates) {
  SimFs fs;
  Journal journal(fs, "wal-0", 0);
  journal.append_bundle_admit(1);
  journal.sync();
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kBundleAdmit));
  for (int i = 0; i < 8; ++i) p.push_back(9);
  Bytes corrupt = Journal::encode(1, p);
  corrupt.back() ^= 0x40;  // flip one payload bit after checksumming
  fs.append("wal-0", corrupt);
  fs.fsync("wal-0");

  const auto result = replay_all(fs, "wal-0");
  EXPECT_EQ(result.records, 1u);
  EXPECT_EQ(result.stop_reason, "checksum mismatch");
}

TEST(JournalTest, SequenceBreakTruncates) {
  SimFs fs;
  Journal journal(fs, "wal-0", 0);
  journal.append_bundle_admit(1);
  journal.sync();
  Bytes p;
  p.push_back(static_cast<uint8_t>(RecordType::kBundleAdmit));
  for (int i = 0; i < 8; ++i) p.push_back(9);
  fs.append("wal-0", Journal::encode(5, p));  // expected seq 1, carries 5
  fs.fsync("wal-0");

  const auto result = replay_all(fs, "wal-0");
  EXPECT_EQ(result.records, 1u);
  EXPECT_EQ(result.stop_reason, "sequence break");
}

TEST(JournalTest, ConsumerRejectionTruncates) {
  SimFs fs;
  Journal journal(fs, "wal-0", 0);
  journal.append_bundle_admit(1);
  journal.append_bundle_admit(2);
  journal.append_bundle_admit(3);
  journal.sync();
  uint64_t seen = 0;
  const auto result =
      Journal::replay(fs, "wal-0", 0, [&seen](const JournalRecord& rec) {
        ++seen;
        return rec.bundle_id != 2;  // semantic rejection mid-stream
      });
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(result.records, 1u);
  EXPECT_EQ(result.stop_reason, "rejected by consumer");
}

TEST(JournalTest, MissingFileIsCleanEmptyReplay) {
  SimFs fs;
  const auto result = replay_all(fs, "wal-0");
  EXPECT_EQ(result.records, 0u);
  EXPECT_EQ(result.stop_reason, "");
}

TEST(JournalTest, OversizeLengthFieldTruncates) {
  // A record whose length field exceeds kMaxRecordSize is corruption even
  // when the payload IS fully present with a valid checksum: replay must
  // clamp before framing, not attempt a giant read.
  SimFs fs;
  Journal journal(fs, "wal-0", 0);
  journal.append_bundle_admit(1);
  journal.sync();
  // Hand-build the oversize record (encode() itself refuses to).
  Bytes payload(kMaxRecordSize + 1, 0x5a);
  payload[0] = static_cast<uint8_t>(RecordType::kBundleAdmit);
  const auto put_le = [](Bytes& out, uint64_t v, int n) {
    for (int i = 0; i < n; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  Bytes raw;
  put_le(raw, payload.size(), 4);
  put_le(raw, /*seq=*/1, 8);
  Bytes preimage;
  put_le(preimage, /*seq=*/1, 8);
  append(preimage, payload);
  const H256 digest = crypto::keccak256(preimage);
  raw.insert(raw.end(), digest.bytes.begin(), digest.bytes.begin() + 8);
  append(raw, payload);
  fs.append("wal-0", raw);
  fs.fsync("wal-0");

  const auto result = replay_all(fs, "wal-0");
  EXPECT_EQ(result.records, 1u);
  EXPECT_EQ(result.stop_reason, "oversize record");
  EXPECT_GT(result.truncated_bytes, kMaxRecordSize);
}

TEST(JournalTest, EncodeRefusesOversizePayload) {
  const Bytes too_big(kMaxRecordSize + 1, 0);
  EXPECT_THROW(Journal::encode(0, too_big), UsageError);
  const Bytes at_limit(kMaxRecordSize, 0);
  EXPECT_NO_THROW(Journal::encode(0, at_limit));
}

bool same_record(const JournalRecord& a, const JournalRecord& b) {
  return a.seq == b.seq && a.type == b.type && a.epoch == b.epoch &&
         a.root == b.root && a.block_number == b.block_number &&
         a.page_id == b.page_id && a.leaf == b.leaf &&
         a.page_data == b.page_data && a.bundle_id == b.bundle_id;
}

TEST(JournalTest, CorruptionFuzzIsFailClosed) {
  // Seeded fuzz over bit flips and torn tails: every mutated journal must
  // replay to a clean PREFIX of the pristine record stream — no crash, no
  // record the honest journal never contained, no resurrected suffix.
  SimFs fs;
  Journal journal(fs, "wal-0", 0);
  const H256 root = crypto::keccak256(bytes_of("fuzz root"));
  Random gen(0xfa22);
  for (uint64_t e = 0; e < 6; ++e) {
    journal.append_epoch_begin(e, root, 100 + e);
    journal.append_bundle_admit(e);
    journal.append_page_install(u256{e + 1}, gen.bytes(32 + gen.uniform(96)),
                                gen.uniform(64));
    journal.append_position_update(u256{e + 1}, gen.uniform(64));
    journal.append_epoch_commit(e);
  }
  journal.sync();
  const Bytes pristine = *fs.read("wal-0");
  std::vector<JournalRecord> reference;
  ASSERT_EQ(replay_all(fs, "wal-0", &reference).stop_reason, "");
  ASSERT_EQ(reference.size(), 30u);

  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Random rng(seed);
    Bytes mutated = pristine;
    const uint64_t kind = rng.uniform(3);
    if (kind == 0 || kind == 2) {  // flip 1..3 random bits
      const uint64_t flips = 1 + rng.uniform(3);
      for (uint64_t i = 0; i < flips; ++i) {
        mutated[rng.uniform(mutated.size())] ^=
            static_cast<uint8_t>(1u << rng.uniform(8));
      }
    }
    if (kind == 1 || kind == 2) {  // tear off a random tail
      mutated.resize(rng.uniform(mutated.size() + 1));
    }
    SimFs fuzzed;
    fuzzed.append("wal-f", mutated);
    fuzzed.fsync("wal-f");
    std::vector<JournalRecord> got;
    const auto result = replay_all(fuzzed, "wal-f", &got);
    ASSERT_LE(got.size(), reference.size()) << "seed " << seed;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(same_record(got[i], reference[i]))
          << "seed " << seed << " record " << i;
    }
    // Accounting must cover the whole file: accepted prefix + discarded tail.
    EXPECT_EQ(result.valid_bytes + result.truncated_bytes, mutated.size())
        << "seed " << seed;
  }
}

// ----------------------------------------------------------- Checkpoint ----

StoreImage sample_image() {
  StoreImage image;
  image.base_seq = 17;
  image.epoch_history.push_back({0, crypto::keccak256(bytes_of("r0")), 1});
  image.epoch_history.push_back({1, crypto::keccak256(bytes_of("r1")), 2});
  image.page_tags[u256{1}] = 0;
  image.page_tags[u256{2}] = 1;
  image.pages[u256{1}] = PageImage{bytes_of("page one"), 3};
  image.pages[u256{2}] = PageImage{bytes_of("page two"), 9};
  image.positions[u256{1}] = 3;
  image.positions[u256{2}] = 9;
  image.pending_bundles = {4, 6};
  image.next_bundle_id = 7;
  return image;
}

TEST(Checkpoint, SerializeParseRoundTrip) {
  const StoreImage image = sample_image();
  const auto parsed = checkpoint::parse(checkpoint::serialize(3, image));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base_seq, image.base_seq);
  EXPECT_EQ(parsed->next_bundle_id, image.next_bundle_id);
  ASSERT_EQ(parsed->epoch_history.size(), 2u);
  EXPECT_EQ(parsed->epoch_history[1].state_root, image.epoch_history[1].state_root);
  EXPECT_EQ(parsed->page_tags, image.page_tags);
  ASSERT_EQ(parsed->pages.size(), 2u);
  EXPECT_EQ(parsed->pages.at(u256{1}).data, bytes_of("page one"));
  EXPECT_EQ(parsed->pages.at(u256{2}).leaf, 9u);
  EXPECT_EQ(parsed->positions, image.positions);
  EXPECT_EQ(parsed->pending_bundles, image.pending_bundles);
}

TEST(Checkpoint, CorruptionRejected) {
  Bytes data = checkpoint::serialize(3, sample_image());
  for (const size_t index : {size_t{0}, data.size() / 2, data.size() - 1}) {
    Bytes mutated = data;
    mutated[index] ^= 0x01;
    EXPECT_FALSE(checkpoint::parse(mutated).has_value()) << "at byte " << index;
  }
  Bytes truncated = data;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(checkpoint::parse(truncated).has_value());
}

TEST(Checkpoint, WriteIsAtomicUnderCrash) {
  // Crash on the rename's sync_dir, with all unsynced effects lost: the
  // published name must still hold the PREVIOUS generation, fully intact.
  SimFs fs;
  checkpoint::write(fs, 1, sample_image());
  StoreImage newer = sample_image();
  newer.next_bundle_id = 99;
  CrashConfig crash;
  crash.unsynced_survival = 0.0;
  crash.allow_reorder = false;
  crash.crash_at_op = fs.op_count() + 4;  // append, fsync, rename, SYNC_DIR
  fs.arm(crash);
  checkpoint::write(fs, 2, newer);
  fs.restart();
  const auto loaded = checkpoint::load_newest(fs);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->first, 1u);
  EXPECT_EQ(loaded->second.next_bundle_id, 7u);
}

TEST(Checkpoint, KeepsPreviousGenerationOnly) {
  SimFs fs;
  Journal(fs, checkpoint::journal_path(1), 0).append_bundle_admit(1);
  fs.fsync(checkpoint::journal_path(1));
  checkpoint::write(fs, 1, sample_image());
  checkpoint::write(fs, 2, sample_image());
  checkpoint::write(fs, 3, sample_image());
  EXPECT_FALSE(fs.exists(checkpoint::checkpoint_path(1)));
  EXPECT_FALSE(fs.exists(checkpoint::journal_path(1)));
  EXPECT_TRUE(fs.exists(checkpoint::checkpoint_path(2)));
  EXPECT_TRUE(fs.exists(checkpoint::checkpoint_path(3)));
}

// -------------------------------------------------------------- Recovery ----

TEST(RecoveryTest, EmptyFilesystemYieldsFreshImage) {
  SimFs fs;
  const auto rec = Recovery::replay(fs);
  EXPECT_FALSE(rec.stats.used_checkpoint);
  EXPECT_TRUE(rec.image.epoch_history.empty());
  EXPECT_TRUE(rec.image.pages.empty());
  EXPECT_EQ(rec.stats.next_generation, 1u);
}

TEST(RecoveryTest, CommittedEpochIsReplayed) {
  SimFs fs;
  Journal journal(fs, checkpoint::journal_path(0), 0);
  const H256 root = crypto::keccak256(bytes_of("root"));
  journal.append_epoch_begin(0, root, 10);
  journal.append_page_install(u256{42}, bytes_of("page"), 3);
  journal.append_position_update(u256{42}, 3);
  journal.append_epoch_commit(0);
  journal.sync();

  const auto rec = Recovery::replay(fs);
  EXPECT_EQ(rec.stats.stop_reason, "");
  EXPECT_EQ(rec.stats.records_replayed, 4u);
  ASSERT_EQ(rec.image.epoch_history.size(), 1u);
  EXPECT_EQ(rec.image.epoch_history[0].state_root, root);
  EXPECT_EQ(rec.image.pages.at(u256{42}).data, bytes_of("page"));
  EXPECT_EQ(rec.image.page_tags.at(u256{42}), 0u);
  EXPECT_EQ(rec.stats.epochs_aborted, 0u);
}

TEST(RecoveryTest, UncommittedEpochIsAborted) {
  SimFs fs;
  Journal journal(fs, checkpoint::journal_path(0), 0);
  const H256 root = crypto::keccak256(bytes_of("root"));
  journal.append_epoch_begin(0, root, 10);
  journal.append_page_install(u256{1}, bytes_of("committed"), 1);
  journal.append_epoch_commit(0);
  journal.append_epoch_begin(1, root, 11);
  journal.append_page_install(u256{2}, bytes_of("in flight"), 2);
  // No commit: the crash ate it.
  journal.sync();

  const auto rec = Recovery::replay(fs);
  EXPECT_EQ(rec.stats.epochs_aborted, 1u);
  ASSERT_EQ(rec.image.epoch_history.size(), 1u);
  EXPECT_TRUE(rec.image.pages.contains(u256{1}));
  EXPECT_FALSE(rec.image.pages.contains(u256{2}));  // staged, never visible
  // The paper's safety invariant, recovered form: no page tagged past the
  // committed store epoch.
  for (const auto& [id, epoch] : rec.image.page_tags) {
    EXPECT_LE(epoch, rec.image.epoch_history.back().epoch);
  }
}

TEST(RecoveryTest, SemanticViolationTruncatesFailClosed) {
  SimFs fs;
  Journal journal(fs, checkpoint::journal_path(0), 0);
  journal.append_bundle_admit(1);
  // Install outside any epoch: wire-valid, semantically impossible.
  journal.append_page_install(u256{5}, bytes_of("rogue"), 1);
  journal.append_bundle_admit(2);  // after the violation: untrusted
  journal.sync();

  const auto rec = Recovery::replay(fs);
  EXPECT_EQ(rec.stats.stop_reason, "rejected by consumer");
  EXPECT_EQ(rec.stats.records_replayed, 1u);
  EXPECT_TRUE(rec.image.pending_bundles.contains(1));
  EXPECT_FALSE(rec.image.pending_bundles.contains(2));
  EXPECT_TRUE(rec.image.pages.empty());
}

TEST(RecoveryTest, CheckpointPlusJournalChain) {
  SimFs fs;
  // Generation 1 checkpoint, then a wal-1 continuing from its base_seq.
  StoreImage base = sample_image();
  base.base_seq = 17;
  base.pending_bundles = {4};
  checkpoint::write(fs, 1, base);
  Journal journal(fs, checkpoint::journal_path(1), 17);
  journal.append_bundle_resolve(4);
  journal.append_bundle_admit(8);
  journal.sync();

  const auto rec = Recovery::replay(fs);
  EXPECT_TRUE(rec.stats.used_checkpoint);
  EXPECT_EQ(rec.stats.checkpoint_generation, 1u);
  EXPECT_EQ(rec.stats.records_replayed, 2u);
  EXPECT_FALSE(rec.image.pending_bundles.contains(4));  // resolved post-ckpt
  EXPECT_TRUE(rec.image.pending_bundles.contains(8));
  EXPECT_EQ(rec.image.next_bundle_id, 9u);
  EXPECT_EQ(rec.stats.next_generation, 2u);
  EXPECT_EQ(rec.image.pages.size(), 2u);  // carried by the checkpoint
}

TEST(RecoveryTest, JournalNotContinuingCheckpointIsRejected) {
  SimFs fs;
  StoreImage base = sample_image();
  base.base_seq = 17;
  checkpoint::write(fs, 1, base);
  Journal journal(fs, checkpoint::journal_path(1), 3);  // wrong anchor
  journal.append_bundle_admit(8);
  journal.sync();

  const auto rec = Recovery::replay(fs);
  EXPECT_EQ(rec.stats.stop_reason, "sequence break");
  EXPECT_FALSE(rec.image.pending_bundles.contains(8));
}

// ---------------------------------------------------------- DurableStore ----

TEST(DurableStoreTest, MirrorMatchesRecovery) {
  SimFs fs;
  DurableStore store(fs, DurableConfig{});
  const H256 root = crypto::keccak256(bytes_of("root"));
  store.on_epoch_begin(0, root, 5);
  store.log_page_install(u256{1}, bytes_of("page one"), 2);
  store.log_bundle_admitted(0);
  store.on_epoch_commit(0);
  store.log_bundle_admitted(1);
  store.log_bundle_resolved(0);

  const auto rec = Recovery::replay(fs);
  EXPECT_EQ(rec.stats.stop_reason, "");
  const StoreImage mirror = store.image_snapshot();
  EXPECT_EQ(rec.image.pages.size(), mirror.pages.size());
  EXPECT_EQ(rec.image.page_tags, mirror.page_tags);
  EXPECT_EQ(rec.image.pending_bundles, mirror.pending_bundles);
  EXPECT_EQ(rec.image.next_bundle_id, mirror.next_bundle_id);
  ASSERT_EQ(rec.image.epoch_history.size(), 1u);
  EXPECT_EQ(rec.image.epoch_history[0].state_root, root);
}

TEST(DurableStoreTest, CrashMidEpochRecoversPreEpochImage) {
  SimFs fs;
  DurableStore store(fs, DurableConfig{});
  const H256 root = crypto::keccak256(bytes_of("root"));
  store.on_epoch_begin(0, root, 5);
  store.log_page_install(u256{1}, bytes_of("epoch zero"), 2);
  store.on_epoch_commit(0);

  CrashConfig crash;
  crash.unsynced_survival = 0.5;
  crash.resolve_seed = 33;
  fs.arm([&] {
    CrashConfig c = crash;
    c.crash_at_op = fs.op_count() + 5;  // inside the second epoch's pass
    return c;
  }());
  store.on_epoch_begin(1, root, 6);
  store.log_page_install(u256{2}, bytes_of("epoch one"), 3);
  store.log_page_install(u256{3}, bytes_of("epoch one b"), 4);
  store.on_epoch_commit(1);  // some of this dies with the power
  EXPECT_TRUE(fs.crashed());
  fs.restart();

  const auto rec = Recovery::replay(fs);
  // Whatever survived, the recovered image is a committed prefix: either
  // epoch 1 committed entirely or it aborted entirely.
  ASSERT_FALSE(rec.image.epoch_history.empty());
  const uint64_t committed = rec.image.epoch_history.back().epoch;
  EXPECT_TRUE(rec.image.pages.contains(u256{1}));
  if (committed == 0) {
    EXPECT_FALSE(rec.image.pages.contains(u256{2}));
    EXPECT_FALSE(rec.image.pages.contains(u256{3}));
  } else {
    EXPECT_EQ(committed, 1u);
    EXPECT_TRUE(rec.image.pages.contains(u256{2}));
    EXPECT_TRUE(rec.image.pages.contains(u256{3}));
  }
  for (const auto& [id, epoch] : rec.image.page_tags) EXPECT_LE(epoch, committed);
}

TEST(DurableStoreTest, AutoCheckpointRollsGeneration) {
  SimFs fs;
  DurableStore store(fs, DurableConfig{.checkpoint_every_records = 4});
  const H256 root = crypto::keccak256(bytes_of("root"));
  for (uint64_t e = 0; e < 3; ++e) {
    store.on_epoch_begin(e, root, e);
    store.log_page_install(u256{e + 1}, bytes_of("page"), e);
    store.on_epoch_commit(e);
  }
  const auto stats = store.stats();
  EXPECT_GE(stats.checkpoints_written, 1u);
  EXPECT_GE(stats.generation, 1u);
  const auto rec = Recovery::replay(fs);
  EXPECT_TRUE(rec.stats.used_checkpoint);
  EXPECT_EQ(rec.image.epoch_history.size(), 3u);
  EXPECT_EQ(rec.image.pages.size(), 3u);
}

// ------------------------------------------------------------- CrashPlan ----

TEST(CrashPlanTest, PureInTrialAndAttempt) {
  faults::CrashPlan plan(faults::CrashPlanConfig{.seed = 9});
  const auto a = plan.spec(3, 1, 100);
  const auto b = plan.spec(3, 1, 100);
  EXPECT_EQ(a.crash_at_op, b.crash_at_op);
  EXPECT_EQ(a.resolve_seed, b.resolve_seed);
  const auto c = plan.spec(3, 2, 100);
  const auto d = plan.spec(4, 1, 100);
  EXPECT_TRUE(c.crash_at_op != a.crash_at_op || c.resolve_seed != a.resolve_seed);
  EXPECT_TRUE(d.crash_at_op != a.crash_at_op || d.resolve_seed != a.resolve_seed);
  EXPECT_GE(a.crash_at_op, 1u);
  EXPECT_LE(a.crash_at_op, 100u);
}

// ------------------------------------------------- engine warm restart ----

class DurableEngineTest : public ::testing::Test {
 protected:
  DurableEngineTest() {
    workload::WorkloadGenerator gen(workload::GeneratorConfig{
        .seed = 0xd0a1, .user_accounts = 8, .erc20_contracts = 4,
        .dex_pairs = 2, .routers = 2, .txs_per_block = 4});
    gen.deploy(node_.world());
    node_.produce_block({});
    const auto blocks = gen.generate_evaluation_set(4);
    for (const auto& block : blocks) txs_.insert(txs_.end(), block.begin(), block.end());
  }

  service::EngineConfig make_config(DurableStore* durable) {
    service::EngineConfig config;
    config.security = service::SecurityConfig::full();
    config.num_hevms = 2;
    config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096,
                                   .max_stash_blocks = 512};
    config.seal_mode = oram::SealMode::kChaChaHmac;
    config.perform_channel_crypto = false;
    config.durable = durable;
    return config;
  }

  node::NodeSimulator node_;
  std::vector<evm::Transaction> txs_;
};

TEST_F(DurableEngineTest, CleanRunJournalRecoversToPinnedState) {
  SimFs fs;
  DurableStore store(fs, DurableConfig{});
  service::PreExecutionEngine engine(node_, make_config(&store));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  engine.start();
  for (size_t i = 0; i < 6; ++i) engine.submit({txs_[i % txs_.size()]});
  const auto outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), 6u);

  const auto rec = Recovery::replay(fs);
  EXPECT_EQ(rec.stats.stop_reason, "");
  EXPECT_TRUE(rec.image.pending_bundles.empty());  // every bundle resolved
  EXPECT_EQ(rec.image.next_bundle_id, 6u);
  ASSERT_FALSE(rec.image.epoch_history.empty());
  EXPECT_EQ(rec.image.epoch_history.back().state_root,
            engine.pinned_header().state_root);
  EXPECT_FALSE(rec.image.pages.empty());
}

TEST_F(DurableEngineTest, WarmRestartContinuesNumberingAndInvariants) {
  SimFs fs;
  DurableStore store(fs, DurableConfig{});
  {
    service::PreExecutionEngine engine(node_, make_config(&store));
    ASSERT_EQ(engine.synchronize(), Status::kOk);
    engine.start();
    for (size_t i = 0; i < 4; ++i) engine.submit({txs_[i % txs_.size()]});
    (void)engine.drain();
  }
  // The chain moves on while the pre-executor is down.
  node_.produce_block({txs_[5]});

  const auto rec = Recovery::replay(fs);
  SimFs fs2;
  DurableStore store2(fs2, DurableConfig{});
  store2.adopt(rec);
  service::PreExecutionEngine engine(node_, make_config(&store2));
  ASSERT_EQ(engine.warm_restart(rec), Status::kOk);
  // Warm restart delta-synced to the new head and the invariant holds.
  EXPECT_EQ(engine.pinned_header().state_root, node_.head().state_root);
  EXPECT_LE(engine.epoch_registry().max_page_epoch(),
            engine.epoch_registry().store_epoch());
  engine.start();
  const auto admission = engine.submit({txs_[0]});
  EXPECT_EQ(admission.bundle_id, 4u);  // numbering continues across the crash
  const auto outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, Status::kOk);
  EXPECT_EQ(engine.snapshot().warm_restarts, 1u);
}

TEST_F(DurableEngineTest, ResubmitReplaysPendingBundleSemanticallyIdentical) {
  // Baseline: what the bundle produces with no crash anywhere.
  service::SessionOutcome baseline;
  {
    service::PreExecutionEngine engine(node_, make_config(nullptr));
    ASSERT_EQ(engine.synchronize(), Status::kOk);
    engine.start();
    engine.submit({txs_[1]});
    baseline = engine.drain()[0];
  }
  // Crashed run: the bundle was admitted durably but never resolved.
  SimFs fs;
  DurableStore store(fs, DurableConfig{});
  {
    service::PreExecutionEngine engine(node_, make_config(&store));
    ASSERT_EQ(engine.synchronize(), Status::kOk);
    store.log_bundle_admitted(0);  // admitted; power died before execution
  }
  const auto rec = Recovery::replay(fs);
  ASSERT_TRUE(rec.image.pending_bundles.contains(0));

  SimFs fs2;
  DurableStore store2(fs2, DurableConfig{});
  store2.adopt(rec);
  service::PreExecutionEngine engine(node_, make_config(&store2));
  ASSERT_EQ(engine.warm_restart(rec), Status::kOk);
  engine.start();
  engine.resubmit(0, {txs_[1]}, /*attempt=*/1);
  const auto outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].attempt, 1u);
  EXPECT_TRUE(service::outcomes_semantically_identical(outcomes[0], baseline));
  EXPECT_EQ(engine.snapshot().bundles_readmitted, 1u);
  // The re-admission resolved durably on the new store.
  const auto rec2 = Recovery::replay(fs2);
  EXPECT_FALSE(rec2.image.pending_bundles.contains(0));
}

}  // namespace
}  // namespace hardtape::durability
