// Hypervisor tests: attestation chain (A1), message-layer hardening (A3),
// ORAM key sharing, and the pagewise code prefetcher (A7 timing channel).
#include <gtest/gtest.h>

#include "hypervisor/hypervisor.hpp"
#include "hypervisor/prefetch.hpp"

namespace hardtape::hypervisor {
namespace {

BytesView sv(const char* s) {
  return BytesView{reinterpret_cast<const uint8_t*>(s), std::strlen(s)};
}

class AttestationTest : public ::testing::Test {
 protected:
  AttestationTest()
      : manufacturer_(42),
        hypervisor_(Bytes{1, 2, 3, 4}, manufacturer_, sv("sbl"), sv("fw"), sv("bits"), 7),
        user_key_(crypto::PrivateKey::from_seed(sv("user"))) {}

  Manufacturer manufacturer_;
  Hypervisor hypervisor_;
  crypto::PrivateKey user_key_;
};

TEST_F(AttestationTest, ValidReportAccepted) {
  H256 nonce = crypto::keccak256("fresh nonce");
  const auto session = hypervisor_.begin_session(nonce, user_key_.public_key());
  EXPECT_TRUE(verify_attestation(manufacturer_.root_public_key(),
                                 hypervisor_.firmware_measurement(), nonce,
                                 session.report));
}

TEST_F(AttestationTest, FakePreExecutorRejected) {
  // A1: an SP without a manufacturer-provisioned device cannot fake a report.
  const H256 nonce = crypto::keccak256("n");
  const auto session = hypervisor_.begin_session(nonce, user_key_.public_key());

  // Forged certificate (self-signed by a different "manufacturer").
  Manufacturer evil(666);
  AttestationReport forged = session.report;
  const crypto::PrivateKey evil_device = crypto::PrivateKey::from_seed(sv("evil"));
  forged.certificate = evil.provision(evil_device.public_key());
  forged.signature = evil_device.sign(forged.body_hash());
  EXPECT_FALSE(verify_attestation(manufacturer_.root_public_key(),
                                  hypervisor_.firmware_measurement(), nonce, forged));
}

TEST_F(AttestationTest, WrongFirmwareRejected) {
  // A modified hypervisor binary changes the measurement.
  Hypervisor tampered(Bytes{1, 2, 3, 4}, manufacturer_, sv("sbl"), sv("fw-evil"),
                      sv("bits"), 7);
  const H256 nonce = crypto::keccak256("n");
  const auto session = tampered.begin_session(nonce, user_key_.public_key());
  EXPECT_FALSE(verify_attestation(manufacturer_.root_public_key(),
                                  hypervisor_.firmware_measurement(),  // expected good fw
                                  nonce, session.report));
}

TEST_F(AttestationTest, ReplayRejected) {
  const H256 nonce1 = crypto::keccak256("nonce1");
  const auto session = hypervisor_.begin_session(nonce1, user_key_.public_key());
  // Replaying the old report against a new nonce fails.
  const H256 nonce2 = crypto::keccak256("nonce2");
  EXPECT_FALSE(verify_attestation(manufacturer_.root_public_key(),
                                  hypervisor_.firmware_measurement(), nonce2,
                                  session.report));
}

TEST_F(AttestationTest, TamperedReportBodyRejected) {
  const H256 nonce = crypto::keccak256("n");
  auto session = hypervisor_.begin_session(nonce, user_key_.public_key());
  session.report.session_public = user_key_.public_key();  // MITM key swap
  EXPECT_FALSE(verify_attestation(manufacturer_.root_public_key(),
                                  hypervisor_.firmware_measurement(), nonce,
                                  session.report));
}

TEST_F(AttestationTest, SessionChannelAgrees) {
  const H256 nonce = crypto::keccak256("n");
  const auto session = hypervisor_.begin_session(nonce, user_key_.public_key());
  // The user derives the same key from the report's session public key.
  SecureChannel user_channel(user_key_, session.report.session_public);
  SecureChannel& hyp_channel = hypervisor_.channel(session.session_id);
  EXPECT_EQ(user_channel.key(), hyp_channel.key());

  const Bytes body = {1, 2, 3};
  const SecureMessage msg = user_channel.seal(MessageType::kBundleSubmit, 0, body);
  const auto open = hyp_channel.open(msg, 1024, 1024);
  EXPECT_EQ(open.status, Status::kOk);
  EXPECT_EQ(open.body, body);
  hypervisor_.end_session(session.session_id);
  EXPECT_THROW(hypervisor_.channel(session.session_id), UsageError);
}

// --- message layer (A3) ---

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : alice_(shared_key()), bob_(shared_key()) {}
  static crypto::AesKey128 shared_key() {
    crypto::AesKey128 k{};
    k[0] = 0x77;
    return k;
  }
  SecureChannel alice_;
  SecureChannel bob_;
};

TEST_F(ChannelTest, HeaderRoundTrip) {
  MessageHeader header;
  header.type = MessageType::kTraceReport;
  header.sequence = 9;
  header.target_offset = 0x1000;
  header.body_length = 77;
  const auto raw = header.serialize();
  const auto parsed = MessageHeader::parse(BytesView{raw.data(), raw.size()});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, MessageType::kTraceReport);
  EXPECT_EQ(parsed->sequence, 9u);
  EXPECT_EQ(parsed->target_offset, 0x1000u);
  EXPECT_EQ(parsed->body_length, 77u);
}

TEST_F(ChannelTest, MalformedHeadersRejected) {
  MessageHeader good;
  auto raw = good.serialize();
  // Bad magic.
  auto bad_magic = raw;
  bad_magic[24] ^= 1;
  EXPECT_FALSE(MessageHeader::parse(BytesView{bad_magic.data(), bad_magic.size()}).has_value());
  // Unknown type.
  auto bad_type = raw;
  bad_type[0] = 0x99;
  EXPECT_FALSE(MessageHeader::parse(BytesView{bad_type.data(), bad_type.size()}).has_value());
  // Reserved bits set.
  auto bad_reserved = raw;
  bad_reserved[2] = 1;
  EXPECT_FALSE(MessageHeader::parse(BytesView{bad_reserved.data(), bad_reserved.size()}).has_value());
  // Wrong size entirely.
  EXPECT_FALSE(MessageHeader::parse(Bytes(31, 0)).has_value());
}

TEST_F(ChannelTest, OversizedBodyRejectedBeforeDecryption) {
  const Bytes body(4096, 0xab);
  const SecureMessage msg = alice_.seal(MessageType::kBundleSubmit, 0, body);
  // The Hypervisor enforces its buffer bound from the header alone.
  EXPECT_EQ(bob_.open(msg, /*max_body_length=*/1024, 1024).status,
            Status::kMalformedMessage);
}

TEST_F(ChannelTest, BadTargetOffsetRejected) {
  const SecureMessage msg = alice_.seal(MessageType::kBundleSubmit, 1 << 20, Bytes{1});
  EXPECT_EQ(bob_.open(msg, 1024, /*max_target_offset=*/1024).status,
            Status::kMalformedMessage);
}

TEST_F(ChannelTest, LengthFieldMustMatchCiphertext) {
  SecureMessage msg = alice_.seal(MessageType::kBundleSubmit, 0, Bytes{1, 2, 3});
  msg.ciphertext.push_back(0);  // smuggle an extra byte past the header
  EXPECT_EQ(bob_.open(msg, 1024, 1024).status, Status::kMalformedMessage);
}

TEST_F(ChannelTest, TamperedCiphertextRejected) {
  SecureMessage msg = alice_.seal(MessageType::kBundleSubmit, 0, Bytes{1, 2, 3});
  msg.ciphertext[0] ^= 1;
  EXPECT_EQ(bob_.open(msg, 1024, 1024).status, Status::kAuthFailed);
}

TEST_F(ChannelTest, HeaderIsAuthenticated) {
  // Swapping the header of a valid message breaks the AAD binding.
  SecureMessage msg = alice_.seal(MessageType::kBundleSubmit, 0, Bytes{1, 2, 3});
  MessageHeader other;
  other.type = MessageType::kTraceReport;
  other.body_length = 3;
  msg.header = other.serialize();
  EXPECT_EQ(bob_.open(msg, 1024, 1024).status, Status::kAuthFailed);
}

// Regression: a frame that fails authentication must NOT advance the
// receive sequence. If it did, an attacker who injects one garbage frame
// would desynchronize the channel and censor the next genuine message —
// a denial of service the sequence check exists to prevent, not enable.
TEST_F(ChannelTest, AuthFailureDoesNotAdvanceSequence) {
  const SecureMessage genuine = alice_.seal(MessageType::kBundleSubmit, 0, Bytes{1, 2, 3});
  SecureMessage tampered = genuine;
  tampered.ciphertext[0] ^= 1;
  EXPECT_EQ(bob_.open(tampered, 1024, 1024).status, Status::kAuthFailed);
  // The genuine frame carries the same sequence number and must still land.
  const auto open = bob_.open(genuine, 1024, 1024);
  EXPECT_EQ(open.status, Status::kOk);
  EXPECT_EQ(open.body, (Bytes{1, 2, 3}));
}

// Same property for a frame rejected before decryption (oversized body):
// pre-crypto rejections must not consume sequence numbers either.
TEST_F(ChannelTest, MalformedFrameDoesNotAdvanceSequence) {
  const SecureMessage genuine = alice_.seal(MessageType::kBundleSubmit, 0, Bytes{7});
  const SecureMessage oversized = alice_.seal(MessageType::kBundleSubmit, 0, Bytes(4096, 0xab));
  EXPECT_EQ(bob_.open(oversized, /*max_body_length=*/1024, 1024).status,
            Status::kMalformedMessage);
  EXPECT_EQ(bob_.open(genuine, 1024, 1024).status, Status::kOk);
}

TEST_F(ChannelTest, ReplayRejectedBySequence) {
  const SecureMessage msg = alice_.seal(MessageType::kBundleSubmit, 0, Bytes{1});
  EXPECT_EQ(bob_.open(msg, 1024, 1024).status, Status::kOk);
  EXPECT_EQ(bob_.open(msg, 1024, 1024).status, Status::kRejected);  // replayed
}

TEST_F(ChannelTest, WrongKeyCannotRead) {
  crypto::AesKey128 other{};
  other[0] = 0x88;
  SecureChannel eve{other};
  const SecureMessage msg = alice_.seal(MessageType::kBundleSubmit, 0, Bytes{1});
  EXPECT_EQ(eve.open(msg, 1024, 1024).status, Status::kAuthFailed);
}

// --- hypervisor memory + ORAM key management ---

TEST_F(AttestationTest, MemoryBudgetHolds) {
  hypervisor_.begin_session(crypto::keccak256("n"), user_key_.public_key());
  EXPECT_EQ(hypervisor_.binary_kb(), 156u);
  EXPECT_EQ(hypervisor_.peak_stack_kb(), 92u);
  EXPECT_TRUE(hypervisor_.fits_onchip_memory());
}

TEST_F(AttestationTest, OramKeyGenerationIsStable) {
  const auto& key1 = hypervisor_.generate_oram_key();
  const auto& key2 = hypervisor_.generate_oram_key();
  EXPECT_EQ(key1, key2);
  EXPECT_TRUE(hypervisor_.has_oram_key());
}

TEST_F(AttestationTest, OramKeySharedBetweenDevices) {
  hypervisor_.generate_oram_key();
  Hypervisor second(Bytes{9, 9, 9}, manufacturer_, sv("sbl"), sv("fw"), sv("bits"), 8);
  EXPECT_FALSE(second.has_oram_key());
  ASSERT_EQ(Hypervisor::share_oram_key(hypervisor_, second), Status::kOk);
  EXPECT_EQ(second.oram_key(), hypervisor_.oram_key());
  // Sharing from a device without a key fails.
  Hypervisor third(Bytes{1}, manufacturer_, sv("sbl"), sv("fw"), sv("bits"), 9);
  Hypervisor fourth(Bytes{2}, manufacturer_, sv("sbl"), sv("fw"), sv("bits"), 10);
  EXPECT_EQ(Hypervisor::share_oram_key(third, fourth), Status::kRejected);
}

// --- code prefetcher ---

TEST(Prefetcher, PreservesKvInstantsAndCounts) {
  std::vector<QueryEvent> demand;
  // 5 KV queries at 1ms spacing with an 8-page code burst at t=2ms.
  for (int i = 0; i < 5; ++i) {
    demand.push_back({uint64_t(i + 1) * 1'000'000, oram::PageType::kStorageGroup, false});
  }
  for (int i = 0; i < 8; ++i) {
    demand.insert(demand.begin() + 2, {2'000'000, oram::PageType::kCode, false});
  }
  std::sort(demand.begin(), demand.end(),
            [](const auto& a, const auto& b) { return a.time_ns < b.time_ns; });

  CodePrefetcher prefetcher(3);
  const auto observed = prefetcher.schedule(demand);
  ASSERT_EQ(observed.size(), demand.size());  // nothing lost
  int code_count = 0;
  for (const auto& event : observed) {
    if (event.type == oram::PageType::kCode) ++code_count;
  }
  EXPECT_EQ(code_count, 8);
  // Timeline is sorted.
  for (size_t i = 1; i < observed.size(); ++i) {
    EXPECT_GE(observed[i].time_ns, observed[i - 1].time_ns);
  }
}

TEST(Prefetcher, SmoothsCodeBursts) {
  // A worst-case burst: 20 code pages at the same instant in a stream of
  // K-V queries. Without prefetching the adversary sees ~20 back-to-back
  // queries (near-zero gaps) — a code-fetch fingerprint. With pagewise
  // prefetching the burst is dissolved onto randomized timers.
  std::vector<QueryEvent> demand;
  for (int i = 1; i <= 30; ++i) {
    demand.push_back({uint64_t(i) * 1'000'000, oram::PageType::kStorageGroup, false});
  }
  for (int i = 0; i < 20; ++i) {
    demand.push_back({2'000'001, oram::PageType::kCode, false});
  }
  std::sort(demand.begin(), demand.end(),
            [](const auto& a, const auto& b) { return a.time_ns < b.time_ns; });

  auto near_zero_gaps = [](const std::vector<QueryEvent>& timeline) {
    int count = 0;
    for (size_t i = 1; i < timeline.size(); ++i) {
      if (timeline[i].time_ns - timeline[i - 1].time_ns < 10'000) ++count;
    }
    return count;
  };
  const int before = near_zero_gaps(demand);
  CodePrefetcher prefetcher(5);
  const auto observed = prefetcher.schedule(demand);
  const int after = near_zero_gaps(observed);
  EXPECT_GE(before, 19);       // the burst is plainly visible in the demand
  EXPECT_LT(after, before / 3);  // and dissolved in the observed timeline
  ASSERT_EQ(observed.size(), demand.size());
}

TEST(Prefetcher, GapStatsBasics) {
  EXPECT_EQ(gap_stats({}).mean_ns, 0);
  std::vector<QueryEvent> uniform;
  for (int i = 0; i < 10; ++i) uniform.push_back({uint64_t(i) * 100, {}, false});
  const GapStats stats = gap_stats(uniform);
  EXPECT_DOUBLE_EQ(stats.mean_ns, 100.0);
  EXPECT_DOUBLE_EQ(stats.stddev_ns, 0.0);
}

}  // namespace
}  // namespace hardtape::hypervisor
