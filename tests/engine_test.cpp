// Concurrency tests of the multi-session pre-execution engine: determinism
// against the serial reference, bounded-queue backpressure, ORAM frontend
// serialization/coalescing, and the engine metrics. This binary is the
// target of the CI TSan job — every assertion here must also be data-race
// free under -DHARDTAPE_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "service/engine.hpp"
#include "workload/generator.hpp"

namespace hardtape::service {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    gen_.deploy(node_.world());
    node_.produce_block({});
  }

  EngineConfig make_config(SecurityConfig security, int workers, size_t queue_depth = 16) {
    EngineConfig config;
    config.security = security;
    config.num_hevms = workers;
    config.queue_depth = queue_depth;
    config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
    config.seal_mode = oram::SealMode::kChaChaHmac;
    config.perform_channel_crypto = false;
    return config;
  }

  /// A mixed bundle: ERC-20 transfer + a deeper router chain, varied by id
  /// so bundles are not all identical.
  std::vector<evm::Transaction> mixed_bundle(uint64_t id) {
    const auto& users = gen_.users();
    evm::Transaction transfer;
    transfer.from = users[id % users.size()];
    transfer.to = gen_.tokens()[id % gen_.tokens().size()];
    transfer.data = workload::erc20_transfer(users[(id + 1) % users.size()],
                                             u256{10 + id % 7});
    transfer.gas_limit = 500'000;
    if (id % 3 != 0) return {transfer};
    evm::Transaction route;
    route.from = users[(id + 2) % users.size()];
    route.to = gen_.routers()[id % gen_.routers().size()];
    route.data = workload::router_route(2 + id % 3, gen_.tokens()[0],
                                        users[(id + 3) % users.size()], u256{5});
    route.gas_limit = 5'000'000;
    return {transfer, route};
  }

  std::vector<std::vector<evm::Transaction>> make_bundles(size_t count) {
    std::vector<std::vector<evm::Transaction>> bundles;
    bundles.reserve(count);
    for (size_t i = 0; i < count; ++i) bundles.push_back(mixed_bundle(i));
    return bundles;
  }

  node::NodeSimulator node_;
  workload::WorkloadGenerator gen_{workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 2}};
};

// The tentpole stress test: 8 workers x 64 bundles through the full security
// configuration (real ORAM crypto), with every outcome bit-identical to the
// serial reference — concurrency must never change what a session computes.
TEST_F(EngineTest, EightWorkersSixtyFourBundlesBitIdenticalToSerial) {
  const auto bundles = make_bundles(64);

  PreExecutionEngine serial(node_, make_config(SecurityConfig::full(), 1));
  ASSERT_EQ(serial.synchronize(), Status::kOk);
  const auto reference = serial.execute_serial(bundles);
  ASSERT_EQ(reference.size(), bundles.size());

  PreExecutionEngine engine(node_, make_config(SecurityConfig::full(), 8));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  engine.start();
  for (const auto& bundle : bundles) engine.submit(bundle);
  const auto outcomes = engine.drain();

  ASSERT_EQ(outcomes.size(), reference.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes_bit_identical(outcomes[i], reference[i]))
        << "bundle " << i << " diverged from serial execution";
    EXPECT_EQ(outcomes[i].status, Status::kOk);
  }
  // The work actually spread across the pool.
  const auto metrics = engine.snapshot();
  ASSERT_EQ(metrics.workers.size(), 8u);
  uint64_t total = 0;
  int workers_used = 0;
  for (const auto& w : metrics.workers) {
    total += w.bundles;
    if (w.bundles > 0) ++workers_used;
  }
  EXPECT_EQ(total, bundles.size());
  EXPECT_GT(workers_used, 1);
}

// Determinism must also hold with read coalescing enabled: merging duplicate
// in-flight fetches changes the access stream, never the data.
TEST_F(EngineTest, CoalescingKeepsOutcomesBitIdentical) {
  const auto bundles = make_bundles(24);

  PreExecutionEngine serial(node_, make_config(SecurityConfig::full(), 1));
  ASSERT_EQ(serial.synchronize(), Status::kOk);
  const auto reference = serial.execute_serial(bundles);

  auto config = make_config(SecurityConfig::full(), 8);
  config.coalesce_duplicate_reads = true;
  PreExecutionEngine engine(node_, config);
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  engine.start();
  for (const auto& bundle : bundles) engine.submit(bundle);
  const auto outcomes = engine.drain();

  ASSERT_EQ(outcomes.size(), reference.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes_bit_identical(outcomes[i], reference[i])) << "bundle " << i;
  }
}

// Backpressure: 8 producer threads race 64 bundles into a 2-slot queue
// consumed by 2 workers. Nothing may be dropped; producers must block.
TEST_F(EngineTest, BoundedQueueAppliesBackpressureWithoutDropping) {
  constexpr size_t kProducers = 8;
  constexpr size_t kPerProducer = 8;
  PreExecutionEngine engine(node_, make_config(SecurityConfig::raw(), 2,
                                               /*queue_depth=*/2));
  engine.start();

  std::vector<std::thread> producers;
  std::atomic<uint64_t> submitted{0};
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        engine.submit(mixed_bundle(p * kPerProducer + i));
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  const auto outcomes = engine.drain();

  EXPECT_EQ(submitted.load(), kProducers * kPerProducer);
  EXPECT_EQ(outcomes.size(), kProducers * kPerProducer);  // no drops
  // Every submitted id came back exactly once.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].bundle_id, i);
  }
  const auto metrics = engine.snapshot();
  EXPECT_LE(metrics.queue_max_depth, 2u);          // bound held
  EXPECT_GT(metrics.backpressured_submits, 0u);    // producers did block
  EXPECT_GT(metrics.wall_backpressure_ns, 0u);
}

TEST_F(EngineTest, SubmitBeforeStartThrows) {
  PreExecutionEngine engine(node_, make_config(SecurityConfig::raw(), 2));
  EXPECT_THROW(engine.submit(mixed_bundle(0)), UsageError);
}

TEST_F(EngineTest, PerSessionTimingClockRejected) {
  auto config = make_config(SecurityConfig::raw(), 1);
  sim::SimClock clock;
  config.timing.clock = &clock;
  EXPECT_THROW(PreExecutionEngine(node_, config), UsageError);
}

// The deterministic engine timeline: 4 HEVMs must clear the mixed workload
// at >= 2x the single-HEVM bundle rate (acceptance criterion; the ORAM
// serialization point costs ~1% per access, far from the bottleneck here).
TEST_F(EngineTest, FourWorkersAtLeastTwiceSerialSimThroughput) {
  const auto bundles = make_bundles(16);

  auto run = [&](int workers) {
    PreExecutionEngine engine(node_, make_config(SecurityConfig::full(), workers));
    EXPECT_EQ(engine.synchronize(), Status::kOk);
    engine.start();
    for (const auto& bundle : bundles) engine.submit(bundle);
    engine.drain();
    return engine.snapshot();
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_GT(one.sim_bundles_per_s, 0.0);
  EXPECT_GE(four.sim_bundles_per_s, 2.0 * one.sim_bundles_per_s)
      << "4 workers: " << four.sim_bundles_per_s
      << " bundles/s vs 1 worker: " << one.sim_bundles_per_s;
  // With equal work and zero arrival gap, 1 worker serializes everything.
  EXPECT_GT(one.sim_mean_queue_wait_ns, four.sim_mean_queue_wait_ns);
}

TEST_F(EngineTest, MetricsSnapshotIsCoherent) {
  const auto bundles = make_bundles(12);
  PreExecutionEngine engine(node_, make_config(SecurityConfig::full(), 4));
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  engine.start();
  for (const auto& bundle : bundles) engine.submit(bundle);
  engine.drain();

  const auto m = engine.snapshot();
  EXPECT_EQ(m.bundles_submitted, bundles.size());
  EXPECT_EQ(m.bundles_completed, bundles.size());
  EXPECT_GT(m.sim_makespan_ns, 0u);
  EXPECT_GT(m.sim_bundles_per_s, 0.0);
  EXPECT_GT(m.wall_elapsed_ns, 0u);
  EXPECT_GT(m.oram_reads, 0u);  // -full routes queries through the frontend
  // Busy time is clamped by the shard pool: S independent subtree pipelines
  // split the per-query service time (see engine.cpp snapshot()).
  EXPECT_EQ(m.sim_oram_server_busy_ns,
            25'000u * [&] {
              uint64_t queries = 0;
              for (const auto& o : engine.drain()) queries += o.query_stats.oram_queries;
              return queries;
            }() / m.oram_shard_count);
  ASSERT_EQ(m.workers.size(), 4u);
  uint64_t busy = 0;
  for (const auto& w : m.workers) {
    EXPECT_LE(w.utilization, 1.0 + 1e-9);
    busy += w.busy_sim_ns;
  }
  EXPECT_GT(busy, 0u);
}

// ---------------------------------------------------------------------------
// Live-chain staleness policy (PR 4): snapshot pinning, auto re-sync,
// reorg-triggered re-execution, and the kStale budget.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, OutcomesPinnedToSnapshotDespiteChainAdvance) {
  const auto bundles = make_bundles(6);

  // Reference against the static chain, computed before anything moves.
  PreExecutionEngine ref(node_, make_config(SecurityConfig::full(), 1));
  ASSERT_EQ(ref.synchronize(), Status::kOk);
  const auto reference = ref.execute_serial(bundles);

  // A huge lag budget means the engine never re-pins: even though the node
  // keeps producing state-changing blocks mid-run, every session reads the
  // pinned snapshot and outcomes stay bit-identical to the static chain.
  auto config = make_config(SecurityConfig::full(), 4);
  config.max_head_lag = 1'000'000;
  PreExecutionEngine engine(node_, config);
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  const H256 pinned = engine.pinned_header().state_root;
  engine.start();
  const auto& users = gen_.users();
  for (size_t i = 0; i < bundles.size(); ++i) {
    engine.submit(bundles[i]);
    evm::Transaction tx;
    tx.from = users[i % users.size()];
    tx.to = users[(i + 1) % users.size()];
    tx.value = u256{1 + i};
    tx.gas_limit = 30'000;
    node_.produce_block({tx});
  }
  const auto outcomes = engine.drain();

  ASSERT_EQ(outcomes.size(), reference.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes_bit_identical(outcomes[i], reference[i])) << "bundle " << i;
    EXPECT_EQ(outcomes[i].state_root, pinned);
    EXPECT_EQ(outcomes[i].epoch, 0u);
  }
  EXPECT_GT(node_.head_number(), 1u);
}

TEST_F(EngineTest, AutoResyncAtAdmissionTracksHead) {
  auto config = make_config(SecurityConfig::full(), 2);
  config.max_head_lag = 0;  // any lag re-pins at the next admission
  PreExecutionEngine engine(node_, config);
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  engine.start();
  engine.submit(mixed_bundle(0));

  const auto& users = gen_.users();
  evm::Transaction tx;
  tx.from = users[0];
  tx.to = users[1];
  tx.value = u256{5};
  tx.gas_limit = 30'000;
  node_.produce_block({tx});

  engine.submit(mixed_bundle(1));
  const auto outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), 2u);
  // Bundle 0 ran at the original pin; bundle 1's admission saw the lag,
  // delta-synced and ran at the new head. Bundle 0's root is still
  // canonical (plain extension, no reorg), so its outcome stands.
  EXPECT_EQ(outcomes[0].epoch, 0u);
  EXPECT_EQ(outcomes[0].resim, 0u);
  EXPECT_EQ(outcomes[0].status, Status::kOk);
  EXPECT_EQ(outcomes[1].epoch, 1u);
  EXPECT_EQ(outcomes[1].status, Status::kOk);
  EXPECT_EQ(outcomes[1].state_root, node_.head().state_root);
  const auto metrics = engine.snapshot();
  EXPECT_GE(metrics.resyncs, 1u);
  EXPECT_EQ(metrics.store_epoch, 1u);
  EXPECT_EQ(metrics.bundle_resims, 0u);
}

TEST_F(EngineTest, ReorgResimulatesOutcomeAgainstNewCanonicalRoot) {
  // Give the pinned block a unique root (a state-changing transaction), so
  // orphaning it really abandons the root the outcome ran against.
  const auto& users = gen_.users();
  evm::Transaction tx0;
  tx0.from = users[0];
  tx0.to = users[1];
  tx0.value = u256{123};
  tx0.gas_limit = 30'000;
  node_.produce_block({tx0});

  auto config = make_config(SecurityConfig::full(), 2);
  config.breaker_threshold = 0;
  PreExecutionEngine engine(node_, config);
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  const H256 pinned = engine.pinned_header().state_root;
  engine.start();
  engine.submit(mixed_bundle(0));

  node_.set_schedule({.seed = 11, .reorg_rate = 1.0, .max_reorg_depth = 1});
  evm::Transaction tx1 = tx0;
  tx1.value = u256{456};  // the sibling fork commits a different state
  const auto tick = node_.tick({tx1});
  ASSERT_TRUE(tick.reorged);
  ASSERT_FALSE(node_.is_canonical_root(pinned));

  ASSERT_EQ(engine.resync(), Status::kOk);
  const auto outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  // Exactly one outcome, re-executed: same bundle, new canonical root.
  EXPECT_EQ(outcomes[0].status, Status::kOk);
  EXPECT_EQ(outcomes[0].resim, 1u);
  EXPECT_EQ(outcomes[0].state_root, node_.head().state_root);
  EXPECT_TRUE(node_.is_canonical_root(outcomes[0].state_root));
  const auto metrics = engine.snapshot();
  EXPECT_EQ(metrics.bundle_resims, 1u);
  EXPECT_GE(metrics.resyncs, 1u);
  EXPECT_EQ(engine.pinned_epoch(), 1u);
}

TEST_F(EngineTest, ResimBudgetExhaustionResolvesStale) {
  const auto& users = gen_.users();
  evm::Transaction tx0;
  tx0.from = users[0];
  tx0.to = users[1];
  tx0.value = u256{123};
  tx0.gas_limit = 30'000;
  node_.produce_block({tx0});

  auto config = make_config(SecurityConfig::full(), 2);
  config.breaker_threshold = 0;
  config.max_resim_attempts = 0;  // no budget: orphaned -> kStale at once
  PreExecutionEngine engine(node_, config);
  ASSERT_EQ(engine.synchronize(), Status::kOk);
  engine.start();
  engine.submit(mixed_bundle(0));

  node_.set_schedule({.seed = 11, .reorg_rate = 1.0, .max_reorg_depth = 1});
  evm::Transaction tx1 = tx0;
  tx1.value = u256{456};
  ASSERT_TRUE(node_.tick({tx1}).reorged);
  ASSERT_EQ(engine.resync(), Status::kOk);

  const auto outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  // Fail closed: no traces from the orphaned execution surface, and the
  // refusal carries no state root (it ran against nothing reportable).
  EXPECT_EQ(outcomes[0].status, Status::kStale);
  EXPECT_EQ(outcomes[0].state_root, H256{});
  EXPECT_EQ(outcomes[0].resim, 1u);
  EXPECT_EQ(outcomes[0].report.transactions.size(), 0u);
  const auto metrics = engine.snapshot();
  EXPECT_EQ(metrics.bundles_stale, 1u);
  EXPECT_EQ(metrics.bundle_resims, 0u);
}

TEST_F(EngineTest, LiveChainOutcomesIdenticalAcrossWorkerCounts) {
  // A compact version of bench_soak's determinism invariant: a seeded
  // interleaving of submits, ticks (with reorgs) and auto re-syncs must
  // resolve every bundle bit-identically at 1 and 8 workers.
  const workload::GeneratorConfig gcfg{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 2};
  auto run = [&](int workers) {
    node::NodeSimulator node;
    workload::WorkloadGenerator gen(gcfg);
    gen.deploy(node.world());
    node.produce_block({});
    node.set_schedule({.seed = 99, .reorg_rate = 0.4, .max_reorg_depth = 2});

    auto config = make_config(SecurityConfig::full(), workers);
    config.max_head_lag = 0;
    config.breaker_threshold = 0;
    PreExecutionEngine engine(node, config);
    EXPECT_EQ(engine.synchronize(), Status::kOk);
    engine.start();
    const auto& users = gen.users();
    const auto& tokens = gen.tokens();
    for (uint64_t i = 0; i < 18; ++i) {
      evm::Transaction tx;
      tx.from = users[i % users.size()];
      tx.to = tokens[i % tokens.size()];
      tx.data = workload::erc20_transfer(users[(i + 1) % users.size()], u256{1 + i % 5});
      tx.gas_limit = 500'000;
      engine.submit({tx});
      if (i % 3 == 2) {
        evm::Transaction block_tx;
        block_tx.from = users[(i + 2) % users.size()];
        block_tx.to = tokens[(i + 1) % tokens.size()];
        block_tx.data = workload::erc20_transfer(users[i % users.size()], u256{2});
        block_tx.gas_limit = 500'000;
        node.tick({block_tx});
      }
    }
    EXPECT_EQ(engine.resync(), Status::kOk);  // settle any late orphans
    return engine.drain();
  };
  const auto one = run(1);
  const auto eight = run(8);
  ASSERT_EQ(one.size(), eight.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(outcomes_bit_identical(one[i], eight[i])) << "bundle " << i;
  }
}

// ---------------------------------------------------------------------------
// OramFrontend unit tests (against a controllable fake backend)
// ---------------------------------------------------------------------------

/// Fake backend that records concurrent entries (serialization check) and
/// can be slowed to force read overlap (coalescing check).
class ProbeStore : public oram::OramAccessor {
 public:
  explicit ProbeStore(std::chrono::milliseconds delay = {}) : delay_(delay) {}

  std::optional<Bytes> read(const oram::BlockId& id) override {
    if (in_backend_.exchange(true)) overlap_detected_ = true;
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    reads_.fetch_add(1, std::memory_order_relaxed);
    in_backend_.store(false);
    return Bytes{static_cast<uint8_t>(id.as_u64() & 0xff), 0x5a};
  }
  void write(const oram::BlockId&, BytesView) override {
    if (in_backend_.exchange(true)) overlap_detected_ = true;
    writes_.fetch_add(1, std::memory_order_relaxed);
    in_backend_.store(false);
  }

  uint64_t reads() const { return reads_.load(); }
  uint64_t writes() const { return writes_.load(); }
  bool overlap_detected() const { return overlap_detected_.load(); }

 private:
  std::chrono::milliseconds delay_;
  std::atomic<bool> in_backend_{false};
  std::atomic<bool> overlap_detected_{false};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
};

TEST(OramFrontendTest, SerializesBackendAccesses) {
  ProbeStore store;
  oram::OramFrontend frontend(store);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        frontend.read(oram::BlockId{static_cast<uint64_t>(t * 1000 + i)});
        frontend.write(oram::BlockId{static_cast<uint64_t>(t * 1000 + i)}, Bytes{1});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(store.overlap_detected());  // strictly sequential server trace
  EXPECT_EQ(store.reads(), 8u * 50u);
  EXPECT_EQ(store.writes(), 8u * 50u);
  const auto stats = frontend.snapshot();
  EXPECT_EQ(stats.reads, 8u * 50u);
  EXPECT_EQ(stats.writes, 8u * 50u);
  EXPECT_EQ(stats.coalesced_reads, 0u);  // coalescing off by default
}

TEST(OramFrontendTest, CoalescesConcurrentDuplicateReads) {
  ProbeStore store(std::chrono::milliseconds(20));
  oram::OramFrontend frontend(store, {.coalesce_duplicate_reads = true});
  const oram::BlockId hot{42};

  std::vector<std::thread> threads;
  std::vector<std::optional<Bytes>> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] { results[t] = frontend.read(hot); });
  }
  for (auto& t : threads) t.join();

  // All readers see the same page, and at least some rode an in-flight twin.
  for (const auto& r : results) {
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, *results[0]);
  }
  const auto stats = frontend.snapshot();
  EXPECT_EQ(stats.reads + stats.coalesced_reads, 8u);
  EXPECT_GT(stats.coalesced_reads, 0u);
  EXPECT_LT(store.reads(), 8u);
}

TEST(OramFrontendTest, DistinctReadsAreNeverCoalesced) {
  ProbeStore store;
  oram::OramFrontend frontend(store, {.coalesce_duplicate_reads = true});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        frontend.read(oram::BlockId{static_cast<uint64_t>(t * 100 + i)});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.reads(), 4u * 20u);
  EXPECT_EQ(frontend.snapshot().coalesced_reads, 0u);
}

// ---------------------------------------------------------------------------
// OramFrontend concurrent mode (PR 6: sharded backend, per-block gate)
// ---------------------------------------------------------------------------

/// Fake backend whose read() parks callers until `expected` of them are
/// inside simultaneously (or a timeout passes). peak() is the proof: 2 means
/// two requests genuinely overlapped in the backend, 1 means something above
/// serialized them.
class RendezvousStore : public oram::OramAccessor {
 public:
  RendezvousStore(int expected, std::chrono::milliseconds timeout)
      : expected_(expected), timeout_(timeout) {}

  std::optional<Bytes> read(const oram::BlockId&) override {
    std::unique_lock lock(mu_);
    ++inside_;
    peak_ = std::max(peak_, inside_);
    cv_.notify_all();
    cv_.wait_for(lock, timeout_, [&] { return peak_ >= expected_; });
    --inside_;
    return Bytes{0x5a};
  }
  void write(const oram::BlockId&, BytesView) override {}

  int peak() const {
    std::lock_guard lock(mu_);
    return peak_;
  }

 private:
  const int expected_;
  const std::chrono::milliseconds timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inside_ = 0;
  int peak_ = 0;
};

TEST(OramFrontendConcurrentTest, DistinctBlocksOverlapInBackend) {
  // The tentpole property: with a self-locking sharded backend the frontend
  // must NOT serialize globally. Two reads of distinct blocks rendezvous
  // INSIDE the backend — impossible under the historical global queue.
  RendezvousStore store(2, std::chrono::seconds(10));
  oram::OramFrontend frontend(store, {.concurrent_backend = true});
  std::thread a([&] { frontend.read(oram::BlockId{1}); });
  std::thread b([&] { frontend.read(oram::BlockId{2}); });
  a.join();
  b.join();
  EXPECT_EQ(store.peak(), 2);
}

TEST(OramFrontendConcurrentTest, SameBlockNeverOverlapsInBackend) {
  // The per-block gate is correctness, not tuning: an access migrates the
  // block's shard assignment, so a same-id twin must wait. The rendezvous
  // can only time out (short timeout keeps the test fast).
  RendezvousStore store(2, std::chrono::milliseconds(100));
  oram::OramFrontend frontend(store, {.concurrent_backend = true});
  std::thread a([&] { frontend.read(oram::BlockId{7}); });
  std::thread b([&] { frontend.read(oram::BlockId{7}); });
  a.join();
  b.join();
  EXPECT_EQ(store.peak(), 1);
}

/// Fake backend that blocks its first read until released; counts calls.
class LatchedProbeStore : public oram::OramAccessor {
 public:
  std::optional<Bytes> read(const oram::BlockId&) override {
    reads_.fetch_add(1, std::memory_order_relaxed);
    while (!release_()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Bytes{0x5a};
  }
  void write(const oram::BlockId&, BytesView) override {}
  void set_release(std::function<bool()> release) { release_ = std::move(release); }
  uint64_t reads() const { return reads_.load(); }

 private:
  std::function<bool()> release_ = [] { return true; };
  std::atomic<uint64_t> reads_{0};
};

TEST(OramFrontendConcurrentTest, ExactlyOneWalkServesAllWaiters) {
  // Batch dedup, deterministically: the leader's backend read is held open
  // until every other session has registered as a rider, so EXACTLY one
  // tree walk serves all 8 — and every rider sees the leader's bytes.
  LatchedProbeStore store;
  oram::OramFrontend frontend(store,
                              {.coalesce_duplicate_reads = true, .concurrent_backend = true});
  store.set_release([&] { return frontend.snapshot().coalesced_reads >= 7; });

  const oram::BlockId hot{42};
  std::vector<std::thread> threads;
  std::vector<std::optional<Bytes>> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] { results[t] = frontend.read(hot); });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(store.reads(), 1u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, Bytes{0x5a});
  }
  const auto stats = frontend.snapshot();
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.coalesced_reads, 7u);
}

/// Fake backend that fails every access routed to one shard (id % 4 == the
/// victim) with an integrity failure; healthy shards serve normally.
class ShardFaultStore : public oram::OramAccessor {
 public:
  explicit ShardFaultStore(uint64_t victim_shard) : victim_(victim_shard) {}

  oram::AccessAttempt try_read(const oram::BlockId& id) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (id.as_u64() % 4 == victim_) {
      return {Status::kAuthFailed, std::nullopt, 0};
    }
    return {Status::kOk, Bytes{0x5a}, 100};
  }
  oram::AccessAttempt try_write(const oram::BlockId& id, BytesView) override {
    return try_read(id);
  }
  std::optional<Bytes> read(const oram::BlockId& id) override {
    return try_read(id).data;
  }
  void write(const oram::BlockId&, BytesView) override {}
  uint64_t calls() const { return calls_.load(); }

 private:
  const uint64_t victim_;
  std::atomic<uint64_t> calls_{0};
};

TEST(OramFrontendConcurrentTest, BreakerQuarantinesOnlyTheFailingShard) {
  ShardFaultStore store(/*victim_shard=*/2);
  oram::OramFrontend frontend(
      store, {.concurrent_backend = true,
              .shard_count = 4,
              .shard_router = [](const oram::BlockId& id) {
                return static_cast<uint32_t>(id.as_u64() % 4);
              },
              .shard_breaker_threshold = 2});

  // Two integrity failures on shard 2 trip its breaker.
  EXPECT_EQ(frontend.try_read(oram::BlockId{2}).status, Status::kAuthFailed);
  EXPECT_EQ(frontend.try_read(oram::BlockId{6}).status, Status::kAuthFailed);
  const uint64_t calls_at_trip = store.calls();

  // Shard 2 now refuses service WITHOUT touching the backend...
  EXPECT_EQ(frontend.try_read(oram::BlockId{10}).status, Status::kUnavailable);
  EXPECT_EQ(frontend.try_write(oram::BlockId{14}, Bytes{1}).status, Status::kUnavailable);
  EXPECT_EQ(store.calls(), calls_at_trip);

  // ...while every other shard keeps serving.
  for (const uint64_t id : {0u, 1u, 3u, 4u, 5u, 7u}) {
    EXPECT_EQ(frontend.try_read(oram::BlockId{id}).status, Status::kOk) << id;
  }

  const auto stats = frontend.snapshot();
  EXPECT_EQ(stats.shard_failures, (std::vector<uint64_t>{0, 0, 2, 0}));
  EXPECT_EQ(stats.shard_quarantined, (std::vector<uint8_t>{0, 0, 1, 0}));
  EXPECT_EQ(stats.shard_unavailable, 2u);
}

TEST(OramFrontendConcurrentTest, BreakerStreakIsPerShard) {
  // A success on a healthy shard must not reset the victim shard's failure
  // streak: the streaks are independent counters, one per shard.
  ShardFaultStore store(/*victim_shard=*/3);
  oram::OramFrontend frontend(
      store, {.concurrent_backend = true,
              .shard_count = 4,
              .shard_router = [](const oram::BlockId& id) {
                return static_cast<uint32_t>(id.as_u64() % 4);
              },
              .shard_breaker_threshold = 2});
  EXPECT_EQ(frontend.try_read(oram::BlockId{3}).status, Status::kAuthFailed);  // shard 3: streak 1
  EXPECT_EQ(frontend.try_read(oram::BlockId{4}).status, Status::kOk);          // shard 0 success
  EXPECT_EQ(frontend.try_read(oram::BlockId{7}).status, Status::kAuthFailed);  // shard 3: streak 2
  EXPECT_EQ(frontend.snapshot().shard_quarantined, (std::vector<uint8_t>{0, 0, 0, 1}));
}

// ---------------------------------------------------------------------------
// BoundedQueue unit tests
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, MpmcDeliversEverythingExactlyOnce) {
  BoundedQueue<int> queue(4);
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 250;
  std::atomic<int> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  EXPECT_LE(queue.stats().max_depth, 4u);
}

TEST(BoundedQueueTest, CloseUnblocksProducersAndDrainsConsumers) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(7));
  std::thread blocked([&] {
    EXPECT_FALSE(queue.push(8));  // full; must return false once closed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  blocked.join();
  EXPECT_EQ(queue.pop(), std::optional<int>{7});  // drain after close
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_FALSE(queue.push(9));
}

// Shutdown racing live traffic (PR 7 satellite): close() fires from a third
// thread WHILE producers and consumers are mid-flight. Under TSan this pins
// down the close/push/pop interleavings; the invariant is accounting, not
// counts — every push that reported success is either popped or still in
// the (drained) queue, and every thread exits.
TEST(BoundedQueueTest, CloseRacingConcurrentPushAndPopStaysConsistent) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2'000;
  BoundedQueue<int> queue(8);
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.push(1)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          return;  // closed mid-run: push must fail fast, never hang
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (queue.pop().has_value()) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.close();  // races against every pusher and popper above
  for (auto& t : threads) t.join();
  // Consumers drain everything that was accepted before they saw close.
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_TRUE(queue.closed());
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed, accepted.load());
  EXPECT_EQ(stats.popped, popped.load());
}

// Watchdog (PR 7 satellite): a busy worker whose heartbeat stops advancing
// is a stall; a slow-but-progressing worker, or an idle one, never is.
TEST(WatchdogTest, FiresOnStuckWorkerOnly) {
  Heartbeat stuck;
  Heartbeat slow;
  Heartbeat idle;
  std::atomic<int> stall_count{0};
  Watchdog::Config config;
  config.stall_threshold_ms = 0;  // any busy poll-over-poll freeze flags
  Watchdog watchdog({&stuck, &slow, &idle}, config,
                    [&](size_t) { stall_count.fetch_add(1); });

  stuck.busy.store(true);
  slow.busy.store(true);
  idle.busy.store(false);
  for (int round = 0; round < 5; ++round) {
    slow.beats.fetch_add(1);   // progressing: tracker resets every poll
    idle.beats.fetch_add(1);   // idle workers never count as stalled
    watchdog.poll_once();
  }
  // Only the stuck worker fired, and only once (flagged edge-triggers).
  EXPECT_EQ(stall_count.load(), 1);
  EXPECT_EQ(watchdog.stalls_detected(), 1u);

  // Recovery re-arms: a beat clears the flag, a second freeze re-fires.
  slow.busy.store(false);  // its work is done; idle workers can't stall
  stuck.beats.fetch_add(1);
  watchdog.poll_once();
  EXPECT_EQ(stall_count.load(), 1);
  watchdog.poll_once();
  EXPECT_EQ(stall_count.load(), 2);
}

}  // namespace
}  // namespace hardtape::service
