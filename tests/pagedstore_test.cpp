// Paged state backend (PR 10, DESIGN.md §16): buffer-pool pin/evict
// properties under random schedules, the PagedStore's fail-closed segment
// reads, and paged-vs-RAM differentials proving the backend swap changes
// WHERE bytes live, never WHAT the caller observes (trie roots and proofs,
// ORAM read results).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "crypto/keccak.hpp"
#include "durability/vfs.hpp"
#include "oram/path_oram.hpp"
#include "pagedstore/buffer_pool.hpp"
#include "pagedstore/store.hpp"
#include "trie/mpt.hpp"
#include "trie/paged_node_store.hpp"

namespace hardtape::pagedstore {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ----------------------------------------------------------- BufferPool ----

TEST(BufferPool, EvictsLeastRecentlyUsedUnpinned) {
  std::vector<u256> evicted;
  BufferPool pool(3, [&](const u256& id, const Bytes&) { evicted.push_back(id); });
  pool.insert(u256{1}, bytes_of("a"), /*dirty=*/true).release();
  pool.insert(u256{2}, bytes_of("b"), /*dirty=*/true).release();
  pool.insert(u256{3}, bytes_of("c"), /*dirty=*/true).release();
  // Touch 1: it becomes the hottest; 2 is now the coldest unpinned frame.
  pool.fetch(u256{1}, [] { return Bytes{}; }).release();
  pool.insert(u256{4}, bytes_of("d"), /*dirty=*/true).release();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], u256{2});
  EXPECT_TRUE(pool.contains(u256{1}));
  EXPECT_FALSE(pool.contains(u256{2}));
  EXPECT_TRUE(pool.contains(u256{3}));
  EXPECT_TRUE(pool.contains(u256{4}));
}

TEST(BufferPool, PinnedFrameSkippedDuringEviction) {
  std::vector<u256> evicted;
  BufferPool pool(2, [&](const u256& id, const Bytes&) { evicted.push_back(id); });
  auto pinned = pool.insert(u256{1}, bytes_of("pinned"), /*dirty=*/true);
  pool.insert(u256{2}, bytes_of("b"), /*dirty=*/true).release();
  // 1 is the LRU frame but it is pinned: 2 must be the victim instead.
  pool.insert(u256{3}, bytes_of("c"), /*dirty=*/true).release();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], u256{2});
  EXPECT_EQ(pinned.data(), bytes_of("pinned"));  // frame untouched
}

TEST(BufferPool, AllPinnedFailsClosed) {
  BufferPool pool(2, [](const u256&, const Bytes&) {});
  auto p1 = pool.insert(u256{1}, bytes_of("a"), /*dirty=*/false);
  auto p2 = pool.insert(u256{2}, bytes_of("b"), /*dirty=*/false);
  EXPECT_THROW(pool.fetch(u256{3}, [] { return bytes_of("c"); }),
               PoolExhaustedError);
  EXPECT_GE(pool.stats().exhausted, 1u);
  p1.release();
  // One unpinned frame is enough again.
  EXPECT_NO_THROW(pool.fetch(u256{3}, [] { return bytes_of("c"); }).release());
}

TEST(BufferPool, RandomScheduleHoldsInvariants) {
  // Property test: under a seeded random schedule of insert / fetch / pin /
  // release / discard, (a) residency never exceeds the cap, (b) a pinned
  // frame is never evicted (its payload stays bit-exact through arbitrary
  // churn), (c) every eviction victim is unpinned at eviction time, and
  // (d) dirty evictions write back the exact payload the pool held.
  constexpr size_t kCapacity = 8;
  std::map<u256, Bytes> disk;       // writeback target = the model's truth
  std::multiset<u256> pinned_now;   // ids with a live PageRef (may repeat)
  BufferPool pool(kCapacity, [&](const u256& id, const Bytes& payload) {
    EXPECT_FALSE(pinned_now.contains(id)) << "evicted a pinned frame";
    disk[id] = payload;
  });
  std::map<u256, Bytes> model;      // id -> expected payload
  std::vector<std::pair<u256, BufferPool::PageRef>> held;

  Random rng(0x9a6e5);
  for (int step = 0; step < 4000; ++step) {
    const u256 id{1 + rng.uniform(64)};
    switch (rng.uniform(4)) {
      case 0: {  // insert a fresh payload (dirty)
        if (held.size() >= kCapacity) break;
        Bytes payload = rng.bytes(16 + rng.uniform(48));
        model[id] = payload;
        auto ref = pool.insert(id, std::move(payload), /*dirty=*/true);
        ref.release();
        break;
      }
      case 1: {  // fetch + hold the pin for a while
        if (held.size() + 1 >= kCapacity) break;  // leave eviction room
        if (!model.contains(id)) break;
        auto ref = pool.fetch(id, [&] {
          const auto it = disk.find(id);
          EXPECT_NE(it, disk.end()) << "miss for a page never written back";
          return it->second;
        });
        EXPECT_EQ(ref.data(), model[id]);
        pinned_now.insert(id);
        held.emplace_back(id, std::move(ref));
        break;
      }
      case 2: {  // release a random held pin
        if (held.empty()) break;
        const size_t victim = rng.uniform(held.size());
        // Re-check the payload survived everything since the pin was taken.
        EXPECT_EQ(held[victim].second.data(), model[held[victim].first]);
        pinned_now.erase(pinned_now.find(held[victim].first));
        held.erase(held.begin() + static_cast<ptrdiff_t>(victim));
        break;
      }
      case 3: {  // stats + invariant audit
        const auto stats = pool.stats();
        EXPECT_LE(stats.resident, kCapacity);
        const std::set<u256> distinct(pinned_now.begin(), pinned_now.end());
        EXPECT_EQ(stats.pinned, distinct.size());
        for (const auto& [pid, ref] : held) {
          EXPECT_TRUE(pool.contains(pid));
          EXPECT_EQ(ref.id(), pid);
        }
        break;
      }
    }
  }
  EXPECT_LE(pool.stats().resident, kCapacity);
  EXPECT_GT(pool.stats().evictions, 0u);  // the schedule actually churned
}

// ------------------------------------------------------------ PagedStore ----

TEST(PagedStore, PutGetRoundTripAcrossEviction) {
  durability::SimFs fs;
  PagedStoreConfig config;
  config.name = "ps";
  config.buffer_pool_pages = 2;  // tiny pool: most pages live on segments
  PagedStore store(fs, config);
  Random rng(0x77);
  std::map<u256, Bytes> model;
  for (uint64_t i = 0; i < 32; ++i) {
    const u256 id{i};
    model[id] = rng.bytes(64 + rng.uniform(128));
    store.put(id, model[id]);
  }
  EXPECT_EQ(store.page_count(), 32u);
  EXPECT_LE(store.pool_stats().resident, 2u);  // cap held while 32 pages live
  for (const auto& [id, payload] : model) {
    const auto got = store.get(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
  EXPECT_FALSE(store.get(u256{999}).has_value());
}

TEST(PagedStore, CorruptSegmentRecordFailsClosed) {
  durability::SimFs fs;
  PagedStoreConfig config;
  config.name = "ps";
  config.buffer_pool_pages = 1;
  PagedStore store(fs, config);
  store.put(u256{1}, bytes_of("the page that gets corrupted on disk"));
  store.flush(/*fsync=*/true);
  store.put(u256{2}, bytes_of("evicts page 1 from the single-frame pool"));
  store.flush(/*fsync=*/true);

  // Flip one byte of page 1's persisted record (SimFs has no write-in-place,
  // so rewrite the whole segment with the flipped byte).
  const std::string seg = PagedStore::segment_path("ps", store.current_segment());
  Bytes raw = *fs.read(seg);
  raw[raw.size() / 4] ^= 0x01;
  fs.remove(seg);
  fs.append(seg, raw);
  fs.fsync(seg);
  fs.sync_dir();

  // At least one page's record is now corrupt; both reads must either
  // succeed bit-exact or refuse — never return doctored bytes.
  size_t refused = 0;
  for (uint64_t i = 1; i <= 2; ++i) {
    try {
      const auto got = store.get(u256{i});
      ASSERT_TRUE(got.has_value());
    } catch (const IntegrityError&) {
      ++refused;
    }
  }
  EXPECT_GE(refused, 1u);
}

TEST(PagedStore, RevertRestoresPriorVersion) {
  durability::SimFs fs;
  PagedStoreConfig config;
  config.name = "ps";
  PagedStore store(fs, config);
  store.put(u256{1}, bytes_of("v1"));
  store.force_persist(u256{1});
  const auto prior = store.durable_locator(u256{1});
  ASSERT_TRUE(prior.has_value());
  store.put(u256{1}, bytes_of("v2-uncommitted"));
  store.put(u256{2}, bytes_of("new-uncommitted"));
  store.revert_to(u256{1}, prior);
  store.revert_to(u256{2}, std::nullopt);
  EXPECT_EQ(*store.get(u256{1}), bytes_of("v1"));
  EXPECT_FALSE(store.contains(u256{2}));
}

// -------------------------------------------------- paged-vs-RAM: trie ----

TEST(PagedDifferential, TrieRootsAndProofsMatchRamBackend) {
  durability::SimFs fs;
  pagedstore::PagedStoreConfig config;
  config.name = "trie";
  config.buffer_pool_pages = 4;  // far below the node working set
  trie::PagedNodeStore paged(fs, config, /*page_payload_bytes=*/1024);
  trie::MerklePatriciaTrie ram_trie;           // seed behavior
  trie::MerklePatriciaTrie paged_trie(&paged);

  Random rng(0x7217e);
  std::vector<Bytes> keys;
  for (int step = 0; step < 600; ++step) {
    if (!keys.empty() && rng.uniform(5) == 0) {
      const Bytes& key = keys[rng.uniform(keys.size())];
      EXPECT_EQ(ram_trie.erase(key), paged_trie.erase(key));
    } else {
      Bytes key = rng.bytes(1 + rng.uniform(40));
      Bytes value = rng.bytes(1 + rng.uniform(90));
      ram_trie.put(key, value);
      paged_trie.put(key, value);
      keys.push_back(std::move(key));
    }
    if (step % 50 == 0) {
      ASSERT_EQ(ram_trie.root_hash(), paged_trie.root_hash()) << "step " << step;
    }
  }
  const H256 root = ram_trie.root_hash();
  ASSERT_EQ(root, paged_trie.root_hash());

  // Every key: identical lookups, and the PAGED trie's proofs verify against
  // the shared root — the proof walk pages nodes through the pool.
  for (const Bytes& key : keys) {
    const auto expect = ram_trie.get(key);
    EXPECT_EQ(paged_trie.get(key), expect);
    const auto proof = paged_trie.prove(key);
    const auto verdict = trie::MerklePatriciaTrie::verify_proof(root, key, proof);
    EXPECT_TRUE(verdict.valid);
    EXPECT_EQ(verdict.value, expect);
  }
  // The pool cap held even though the trie outgrew it many times over.
  EXPECT_LE(paged.pool_stats().resident, 4u);
  EXPECT_GT(paged.pool_stats().evictions, 0u);
}

// -------------------------------------------------- paged-vs-RAM: ORAM ----

crypto::AesKey128 test_key() {
  crypto::AesKey128 key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i + 1);
  return key;
}

TEST(PagedDifferential, OramReadsMatchRamBackend) {
  durability::SimFs fs;
  oram::OramServer ram_server(oram::OramConfig{
      .block_size = 64, .bucket_capacity = 4, .capacity = 256});
  oram::OramServer paged_server(oram::OramConfig{
      .block_size = 64,
      .bucket_capacity = 4,
      .capacity = 256,
      .backend = oram::SlotBackend::kPaged,
      .backing_fs = &fs,
      .buffer_pool_pages = 0,  // raised to the walk minimum by the store
      .backing_name = "odiff"});
  oram::OramClient ram_client(ram_server, test_key(), 42,
                              oram::SealMode::kChaChaHmac);
  oram::OramClient paged_client(paged_server, test_key(), 42,
                                oram::SealMode::kChaChaHmac);

  Random rng(0x0a51);
  std::map<uint64_t, Bytes> model;
  for (int step = 0; step < 400; ++step) {
    const uint64_t key = rng.uniform(48);
    const oram::BlockId id{key};
    if (rng.uniform(3) == 0 || !model.contains(key)) {
      Bytes data = rng.bytes(64);
      ram_client.write(id, data);
      paged_client.write(id, data);
      model[key] = std::move(data);
    } else {
      const auto expect = model.at(key);
      const auto from_ram = ram_client.read(id);
      const auto from_paged = paged_client.read(id);
      ASSERT_TRUE(from_ram.has_value());
      ASSERT_TRUE(from_paged.has_value());
      EXPECT_EQ(*from_ram, expect);
      EXPECT_EQ(*from_paged, *from_ram);
    }
  }
  // Same seeds, same access sequence: the adversary's view (the observed
  // leaf sequence) is bit-identical too — the backend swap is invisible.
  EXPECT_EQ(paged_server.observed_leaves(), ram_server.observed_leaves());
  const auto pool = paged_server.slot_pool_stats();
  ASSERT_TRUE(pool.has_value());
  EXPECT_GT(pool->misses, 0u);  // buckets really paged through the pool
  EXPECT_FALSE(ram_server.slot_pool_stats().has_value());
}

}  // namespace
}  // namespace hardtape::pagedstore
