// Tests for the world state and the journaled overlay.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/random.hpp"
#include "state/overlay.hpp"
#include "state/world_state.hpp"

namespace hardtape::state {
namespace {

Address addr(uint8_t tag) {
  Address a;
  a.bytes.fill(0);
  a.bytes[19] = tag;
  return a;
}

TEST(Account, RlpRoundTrip) {
  Account account;
  account.balance = u256::from_string("0xde0b6b3a7640000");  // 1 ether
  account.nonce = 42;
  account.storage_root = crypto::keccak256("root");
  account.code_hash = crypto::keccak256("code");
  const Account back = Account::rlp_decode(account.rlp_encode());
  EXPECT_EQ(back, account);
}

TEST(Account, EmptyDetection) {
  Account account;
  EXPECT_TRUE(account.is_empty());
  EXPECT_FALSE(account.has_code());
  account.balance = u256{1};
  EXPECT_FALSE(account.is_empty());
}

TEST(WorldState, AccountLifecycle) {
  WorldState ws;
  EXPECT_FALSE(ws.account(addr(1)).has_value());
  ws.set_balance(addr(1), u256{1000});
  ws.set_nonce(addr(1), 5);
  const auto account = ws.account(addr(1));
  ASSERT_TRUE(account.has_value());
  EXPECT_EQ(account->balance, u256{1000});
  EXPECT_EQ(account->nonce, 5u);
  ws.delete_account(addr(1));
  EXPECT_FALSE(ws.account(addr(1)).has_value());
}

TEST(WorldState, CodeStorage) {
  WorldState ws;
  const Bytes code = {0x60, 0x01, 0x60, 0x02, 0x01};
  ws.set_code(addr(2), code);
  EXPECT_EQ(ws.code(addr(2)), code);
  EXPECT_EQ(ws.account(addr(2))->code_hash, crypto::keccak256(code));
  EXPECT_TRUE(ws.code(addr(3)).empty());
}

TEST(WorldState, StorageAndRoot) {
  WorldState ws;
  ws.set_storage(addr(1), u256{1}, u256{100});
  EXPECT_EQ(ws.storage(addr(1), u256{1}), u256{100});
  EXPECT_EQ(ws.storage(addr(1), u256{2}), u256{});
  const H256 root1 = ws.state_root();
  ws.set_storage(addr(1), u256{1}, u256{200});
  EXPECT_NE(ws.state_root(), root1);
  ws.set_storage(addr(1), u256{1}, u256{100});
  EXPECT_EQ(ws.state_root(), root1);
  // Zeroing a slot removes it from the trie.
  ws.set_storage(addr(1), u256{1}, u256{});
  EXPECT_EQ(ws.storage_root(addr(1)), trie::MerklePatriciaTrie::empty_root_hash());
}

TEST(WorldState, AccountProofVerifies) {
  WorldState ws;
  ws.set_balance(addr(1), u256{777});
  ws.set_balance(addr(2), u256{888});
  const H256 root = ws.state_root();
  const auto proof = ws.prove_account(addr(1));
  const H256 key = crypto::keccak256(addr(1).view());
  const auto result = trie::MerklePatriciaTrie::verify_proof(root, key.view(), proof);
  ASSERT_TRUE(result.valid);
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(Account::rlp_decode(*result.value).balance, u256{777});
}

TEST(WorldState, StorageProofVerifies) {
  WorldState ws;
  ws.set_storage(addr(1), u256{5}, u256{12345});
  ws.set_storage(addr(1), u256{6}, u256{67890});
  const H256 sroot = ws.storage_root(addr(1));
  const auto proof = ws.prove_storage(addr(1), u256{5});
  const H256 key = crypto::keccak256(u256{5}.to_be_bytes_vec());
  const auto result = trie::MerklePatriciaTrie::verify_proof(sroot, key.view(), proof);
  ASSERT_TRUE(result.valid);
  ASSERT_TRUE(result.value.has_value());
}

TEST(WorldState, EnumerationIsSorted) {
  WorldState ws;
  ws.set_balance(addr(9), u256{1});
  ws.set_balance(addr(3), u256{1});
  ws.set_storage(addr(3), u256{20}, u256{1});
  ws.set_storage(addr(3), u256{10}, u256{1});
  const auto accounts = ws.all_accounts();
  ASSERT_EQ(accounts.size(), 2u);
  EXPECT_EQ(accounts[0], addr(3));
  const auto keys = ws.storage_keys(addr(3));
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], u256{10});
}

// --- OverlayState ---

class OverlayTest : public ::testing::Test {
 protected:
  OverlayTest() : overlay_(base_) {
    base_.put_account(addr(1), Account{.balance = u256{1000}, .nonce = 7});
    base_.put_storage(addr(1), u256{1}, u256{11});
    base_.put_code(addr(2), Bytes{0xde, 0xad});
  }
  InMemoryState base_;
  OverlayState overlay_;
};

TEST_F(OverlayTest, ReadThrough) {
  EXPECT_EQ(overlay_.balance(addr(1)), u256{1000});
  EXPECT_EQ(overlay_.nonce(addr(1)), 7u);
  EXPECT_EQ(overlay_.storage(addr(1), u256{1}), u256{11});
  EXPECT_EQ(overlay_.code(addr(2)), (Bytes{0xde, 0xad}));
  EXPECT_FALSE(overlay_.exists(addr(9)));
  EXPECT_TRUE(overlay_.exists(addr(1)));
}

TEST_F(OverlayTest, WritesShadowBase) {
  overlay_.set_balance(addr(1), u256{500});
  overlay_.set_storage(addr(1), u256{1}, u256{99});
  EXPECT_EQ(overlay_.balance(addr(1)), u256{500});
  EXPECT_EQ(overlay_.storage(addr(1), u256{1}), u256{99});
  // Base untouched.
  EXPECT_EQ(base_.account(addr(1))->balance, u256{1000});
  EXPECT_EQ(base_.storage(addr(1), u256{1}), u256{11});
}

TEST_F(OverlayTest, SubBalanceChecksFunds) {
  EXPECT_FALSE(overlay_.sub_balance(addr(1), u256{1001}));
  EXPECT_EQ(overlay_.balance(addr(1)), u256{1000});
  EXPECT_TRUE(overlay_.sub_balance(addr(1), u256{400}));
  EXPECT_EQ(overlay_.balance(addr(1)), u256{600});
}

TEST_F(OverlayTest, SnapshotRevertRestoresEverything) {
  overlay_.access_account(addr(1));
  const auto snap = overlay_.snapshot();
  overlay_.set_balance(addr(1), u256{1});
  overlay_.set_nonce(addr(1), 100);
  overlay_.set_storage(addr(1), u256{1}, u256{22});
  overlay_.set_storage(addr(1), u256{2}, u256{33});
  overlay_.set_code(addr(5), Bytes{0x01});
  overlay_.set_transient_storage(addr(1), u256{9}, u256{44});
  overlay_.add_refund(4800);
  EXPECT_TRUE(overlay_.access_account(addr(3)));  // cold
  EXPECT_TRUE(overlay_.access_storage(addr(1), u256{77}));

  overlay_.revert_to(snap);
  EXPECT_EQ(overlay_.balance(addr(1)), u256{1000});
  EXPECT_EQ(overlay_.nonce(addr(1)), 7u);
  EXPECT_EQ(overlay_.storage(addr(1), u256{1}), u256{11});
  EXPECT_EQ(overlay_.storage(addr(1), u256{2}), u256{});
  EXPECT_TRUE(overlay_.code(addr(5)).empty());
  EXPECT_EQ(overlay_.transient_storage(addr(1), u256{9}), u256{});
  EXPECT_EQ(overlay_.refund(), 0u);
  // Warm sets rolled back: these are cold again...
  EXPECT_TRUE(overlay_.access_account(addr(3)));
  EXPECT_TRUE(overlay_.access_storage(addr(1), u256{77}));
  // ...but the pre-snapshot access survives.
  EXPECT_FALSE(overlay_.access_account(addr(1)));
}

TEST_F(OverlayTest, NestedSnapshots) {
  const auto outer = overlay_.snapshot();
  overlay_.set_balance(addr(1), u256{900});
  const auto inner = overlay_.snapshot();
  overlay_.set_balance(addr(1), u256{800});
  overlay_.revert_to(inner);
  EXPECT_EQ(overlay_.balance(addr(1)), u256{900});
  overlay_.revert_to(outer);
  EXPECT_EQ(overlay_.balance(addr(1)), u256{1000});
  EXPECT_THROW(overlay_.revert_to(99), UsageError);
}

TEST_F(OverlayTest, OriginalStorageTracksTxStart) {
  EXPECT_EQ(overlay_.original_storage(addr(1), u256{1}), u256{11});
  overlay_.set_storage(addr(1), u256{1}, u256{50});
  overlay_.set_storage(addr(1), u256{1}, u256{60});
  EXPECT_EQ(overlay_.original_storage(addr(1), u256{1}), u256{11});
  // New transaction: original becomes the carried-over overlay value.
  overlay_.begin_transaction();
  EXPECT_EQ(overlay_.storage(addr(1), u256{1}), u256{60});
  EXPECT_EQ(overlay_.original_storage(addr(1), u256{1}), u256{60});
}

TEST_F(OverlayTest, BeginTransactionResetsWarmSetsButKeepsWrites) {
  overlay_.set_balance(addr(1), u256{123});
  EXPECT_TRUE(overlay_.access_account(addr(1)));
  EXPECT_FALSE(overlay_.access_account(addr(1)));
  overlay_.begin_transaction();
  EXPECT_TRUE(overlay_.access_account(addr(1)));  // cold again
  EXPECT_EQ(overlay_.balance(addr(1)), u256{123});  // write kept
}

TEST_F(OverlayTest, WarmColdSemantics) {
  EXPECT_TRUE(overlay_.access_account(addr(7)));
  EXPECT_FALSE(overlay_.access_account(addr(7)));
  EXPECT_TRUE(overlay_.is_warm_account(addr(7)));
  EXPECT_TRUE(overlay_.access_storage(addr(7), u256{1}));
  EXPECT_FALSE(overlay_.access_storage(addr(7), u256{1}));
  EXPECT_TRUE(overlay_.access_storage(addr(7), u256{2}));
}

TEST_F(OverlayTest, RefundArithmetic) {
  overlay_.add_refund(100);
  overlay_.add_refund(50);
  EXPECT_EQ(overlay_.refund(), 150u);
  overlay_.sub_refund(200);  // clamps at zero
  EXPECT_EQ(overlay_.refund(), 0u);
}

TEST_F(OverlayTest, SelfdestructSemantics) {
  // Pre-existing account: only the balance moves (EIP-6780).
  overlay_.selfdestruct(addr(1), addr(2));
  EXPECT_EQ(overlay_.balance(addr(1)), u256{});
  EXPECT_EQ(overlay_.balance(addr(2)), u256{1000});
  EXPECT_FALSE(overlay_.is_destroyed(addr(1)));
  // Freshly created account: actually destroyed.
  overlay_.mark_created(addr(8));
  overlay_.set_balance(addr(8), u256{5});
  overlay_.selfdestruct(addr(8), addr(2));
  EXPECT_TRUE(overlay_.is_destroyed(addr(8)));
  EXPECT_EQ(overlay_.balance(addr(2)), u256{1005});
}

TEST_F(OverlayTest, StorageWritesReportNetChanges) {
  overlay_.set_storage(addr(1), u256{1}, u256{99});
  overlay_.set_storage(addr(1), u256{2}, u256{5});
  overlay_.set_storage(addr(1), u256{2}, u256{});   // write then zero: net change
  overlay_.set_storage(addr(1), u256{3}, u256{7});
  overlay_.set_storage(addr(1), u256{3}, u256{});   // never existed, back to zero
  const auto writes = overlay_.storage_writes();
  // slot1: 11 -> 99 (changed), slot2: 0 -> 0 (no net change), slot3: 0 -> 0.
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].key, u256{1});
  EXPECT_EQ(writes[0].value, u256{99});
}

TEST_F(OverlayTest, BalanceChangesReport) {
  overlay_.set_balance(addr(1), u256{999});
  overlay_.add_balance(addr(4), u256{1});
  overlay_.balance(addr(2));  // read only: no change
  const auto changes = overlay_.balance_changes();
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].first, addr(1));
  EXPECT_EQ(changes[0].second, u256{999});
  EXPECT_EQ(changes[1].first, addr(4));
}

TEST_F(OverlayTest, TransientStorageClearedPerTx) {
  overlay_.set_transient_storage(addr(1), u256{1}, u256{42});
  EXPECT_EQ(overlay_.transient_storage(addr(1), u256{1}), u256{42});
  overlay_.begin_transaction();
  EXPECT_EQ(overlay_.transient_storage(addr(1), u256{1}), u256{});
}

}  // namespace
}  // namespace hardtape::state
