// Functional tests for the hand-assembled workload contracts and the
// Table-I-calibrated block generator.
#include <gtest/gtest.h>

#include "evm/interpreter.hpp"
#include "evm/trace.hpp"
#include "state/overlay.hpp"
#include "workload/generator.hpp"

namespace hardtape::workload {
namespace {

Address addr(uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

class ContractTest : public ::testing::Test {
 protected:
  ContractTest() {
    world_.set_balance(alice_, u256{1} << 64);
    world_.set_balance(bob_, u256{1} << 32);
  }

  evm::TxResult send(const Address& from, const Address& to, Bytes data,
                     u256 value = {}, uint64_t gas = 5'000'000,
                     evm::ExecutionObserver* observer = nullptr) {
    state::OverlayState overlay(world_);
    evm::Interpreter interp(overlay, evm::BlockContext{});
    if (observer) interp.set_observer(observer);
    evm::Transaction tx;
    tx.from = from;
    tx.to = to;
    tx.data = std::move(data);
    tx.value = value;
    tx.gas_limit = gas;
    tx.gas_price = u256{};  // zero-fee so balance assertions stay exact
    const evm::TxResult result = interp.execute_transaction(tx);
    // Commit effects so sequential sends see each other.
    for (const auto& [a, balance] : overlay.balance_changes()) world_.set_balance(a, balance);
    for (const auto& w : overlay.storage_writes()) world_.set_storage(w.addr, w.key, w.value);
    world_.set_nonce(from, overlay.nonce(from));
    return result;
  }

  state::WorldState world_;
  Address alice_ = addr(0xA1);
  Address bob_ = addr(0xB0);
};

TEST_F(ContractTest, Erc20TransferMovesBalance) {
  const Address token = addr(0x10);
  world_.set_code(token, erc20_code());
  world_.set_storage(token, alice_.to_u256(), u256{1000});

  const auto result = send(alice_, token, erc20_transfer(bob_, u256{300}));
  ASSERT_EQ(result.status, evm::VmStatus::kSuccess);
  EXPECT_EQ(u256::from_be_bytes(result.output), u256{1});  // returns true
  EXPECT_EQ(world_.storage(token, alice_.to_u256()), u256{700});
  EXPECT_EQ(world_.storage(token, bob_.to_u256()), u256{300});
}

TEST_F(ContractTest, Erc20TransferEmitsEvent) {
  const Address token = addr(0x10);
  world_.set_code(token, erc20_code());
  world_.set_storage(token, alice_.to_u256(), u256{1000});
  evm::StepTracer tracer;
  send(alice_, token, erc20_transfer(bob_, u256{5}), {}, 5'000'000, &tracer);
  ASSERT_EQ(tracer.logs().size(), 1u);
  const auto& log = tracer.logs()[0];
  EXPECT_EQ(log.address, token);
  ASSERT_EQ(log.topics.size(), 3u);
  EXPECT_EQ(Address::from_u256(log.topics[1]), alice_);
  EXPECT_EQ(Address::from_u256(log.topics[2]), bob_);
  EXPECT_EQ(u256::from_be_bytes(log.data), u256{5});
}

TEST_F(ContractTest, Erc20InsufficientBalanceReverts) {
  const Address token = addr(0x10);
  world_.set_code(token, erc20_code());
  world_.set_storage(token, alice_.to_u256(), u256{10});
  const auto result = send(alice_, token, erc20_transfer(bob_, u256{11}));
  EXPECT_EQ(result.status, evm::VmStatus::kRevert);
  EXPECT_EQ(world_.storage(token, alice_.to_u256()), u256{10});
}

TEST_F(ContractTest, Erc20MintAndBalanceOf) {
  const Address token = addr(0x10);
  world_.set_code(token, erc20_code());
  ASSERT_EQ(send(alice_, token, erc20_mint(bob_, u256{777})).status,
            evm::VmStatus::kSuccess);
  EXPECT_EQ(world_.storage(token, bob_.to_u256()), u256{777});
  EXPECT_EQ(world_.storage(token, u256{}), u256{777});  // totalSupply
  const auto result = send(alice_, token, erc20_balance_of(bob_));
  EXPECT_EQ(u256::from_be_bytes(result.output), u256{777});
}

TEST_F(ContractTest, Erc20UnknownSelectorReverts) {
  const Address token = addr(0x10);
  world_.set_code(token, erc20_code());
  EXPECT_EQ(send(alice_, token, calldata_selector(0x12345678)).status,
            evm::VmStatus::kRevert);
}

TEST_F(ContractTest, DexSwapConstantProduct) {
  const Address token = addr(0x10);
  const Address dex = addr(0x20);
  world_.set_code(token, erc20_code());
  world_.set_code(dex, dex_pair_code());
  world_.set_storage(dex, u256{kDexReserve0Slot}, u256{1'000'000});
  world_.set_storage(dex, u256{kDexReserve1Slot}, u256{1'000'000});
  world_.set_storage(dex, u256{kDexToken1Slot}, token.to_u256());
  world_.set_storage(token, dex.to_u256(), u256{1'000'000});  // inventory

  const auto result = send(alice_, dex, dex_swap(u256{10'000}));
  ASSERT_EQ(result.status, evm::VmStatus::kSuccess);
  // out = r1*in/(r0+in) = 1e6*1e4 / 1.01e6 = 9900 (floor).
  const u256 out = u256::from_be_bytes(result.output);
  EXPECT_EQ(out, u256{9900});
  EXPECT_EQ(world_.storage(dex, u256{kDexReserve0Slot}), u256{1'010'000});
  EXPECT_EQ(world_.storage(dex, u256{kDexReserve1Slot}), u256{1'000'000 - 9900});
  // Token paid out to the swapper.
  EXPECT_EQ(world_.storage(token, alice_.to_u256()), u256{9900});
  // Fee/price accounting slots updated (8 records per swap frame).
  EXPECT_EQ(world_.storage(dex, u256{4}), u256{1});       // swapCount
  EXPECT_EQ(world_.storage(dex, u256{5}), u256{9900});    // cumVolumeOut
  EXPECT_EQ(world_.storage(dex, u256{6}), u256{3});       // feeAccum
}

TEST_F(ContractTest, DexAddLiquidity) {
  const Address dex = addr(0x20);
  world_.set_code(dex, dex_pair_code());
  ASSERT_EQ(send(alice_, dex, dex_add_liquidity(u256{100}, u256{200})).status,
            evm::VmStatus::kSuccess);
  EXPECT_EQ(world_.storage(dex, u256{kDexReserve0Slot}), u256{100});
  EXPECT_EQ(world_.storage(dex, u256{kDexReserve1Slot}), u256{200});
}

TEST_F(ContractTest, PonziForwardsToPreviousInvestor) {
  const Address ponzi = addr(0x30);
  world_.set_code(ponzi, ponzi_code());

  ASSERT_EQ(send(alice_, ponzi, calldata_selector(kSelInvest), u256{1000}).status,
            evm::VmStatus::kSuccess);
  EXPECT_EQ(Address::from_u256(world_.storage(ponzi, u256{})), alice_);
  EXPECT_EQ(world_.storage(ponzi, alice_.to_u256()), u256{1000});
  EXPECT_EQ(world_.account(ponzi)->balance, u256{1000});

  const u256 alice_before = world_.account(alice_)->balance;
  ASSERT_EQ(send(bob_, ponzi, calldata_selector(kSelInvest), u256{2000}).status,
            evm::VmStatus::kSuccess);
  // Alice got half of Bob's investment.
  EXPECT_EQ(world_.account(alice_)->balance, alice_before + u256{1000});
  EXPECT_EQ(Address::from_u256(world_.storage(ponzi, u256{})), bob_);
}

TEST_F(ContractTest, RouterChainsToRequestedDepth) {
  const Address token = addr(0x10);
  const Address router = addr(0x40);
  world_.set_code(token, erc20_code());
  world_.set_code(router, router_code());
  world_.set_storage(token, router.to_u256(), u256{100000});

  evm::FrameStatsCollector stats;
  const auto result =
      send(alice_, router, router_route(3, token, bob_, u256{42}), {}, 5'000'000, &stats);
  ASSERT_EQ(result.status, evm::VmStatus::kSuccess);
  // depth parameter 3 -> router frames at depth 1..4, token frame at depth 5.
  EXPECT_EQ(stats.max_depth(), 5);
  EXPECT_EQ(world_.storage(token, bob_.to_u256()), u256{42});
}

TEST_F(ContractTest, RollupWritesSequentialSlots) {
  const Address rollup = addr(0x50);
  world_.set_code(rollup, rollup_batcher_code());
  const u256 base = u256{1} << 16;
  ASSERT_EQ(send(alice_, rollup, rollup_submit(base, 40)).status,
            evm::VmStatus::kSuccess);
  for (uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(world_.storage(rollup, base + u256{i}), u256{i + 1}) << i;
  }
  EXPECT_EQ(world_.storage(rollup, base + u256{40}), u256{});
}

TEST_F(ContractTest, HoneypotTakesDepositsBlocksWithdrawals) {
  const Address pot = addr(0x60);
  world_.set_code(pot, honeypot_code());
  ASSERT_EQ(send(alice_, pot, calldata_selector(kSelDeposit), u256{5000}).status,
            evm::VmStatus::kSuccess);
  EXPECT_EQ(world_.storage(pot, alice_.to_u256()), u256{5000});
  // The trap: withdraw reverts because the hidden flag is unset.
  EXPECT_EQ(send(alice_, pot, calldata_selector(kSelWithdraw)).status,
            evm::VmStatus::kRevert);
  // With the flag set (the scammer's private path), it pays out.
  world_.set_storage(pot, u256{kHoneypotFlagSlot}, u256{1});
  const u256 before = world_.account(alice_)->balance;
  ASSERT_EQ(send(alice_, pot, calldata_selector(kSelWithdraw)).status,
            evm::VmStatus::kSuccess);
  EXPECT_EQ(world_.account(alice_)->balance, before + u256{5000});
}

TEST_F(ContractTest, PaddedCodeStillRuns) {
  const Address token = addr(0x10);
  world_.set_code(token, pad_code(erc20_code(), 20 * 1024));
  world_.set_storage(token, alice_.to_u256(), u256{10});
  EXPECT_EQ(world_.code(token).size(), 20 * 1024u);
  EXPECT_EQ(send(alice_, token, erc20_transfer(bob_, u256{10})).status,
            evm::VmStatus::kSuccess);
}

// --- generator ---

TEST(Generator, DeployPopulatesWorld) {
  state::WorldState world;
  WorkloadGenerator gen;
  gen.deploy(world);
  EXPECT_EQ(gen.users().size(), 64u);
  EXPECT_EQ(gen.tokens().size(), 12u);
  EXPECT_EQ(gen.dexes().size(), 6u);
  EXPECT_FALSE(world.code(gen.tokens()[0]).empty());
  EXPECT_FALSE(world.code(gen.rollup()).empty());
  EXPECT_GT(world.account(gen.users()[0])->balance, u256{});
}

TEST(Generator, BlocksAreDeterministicPerSeed) {
  state::WorldState w1, w2;
  WorkloadGenerator g1(GeneratorConfig{.seed = 7});
  WorkloadGenerator g2(GeneratorConfig{.seed = 7});
  g1.deploy(w1);
  g2.deploy(w2);
  const auto b1 = g1.generate_block();
  const auto b2 = g2.generate_block();
  ASSERT_EQ(b1.size(), b2.size());
  for (size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1[i].from, b2[i].from);
    EXPECT_EQ(b1[i].data, b2[i].data);
  }
}

TEST(Generator, TransactionsExecuteSuccessfully) {
  state::WorldState world;
  WorkloadGenerator gen(GeneratorConfig{.txs_per_block = 60});
  gen.deploy(world);
  state::OverlayState overlay(world);
  evm::Interpreter interp(overlay, evm::BlockContext{});
  int success = 0, total = 0;
  for (const auto& tx : gen.generate_block()) {
    const auto result = interp.execute_transaction(tx);
    ++total;
    if (result.status == evm::VmStatus::kSuccess) ++success;
  }
  // The vast majority must succeed (reverts possible via ponzi value edge cases).
  EXPECT_GT(success, total * 9 / 10) << success << "/" << total;
}

TEST(Generator, CodeSizesFollowTableOne) {
  WorkloadGenerator gen;
  int lt1k = 0, k1_4 = 0, k4_12 = 0, k12_64 = 0;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    const size_t size = gen.sample_code_size();
    if (size < 1024) ++lt1k;
    else if (size < 4 * 1024) ++k1_4;
    else if (size < 12 * 1024) ++k4_12;
    else ++k12_64;
  }
  // Table I(a) code column: 9.5% / 25.3% / 39.6% / 25.6% with slack.
  EXPECT_NEAR(lt1k * 100.0 / kSamples, 9.5, 3.0);
  EXPECT_NEAR(k1_4 * 100.0 / kSamples, 25.3, 4.0);
  EXPECT_NEAR(k4_12 * 100.0 / kSamples, 39.6, 4.0);
  EXPECT_NEAR(k12_64 * 100.0 / kSamples, 25.6, 4.0);
}

TEST(Generator, CallDepthDistributionShape) {
  state::WorldState world;
  WorkloadGenerator gen(GeneratorConfig{.txs_per_block = 150});
  gen.deploy(world);
  state::OverlayState overlay(world);
  evm::Interpreter interp(overlay, evm::BlockContext{});
  evm::FrameStatsCollector stats;
  interp.set_observer(&stats);

  int depth1 = 0, depth2_5 = 0, depth6_10 = 0, deeper = 0, total = 0;
  for (const auto& tx : gen.generate_block()) {
    stats.clear();
    interp.execute_transaction(tx);
    const int depth = std::max(stats.max_depth(), 1);
    ++total;
    if (depth == 1) ++depth1;
    else if (depth <= 5) ++depth2_5;
    else if (depth <= 10) ++depth6_10;
    else ++deeper;
  }
  // Table I(b) depth column: 40.8% / 52.6% / 6.3% / 0.3% — the shape we
  // check is ordering and rough mass, not exact percentages.
  EXPECT_GT(depth1, total / 5);
  EXPECT_GT(depth2_5, depth6_10);
  EXPECT_GT(depth6_10, deeper);
}

}  // namespace
}  // namespace hardtape::workload
