// Tests for the simulation substrate: clock, link model, cost models, and
// the service's bundle scheduler.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "service/pre_execution.hpp"
#include "sim/backoff.hpp"
#include "sim/clock.hpp"
#include "sim/costs.hpp"

namespace hardtape::sim {
namespace {

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.advance_ns(1500);
  EXPECT_EQ(clock.now_ns(), 1500u);
  clock.advance_us(2.5);
  EXPECT_EQ(clock.now_ns(), 4000u);
  clock.advance_ms(1.0);
  EXPECT_EQ(clock.now_ns(), 1'004'000u);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 1.004);
  clock.advance_to(500);  // no going back
  EXPECT_EQ(clock.now_ns(), 1'004'000u);
  clock.advance_to(2'000'000);
  EXPECT_EQ(clock.now_ns(), 2'000'000u);
  clock.reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(SimStopwatch, MeasuresDeltas) {
  SimClock clock;
  clock.advance_ns(100);
  SimStopwatch watch(clock);
  clock.advance_ns(250);
  EXPECT_EQ(watch.elapsed_ns(), 250u);
  watch.restart();
  EXPECT_EQ(watch.elapsed_ns(), 0u);
}

TEST(LinkModel, LatencyPlusBandwidth) {
  LinkModel link{.latency_ns = 1'000'000, .bytes_per_ns = 1.0};
  EXPECT_EQ(link.transfer_ns(0), 1'000'000u);
  EXPECT_EQ(link.transfer_ns(500'000), 1'500'000u);
  EXPECT_EQ(link.round_trip_ns(100, 100), 2 * link.transfer_ns(100));
}

TEST(HevmCostModel, CycleAccounting) {
  HevmCostModel model;
  EXPECT_EQ(model.cycle_ns(), 10u);  // 0.1 GHz
  // ADD (0x01, arithmetic, non-mul) vs MUL (0x02).
  EXPECT_EQ(model.op_ns(evm::OpClass::kArithmetic, 0x01), 2 * 10u);
  EXPECT_EQ(model.op_ns(evm::OpClass::kArithmetic, 0x02),
            uint64_t{model.cycles_mul_div} * 10);
  EXPECT_EQ(model.op_ns(evm::OpClass::kCall, 0xf1), uint64_t{model.cycles_call} * 10);
  // Reset: ~1.1 MB at 32 B/cycle at 100 MHz ~ 0.35 ms.
  EXPECT_NEAR(static_cast<double>(model.reset_ns()) / 1e6, 0.35, 0.05);
}

TEST(CostModels, GethVsTscVeeOrdering) {
  GethCostModel geth;
  TscVeeCostModel tsc;
  // TSC-VEE (interpreted on an A53) is slower per op than Geth (i7).
  EXPECT_GT(tsc.op_ns(evm::OpClass::kArithmetic, 0x01),
            geth.op_ns(evm::OpClass::kArithmetic, 0x01));
  EXPECT_GT(tsc.op_ns(evm::OpClass::kCall, 0xf1), geth.op_ns(evm::OpClass::kCall, 0xf1));
}

TEST(CryptoCostModel, EcdsaDominates) {
  CryptoCostModel crypto;
  // §VI-C: one verify + one sign ~ 80 ms per bundle.
  EXPECT_EQ(crypto.ecdsa_sign_ns + crypto.ecdsa_verify_ns, 80'000'000u);
  EXPECT_LT(crypto.aes_gcm_ns(10'000), crypto.ecdsa_sign_ns);
}

// --- bundle scheduler ---

using service::PreExecutionService;

TEST(Scheduler, SingleCoreSerializes) {
  const auto result =
      PreExecutionService::schedule_bundles({100, 100, 100}, 1, /*gap=*/0);
  EXPECT_EQ(result.makespan_ns, 300u);
  EXPECT_EQ(result.completion_ns, (std::vector<uint64_t>{100, 200, 300}));
  EXPECT_EQ(result.mean_wait_ns, 100u);  // waits 0, 100, 200
}

TEST(Scheduler, ThreeCoresRunThreeBundlesInParallel) {
  const auto result =
      PreExecutionService::schedule_bundles({100, 100, 100}, 3, /*gap=*/0);
  EXPECT_EQ(result.makespan_ns, 100u);
  EXPECT_EQ(result.mean_wait_ns, 0u);
}

TEST(Scheduler, QueueingKicksInWhenOfferedLoadExceedsCapacity) {
  // 6 bundles of 100 on 3 cores arriving instantly: second wave waits.
  const auto result =
      PreExecutionService::schedule_bundles(std::vector<uint64_t>(6, 100), 3, 0);
  EXPECT_EQ(result.makespan_ns, 200u);
  EXPECT_GT(result.mean_wait_ns, 0u);
  EXPECT_GT(result.max_queue_depth, 0u);
}

TEST(Scheduler, ArrivalGapAboveServiceRateMeansNoWaiting) {
  // Paper §VI-D: at 164 ms/bundle and 3 cores, one chip sustains ~18 tx/s —
  // bundles arriving every 60 ms (~16.7 tx/s) should not queue.
  const auto result = PreExecutionService::schedule_bundles(
      std::vector<uint64_t>(50, 164'000'000), 3, 60'000'000);
  EXPECT_LT(result.mean_wait_ns, 10'000'000u);  // negligible waiting
  // While 30 ms arrivals (33 tx/s) overload the chip.
  const auto overloaded = PreExecutionService::schedule_bundles(
      std::vector<uint64_t>(50, 164'000'000), 3, 30'000'000);
  EXPECT_GT(overloaded.mean_wait_ns, 100'000'000u);
}

TEST(Scheduler, RejectsZeroCores) {
  EXPECT_THROW(PreExecutionService::schedule_bundles({1}, 0, 0), UsageError);
}

// --- BackoffPolicy exponent-growth regression (attempt counts >= 63) ---
//
// The exponential term must saturate at cap_ns instead of letting the
// doubling wrap uint64: a wrapped term resets the wait to ~0 exactly when
// retries have been going on the longest, re-synchronizing every session
// into a retry storm. With cap_ns pushed to UINT64_MAX the old loop wrapped
// at attempt ~63 and the jitter float->int conversion became UB.

TEST(BackoffPolicy, Attempt64SaturatesAtCapWithDefaultPolicy) {
  const BackoffPolicy policy{};
  const uint64_t at_cap = backoff_delay_ns(policy, 10, 7);
  const uint64_t attempt64 = backoff_delay_ns(policy, 64, 7);
  // Both attempts are deep into saturation: term == cap_ns for each, so the
  // delay is cap plus jitter bounded by jitter_frac * cap.
  EXPECT_GE(attempt64, policy.cap_ns);
  EXPECT_LE(attempt64, policy.cap_ns +
                           static_cast<uint64_t>(policy.jitter_frac *
                                                 static_cast<double>(policy.cap_ns)));
  EXPECT_GE(at_cap, policy.cap_ns);
}

TEST(BackoffPolicy, Attempt64And1000NeverWrapEvenWithExtremeCap) {
  BackoffPolicy policy;
  policy.cap_ns = UINT64_MAX;   // adversarial config: doubling would wrap
  policy.jitter_frac = 0.0;     // isolate the exponential term
  uint64_t previous = 0;
  for (const int attempt : {1, 2, 62, 63, 64, 65, 100, 1000}) {
    const uint64_t delay = backoff_delay_ns(policy, attempt, 42);
    // Monotone non-decreasing: a wrap would show up as a collapse to ~0.
    EXPECT_GE(delay, previous) << "attempt " << attempt;
    EXPECT_GE(delay, policy.base_ns) << "attempt " << attempt;
    previous = delay;
  }
  // Saturated high: the term parked at the cap, not at a wrapped residue.
  EXPECT_GT(backoff_delay_ns(policy, 1000, 42), UINT64_MAX / 2);
}

TEST(BackoffPolicy, Attempt1000WithJitterStaysBoundedAndDeterministic) {
  BackoffPolicy policy;
  policy.cap_ns = UINT64_MAX;  // jitter_frac * cap overflows double->u64 naively
  policy.jitter_frac = 0.5;
  const uint64_t a = backoff_delay_ns(policy, 1000, 9);
  const uint64_t b = backoff_delay_ns(policy, 1000, 9);
  EXPECT_EQ(a, b);                       // same inputs, same schedule
  EXPECT_GE(a, UINT64_MAX / 2);          // at least the saturated term
  EXPECT_NE(backoff_delay_ns(policy, 64, 9), 0u);
}

}  // namespace
}  // namespace hardtape::sim
