// Tests for the HEVM core: dedicated-core semantics, cycle accounting,
// bundle execution, the resource model (§VI-A), and the software baselines.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "evm/assembler.hpp"
#include "hevm/baseline.hpp"
#include "hevm/hevm_core.hpp"
#include "hevm/resource_model.hpp"
#include "workload/contracts.hpp"

namespace hardtape::hevm {
namespace {

Address addr(uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

crypto::AesKey128 key() {
  crypto::AesKey128 k{};
  k[0] = 1;
  return k;
}

class HevmCoreTest : public ::testing::Test {
 protected:
  HevmCoreTest() : core_(0, clock_) {
    base_.set_balance(addr(0xAA), u256{1} << 80);
    base_.set_code(addr(0x10), workload::erc20_code());
    base_.set_storage(addr(0x10), addr(0xAA).to_u256(), u256{100000});
  }

  evm::Transaction transfer_tx() {
    evm::Transaction tx;
    tx.from = addr(0xAA);
    tx.to = addr(0x10);
    tx.data = workload::erc20_transfer(addr(0xBB), u256{50});
    tx.gas_limit = 500'000;
    return tx;
  }

  sim::SimClock clock_;
  state::WorldState base_;
  HevmCore core_;
};

TEST_F(HevmCoreTest, ExecutesBundleAndReportsTraces) {
  core_.assign(base_, evm::BlockContext{}, key(), 7);
  const BundleReport report = core_.execute_bundle({transfer_tx(), transfer_tx()});
  ASSERT_EQ(report.transactions.size(), 2u);
  EXPECT_EQ(report.transactions[0].status, evm::VmStatus::kSuccess);
  EXPECT_EQ(report.transactions[1].status, evm::VmStatus::kSuccess);
  EXPECT_GT(report.transactions[0].gas_used, 21000u);
  EXPECT_GT(report.instructions, 0u);
  EXPECT_GT(report.sim_time_ns, 0u);
  EXPECT_FALSE(report.aborted);
  // Traces report the token transfer's storage writes.
  EXPECT_FALSE(report.transactions[0].storage_writes.empty());
  ASSERT_EQ(report.transactions[0].logs.size(), 1u);
  // Txs in a bundle see each other: second transfer moved another 50.
  EXPECT_EQ(core_.overlay().storage(addr(0x10), addr(0xBB).to_u256()), u256{100});
}

TEST_F(HevmCoreTest, DedicatedCoreRefusesDoubleAssignment) {
  core_.assign(base_, evm::BlockContext{}, key(), 1);
  EXPECT_TRUE(core_.busy());
  EXPECT_THROW(core_.assign(base_, evm::BlockContext{}, key(), 2), UsageError);
  core_.release();
  EXPECT_FALSE(core_.busy());
  EXPECT_NO_THROW(core_.assign(base_, evm::BlockContext{}, key(), 3));
}

TEST_F(HevmCoreTest, ReleaseDiscardsWorldStateChanges) {
  core_.assign(base_, evm::BlockContext{}, key(), 1);
  core_.execute_bundle({transfer_tx()});
  core_.release();
  // Fig. 3 step 10: pre-execution writes never persist.
  EXPECT_EQ(base_.storage(addr(0x10), addr(0xBB).to_u256()), u256{});
  EXPECT_THROW(core_.overlay(), UsageError);
  EXPECT_THROW(core_.execute_bundle({transfer_tx()}), UsageError);
}

TEST_F(HevmCoreTest, SimTimeScalesWithWork) {
  core_.assign(base_, evm::BlockContext{}, key(), 1);
  const auto small = core_.execute_bundle({transfer_tx()});
  core_.release();
  core_.assign(base_, evm::BlockContext{}, key(), 1);
  std::vector<evm::Transaction> big(8, transfer_tx());
  const auto large = core_.execute_bundle(big);
  core_.release();
  EXPECT_GT(large.sim_time_ns, small.sim_time_ns);
  EXPECT_GT(large.instructions, small.instructions);
}

TEST_F(HevmCoreTest, MemoryOverflowAbortsBundle) {
  HevmCore::Config config;
  config.l2.l2_bytes = 64 * 1024;  // tiny layer 2: limit = 32 KB per frame
  HevmCore small_core(1, clock_, config);
  base_.set_code(addr(0x20), evm::assemble("PUSH1 1 PUSH3 0x00ffff MSTORE STOP"));
  evm::Transaction tx;
  tx.from = addr(0xAA);
  tx.to = addr(0x20);
  tx.gas_limit = 10'000'000;
  small_core.assign(base_, evm::BlockContext{}, key(), 1);
  const auto report = small_core.execute_bundle({tx, transfer_tx()});
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.transactions[0].status, evm::VmStatus::kMemoryOverflow);
  // The rest of the bundle is not executed.
  EXPECT_EQ(report.transactions.size(), 1u);
}

TEST_F(HevmCoreTest, StepTracesRecordedWhenEnabled) {
  HevmCore::Config config;
  config.record_steps = true;
  HevmCore tracing_core(2, clock_, config);
  tracing_core.assign(base_, evm::BlockContext{}, key(), 1);
  const auto report = tracing_core.execute_bundle({transfer_tx()});
  EXPECT_FALSE(report.transactions[0].steps.empty());
}

// --- §VI-B correctness methodology: HEVM trace == software-node trace ---

TEST_F(HevmCoreTest, HevmTraceMatchesGethRoleTrace) {
  HevmCore::Config config;
  config.record_steps = true;
  HevmCore hevm_core(3, clock_, config);
  hevm_core.assign(base_, evm::BlockContext{}, key(), 1);
  const auto hevm_report = hevm_core.execute_bundle({transfer_tx()});

  sim::SimClock geth_clock;
  GethRole geth(base_, evm::BlockContext{}, geth_clock, /*record_steps=*/true);
  const auto geth_result = geth.execute(transfer_tx());

  // Step-by-step equality: PC, opcode, gas, depth, stack size.
  ASSERT_EQ(hevm_report.transactions[0].steps.size(), geth_result.steps.size());
  for (size_t i = 0; i < geth_result.steps.size(); ++i) {
    ASSERT_EQ(hevm_report.transactions[0].steps[i], geth_result.steps[i]) << "step " << i;
  }
  EXPECT_EQ(hevm_report.transactions[0].gas_used, geth_result.tx.gas_used);
}

TEST_F(HevmCoreTest, FastEngineBundleBitIdenticalToReference) {
  // The fast-dispatch engine must be invisible from the HEVM's vantage:
  // same traces, same gas, same cycle accounting, same memory-layer events.
  // The HEVM always attaches its observer chain, so kFast runs the decoded
  // per-opcode mode (DESIGN.md §14).
  auto run = [&](evm::EngineKind engine) {
    HevmCore::Config config;
    config.record_steps = true;
    config.engine = engine;
    sim::SimClock clock;
    HevmCore core(4, clock, config);
    core.assign(base_, evm::BlockContext{}, key(), 7);
    return core.execute_bundle({transfer_tx(), transfer_tx()});
  };
  const BundleReport ref = run(evm::EngineKind::kReference);
  const BundleReport fast = run(evm::EngineKind::kFast);

  ASSERT_EQ(ref.transactions.size(), fast.transactions.size());
  for (size_t t = 0; t < ref.transactions.size(); ++t) {
    const TxTraceReport& a = ref.transactions[t];
    const TxTraceReport& b = fast.transactions[t];
    EXPECT_EQ(a.status, b.status) << "tx " << t;
    EXPECT_EQ(a.gas_used, b.gas_used) << "tx " << t;
    EXPECT_EQ(a.return_data, b.return_data) << "tx " << t;
    EXPECT_EQ(a.sim_time_ns, b.sim_time_ns) << "tx " << t;
    ASSERT_EQ(a.storage_writes.size(), b.storage_writes.size()) << "tx " << t;
    ASSERT_EQ(a.logs.size(), b.logs.size()) << "tx " << t;
    ASSERT_EQ(a.steps.size(), b.steps.size()) << "tx " << t;
    for (size_t i = 0; i < a.steps.size(); ++i) {
      ASSERT_EQ(a.steps[i], b.steps[i]) << "tx " << t << " step " << i;
    }
  }
  EXPECT_EQ(ref.final_balances, fast.final_balances);
  EXPECT_EQ(ref.sim_time_ns, fast.sim_time_ns);
  EXPECT_EQ(ref.instructions, fast.instructions);
  EXPECT_EQ(ref.swap_events.size(), fast.swap_events.size());
  EXPECT_EQ(ref.aborted, fast.aborted);
}

// --- baselines ---

TEST_F(HevmCoreTest, GethRoleFasterPerOpButSameSemantics) {
  sim::SimClock geth_clock, tsc_clock;
  GethRole geth(base_, evm::BlockContext{}, geth_clock);
  TscVeeRole tsc(base_, evm::BlockContext{}, tsc_clock);
  const auto geth_result = geth.execute(transfer_tx());
  const auto tsc_result = tsc.execute(transfer_tx());
  EXPECT_EQ(geth_result.tx.status, evm::VmStatus::kSuccess);
  EXPECT_EQ(tsc_result.tx.status, evm::VmStatus::kSuccess);
  EXPECT_EQ(geth_result.tx.gas_used, tsc_result.tx.gas_used);
  EXPECT_GT(geth_result.sim_time_ns, 0u);
  EXPECT_GT(tsc_result.sim_time_ns, 0u);
}

// --- resource model (§VI-A) ---

TEST(ResourceModel, MatchesPaperTotals) {
  const auto totals = ResourceModel::hevm_total();
  EXPECT_EQ(totals.luts, 103388u);
  EXPECT_EQ(totals.ffs, 37104u);
  EXPECT_EQ(totals.bram_kb, 509u);
}

TEST(ResourceModel, ThreeHevmsPerChip) {
  EXPECT_EQ(ResourceModel::max_hevms_per_chip(), 3);
  // A hypothetical chip with double the LUTs fits more.
  ResourceModel::Chip big;
  big.luts *= 2;
  EXPECT_GE(ResourceModel::max_hevms_per_chip(big), 6);
}

TEST(ResourceModel, HypervisorFitsOnChipMemory) {
  const ResourceModel::HypervisorMemory mem;
  EXPECT_EQ(mem.total_kb(), 248u);
  EXPECT_TRUE(mem.fits());
}

}  // namespace
}  // namespace hardtape::hevm
