// Tests for RLP and the Merkle Patricia Trie, including the Merkle proof
// path used when synchronizing blocks into the ORAM (threat A6).
#include <gtest/gtest.h>

#include <map>

#include "common/errors.hpp"
#include "common/random.hpp"
#include "crypto/keccak.hpp"
#include "trie/mpt.hpp"
#include "trie/rlp.hpp"

namespace hardtape::trie {
namespace {

Bytes str(std::string_view s) { return Bytes(s.begin(), s.end()); }

// --- RLP ---

TEST(Rlp, KnownEncodings) {
  // Canonical examples from the Ethereum wiki.
  EXPECT_EQ(to_hex(rlp_encode_bytes(str("dog"))), "83646f67");
  EXPECT_EQ(to_hex(rlp_encode_bytes(BytesView{})), "80");
  EXPECT_EQ(to_hex(rlp_encode_bytes(Bytes{0x0f})), "0f");
  EXPECT_EQ(to_hex(rlp_encode_bytes(Bytes{0x04, 0x00})), "820400");
  // ["cat", "dog"]
  EXPECT_EQ(to_hex(rlp_encode_list({rlp_encode_bytes(str("cat")), rlp_encode_bytes(str("dog"))})),
            "c88363617483646f67");
  // Empty list.
  EXPECT_EQ(to_hex(rlp_encode_list({})), "c0");
  // Long string (56 bytes) switches to length-of-length form.
  const Bytes long_str(56, 'a');
  const Bytes enc = rlp_encode_bytes(long_str);
  EXPECT_EQ(enc[0], 0xb8);
  EXPECT_EQ(enc[1], 56);
}

TEST(Rlp, IntegerEncoding) {
  EXPECT_EQ(to_hex(rlp_encode_u256(u256{})), "80");
  EXPECT_EQ(to_hex(rlp_encode_u256(u256{15})), "0f");
  EXPECT_EQ(to_hex(rlp_encode_u256(u256{1024})), "820400");
  // Minimal-length big-endian: no leading zeros.
  const Bytes enc = rlp_encode_u256(u256{1} << 248);
  EXPECT_EQ(enc.size(), 33u);
}

TEST(Rlp, DecodeRoundTrip) {
  RlpList inner;
  inner.emplace_back(str("cat"));
  inner.emplace_back(str("dog"));
  RlpList outer;
  outer.emplace_back(str("hello world, this is a longer string exceeding fifty-five bytes!!"));
  outer.emplace_back(std::move(inner));
  outer.emplace_back(Bytes{});
  const RlpItem original{std::move(outer)};

  const Bytes encoded = rlp_encode(original);
  const RlpItem decoded = rlp_decode(encoded);
  ASSERT_TRUE(decoded.is_list());
  ASSERT_EQ(decoded.list().size(), 3u);
  EXPECT_EQ(decoded.list()[1].list()[0].bytes(), str("cat"));
  EXPECT_EQ(decoded.list()[2].bytes(), Bytes{});
}

TEST(Rlp, DecodeRejectsMalformed) {
  EXPECT_THROW(rlp_decode(Bytes{}), DecodingError);
  EXPECT_THROW(rlp_decode(Bytes{0x83, 'a', 'b'}), DecodingError);       // truncated
  EXPECT_THROW(rlp_decode(Bytes{0x81, 0x05}), DecodingError);           // non-canonical single byte
  EXPECT_THROW(rlp_decode(Bytes{0x0f, 0x0f}), DecodingError);           // trailing bytes
  EXPECT_THROW(rlp_decode(Bytes{0xb8, 0x01, 0xff}), DecodingError);     // non-canonical length < 56
  EXPECT_THROW(rlp_decode(Bytes{0xc2, 0x83, 'a'}), DecodingError);      // list item overruns
}

// --- MPT ---

TEST(Mpt, EmptyTrieRoot) {
  MerklePatriciaTrie trie;
  // keccak256(rlp("")) — the canonical Ethereum empty-trie root.
  EXPECT_EQ(trie.root_hash().hex(),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.get(str("missing")).has_value());
}

TEST(Mpt, PutGetSingle) {
  MerklePatriciaTrie trie;
  trie.put(str("key"), str("value"));
  EXPECT_EQ(trie.get(str("key")), str("value"));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_FALSE(trie.get(str("kex")).has_value());
}

TEST(Mpt, OverwriteChangesRootDeterministically) {
  MerklePatriciaTrie trie;
  trie.put(str("a"), str("1"));
  const H256 r1 = trie.root_hash();
  trie.put(str("a"), str("2"));
  EXPECT_NE(trie.root_hash(), r1);
  trie.put(str("a"), str("1"));
  EXPECT_EQ(trie.root_hash(), r1);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(Mpt, RootIsInsertionOrderIndependent) {
  // The defining property of a Merkle trie: content-addressed state.
  std::vector<std::pair<Bytes, Bytes>> entries;
  Random rng(21);
  for (int i = 0; i < 50; ++i) {
    entries.emplace_back(rng.bytes(32), rng.bytes(1 + rng.uniform(40)));
  }
  MerklePatriciaTrie forward, backward;
  for (const auto& [k, v] : entries) forward.put(k, v);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) backward.put(it->first, it->second);
  EXPECT_EQ(forward.root_hash(), backward.root_hash());
}

TEST(Mpt, SharedPrefixesSplitCorrectly) {
  MerklePatriciaTrie trie;
  trie.put(str("doge"), str("coin"));
  trie.put(str("dog"), str("puppy"));
  trie.put(str("do"), str("verb"));
  trie.put(str("horse"), str("stallion"));
  EXPECT_EQ(trie.get(str("do")), str("verb"));
  EXPECT_EQ(trie.get(str("dog")), str("puppy"));
  EXPECT_EQ(trie.get(str("doge")), str("coin"));
  EXPECT_EQ(trie.get(str("horse")), str("stallion"));
  EXPECT_EQ(trie.size(), 4u);
}

TEST(Mpt, EraseRestoresPriorRoot) {
  MerklePatriciaTrie trie;
  trie.put(str("alpha"), str("1"));
  trie.put(str("beta"), str("2"));
  const H256 two_root = trie.root_hash();
  trie.put(str("gamma"), str("3"));
  EXPECT_TRUE(trie.erase(str("gamma")));
  EXPECT_EQ(trie.root_hash(), two_root);
  EXPECT_FALSE(trie.erase(str("gamma")));
  EXPECT_EQ(trie.size(), 2u);
}

TEST(Mpt, EraseToEmpty) {
  MerklePatriciaTrie trie;
  trie.put(str("x"), str("1"));
  EXPECT_TRUE(trie.erase(str("x")));
  EXPECT_EQ(trie.root_hash(), MerklePatriciaTrie::empty_root_hash());
  EXPECT_TRUE(trie.empty());
}

TEST(Mpt, RandomizedAgainstReferenceMap) {
  // Property test: the trie must agree with std::map under a random workload
  // of puts, overwrites and erases, and equal contents must give equal roots.
  Random rng(1234);
  MerklePatriciaTrie trie;
  std::map<Bytes, Bytes> reference;
  for (int step = 0; step < 600; ++step) {
    const uint64_t op = rng.uniform(10);
    Bytes key = rng.bytes(1 + rng.uniform(6));  // short keys force deep sharing
    if (op < 6) {
      Bytes value = rng.bytes(1 + rng.uniform(50));
      trie.put(key, value);
      reference[key] = value;
    } else if (op < 9 && !reference.empty()) {
      // Erase an existing key (pick pseudo-randomly).
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.uniform(reference.size())));
      EXPECT_TRUE(trie.erase(it->first));
      reference.erase(it);
    } else {
      EXPECT_FALSE(trie.erase(key) && !reference.contains(key));
      reference.erase(key);
    }
  }
  EXPECT_EQ(trie.size(), reference.size());
  for (const auto& [k, v] : reference) {
    ASSERT_EQ(trie.get(k), v) << to_hex(k);
  }
  // Rebuild from scratch: roots must match.
  MerklePatriciaTrie rebuilt;
  for (const auto& [k, v] : reference) rebuilt.put(k, v);
  EXPECT_EQ(rebuilt.root_hash(), trie.root_hash());
}

TEST(Mpt, ProofOfMembership) {
  MerklePatriciaTrie trie;
  Random rng(9);
  std::vector<Bytes> keys;
  for (int i = 0; i < 40; ++i) {
    Bytes key = rng.bytes(32);
    trie.put(key, rng.bytes(20));
    keys.push_back(std::move(key));
  }
  const H256 root = trie.root_hash();
  for (const Bytes& key : keys) {
    const MerkleProof proof = trie.prove(key);
    const auto result = MerklePatriciaTrie::verify_proof(root, key, proof);
    EXPECT_TRUE(result.valid);
    ASSERT_TRUE(result.value.has_value());
    EXPECT_EQ(*result.value, *trie.get(key));
  }
}

TEST(Mpt, ProofOfAbsence) {
  MerklePatriciaTrie trie;
  Random rng(10);
  for (int i = 0; i < 40; ++i) trie.put(rng.bytes(32), str("v"));
  const H256 root = trie.root_hash();
  for (int i = 0; i < 20; ++i) {
    const Bytes absent_key = rng.bytes(32);
    const MerkleProof proof = trie.prove(absent_key);
    const auto result = MerklePatriciaTrie::verify_proof(root, absent_key, proof);
    EXPECT_TRUE(result.valid);
    EXPECT_FALSE(result.value.has_value());
  }
}

TEST(Mpt, ProofRejectsTampering) {
  MerklePatriciaTrie trie;
  trie.put(str("account1"), str("100"));
  trie.put(str("account2"), str("200"));
  const H256 root = trie.root_hash();
  MerkleProof proof = trie.prove(str("account1"));
  ASSERT_FALSE(proof.empty());

  // Bit-flip in any node invalidates the proof.
  for (size_t i = 0; i < proof.size(); ++i) {
    MerkleProof bad = proof;
    bad[i][bad[i].size() / 2] ^= 0x01;
    EXPECT_FALSE(MerklePatriciaTrie::verify_proof(root, str("account1"), bad).valid);
  }
  // Proof against a different root fails.
  const H256 other_root = crypto::keccak256("not the root");
  EXPECT_FALSE(MerklePatriciaTrie::verify_proof(other_root, str("account1"), proof).valid);
  // A membership proof cannot be replayed for a different key to fake a value.
  const auto replay = MerklePatriciaTrie::verify_proof(root, str("account2"), proof);
  EXPECT_FALSE(replay.valid && replay.value.has_value() && *replay.value == str("100"));
}

TEST(Mpt, ProofAgainstEmptyTrie) {
  MerklePatriciaTrie trie;
  const MerkleProof proof = trie.prove(str("anything"));
  EXPECT_TRUE(proof.empty());
  const auto result =
      MerklePatriciaTrie::verify_proof(MerklePatriciaTrie::empty_root_hash(), str("anything"), proof);
  EXPECT_TRUE(result.valid);
  EXPECT_FALSE(result.value.has_value());
  // Empty proof against a non-empty root is invalid.
  trie.put(str("k"), str("v"));
  EXPECT_FALSE(MerklePatriciaTrie::verify_proof(trie.root_hash(), str("k"), {}).valid);
}

TEST(Mpt, RejectsEmptyValue) {
  MerklePatriciaTrie trie;
  EXPECT_THROW(trie.put(str("k"), BytesView{}), UsageError);
}

TEST(Mpt, EthereumStyle32ByteKeys) {
  // World-state usage: keccak-hashed keys, RLP-encoded values.
  MerklePatriciaTrie trie;
  Random rng(77);
  for (int i = 0; i < 100; ++i) {
    const H256 key = crypto::keccak256(rng.bytes(20));
    trie.put(key.view(), rlp_encode_u256(u256{rng.next_u64()}));
  }
  EXPECT_EQ(trie.size(), 100u);
}

}  // namespace
}  // namespace hardtape::trie
