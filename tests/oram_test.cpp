// Path ORAM and paged-world-state tests, including the obliviousness
// property checks backing threat A7 and integrity checks backing A6.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "crypto/keccak.hpp"
#include "oram/epoch.hpp"
#include "oram/paged_state.hpp"
#include "oram/path_oram.hpp"
#include "oram/sharded.hpp"

namespace hardtape::oram {
namespace {

crypto::AesKey128 test_key() {
  crypto::AesKey128 key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i * 7 + 1);
  return key;
}

BlockId bid(uint64_t n) { return crypto::keccak256(u256{n}.to_be_bytes_vec()).to_u256(); }

class OramTest : public ::testing::TestWithParam<SealMode> {
 protected:
  OramTest()
      : server_(OramConfig{.block_size = 64, .bucket_capacity = 4, .capacity = 256,
                           .max_stash_blocks = 64}),
        client_(server_, test_key(), /*rng_seed=*/42, GetParam()) {}

  OramServer server_;
  OramClient client_;
};

INSTANTIATE_TEST_SUITE_P(Seals, OramTest,
                         ::testing::Values(SealMode::kAesGcm, SealMode::kChaChaHmac),
                         [](const auto& info) {
                           return info.param == SealMode::kAesGcm ? "AesGcm" : "ChaChaHmac";
                         });

TEST_P(OramTest, WriteReadRoundTrip) {
  const Bytes data = {1, 2, 3, 4, 5};
  client_.write(bid(1), data);
  const auto back = client_.read(bid(1));
  ASSERT_TRUE(back.has_value());
  // Zero-padded to block size.
  EXPECT_EQ(back->size(), 64u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), back->begin()));
}

TEST_P(OramTest, ReadUnknownIdReturnsNullButStillAccesses) {
  const uint64_t before = server_.access_count();
  EXPECT_FALSE(client_.read(bid(999)).has_value());
  // A dummy access happened: absent keys are not silent.
  EXPECT_EQ(server_.access_count(), before + 1);
}

TEST_P(OramTest, OverwriteUpdates) {
  client_.write(bid(5), Bytes{0xaa});
  client_.write(bid(5), Bytes{0xbb});
  const auto back = client_.read(bid(5));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ((*back)[0], 0xbb);
  EXPECT_EQ(client_.block_count(), 1u);
}

TEST_P(OramTest, ManyBlocksSurviveChurn) {
  // Fill to a reasonable load and hammer with random reads/writes; every
  // block must retain its latest value (no loss through stash/evict cycles).
  Random rng(7);
  std::unordered_map<uint64_t, uint8_t> expected;
  for (uint64_t i = 0; i < 128; ++i) {
    const uint8_t v = static_cast<uint8_t>(rng.next_u64());
    client_.write(bid(i), Bytes{v});
    expected[i] = v;
  }
  for (int round = 0; round < 500; ++round) {
    const uint64_t i = rng.uniform(128);
    if (rng.uniform(2) == 0) {
      const uint8_t v = static_cast<uint8_t>(rng.next_u64());
      client_.write(bid(i), Bytes{v});
      expected[i] = v;
    } else {
      const auto back = client_.read(bid(i));
      ASSERT_TRUE(back.has_value()) << "lost block " << i;
      EXPECT_EQ((*back)[0], expected[i]) << "stale block " << i;
    }
  }
  for (const auto& [i, v] : expected) {
    const auto back = client_.read(bid(i));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ((*back)[0], v);
  }
  EXPECT_FALSE(client_.stash_overflowed());
}

TEST_P(OramTest, StashStaysBounded) {
  Random rng(3);
  for (uint64_t i = 0; i < 200; ++i) client_.write(bid(i), Bytes{1});
  for (int i = 0; i < 1000; ++i) client_.read(bid(rng.uniform(200)));
  // Theory: stash is O(log n) w.h.p. for Z=4. Our bound is generous.
  EXPECT_LE(client_.stash_high_water(), 64u);
  EXPECT_FALSE(client_.stash_overflowed());
}

TEST_P(OramTest, ObservedLeavesAreUniform) {
  // The adversary's entire view is the leaf sequence; repeatedly accessing
  // the SAME block must still produce uniform leaves (the remap step).
  client_.write(bid(1), Bytes{1});
  server_.clear_observations();
  constexpr int kAccesses = 4096;
  for (int i = 0; i < kAccesses; ++i) client_.read(bid(1));

  const auto& leaves = server_.observed_leaves();
  ASSERT_EQ(leaves.size(), static_cast<size_t>(kAccesses));
  // Chi-squared uniformity test over the leaf space.
  const size_t buckets = server_.leaf_count();
  std::vector<int> counts(buckets, 0);
  for (uint64_t leaf : leaves) counts[leaf]++;
  const double expected = static_cast<double>(kAccesses) / static_cast<double>(buckets);
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // dof = buckets-1 = 255; 99.9th percentile ~ 330. Flaky-proof margin.
  EXPECT_LT(chi2, 360.0) << "leaf sequence not uniform";
}

TEST_P(OramTest, AccessPatternIndependentOfTarget) {
  // Correlation check: the leaf observed at access t must not predict the
  // leaf at access t+1 when the same block is accessed twice in a row.
  client_.write(bid(1), Bytes{1});
  client_.write(bid(2), Bytes{2});
  server_.clear_observations();
  for (int i = 0; i < 2000; ++i) {
    client_.read(bid(1));
    client_.read(bid(1));  // back-to-back same block
  }
  const auto& leaves = server_.observed_leaves();
  // Count exact repeats at consecutive positions; uniform expectation 1/L.
  int repeats = 0;
  for (size_t i = 1; i < leaves.size(); i += 2) {
    if (leaves[i] == leaves[i - 1]) ++repeats;
  }
  const double expected = 2000.0 / static_cast<double>(server_.leaf_count());
  EXPECT_LT(repeats, expected * 4 + 16);  // no correlation blowup
}

TEST_P(OramTest, ResponsesAreFixedSize) {
  // Every path read returns exactly (depth+1) * Z slots regardless of what
  // is stored — the uniform-response property.
  client_.write(bid(1), Bytes{1});
  const auto path = server_.read_path(0);
  EXPECT_EQ(path.size(), (server_.depth() + 1) * 4);
  EXPECT_GT(server_.bytes_per_access(), 0u);
}

TEST_P(OramTest, TamperedSlotDetected) {
  client_.write(bid(1), Bytes{1});
  // Corrupt every slot the server holds; the next real access must throw.
  for (int i = 0; i < 64; ++i) {
    auto path = server_.read_path(static_cast<uint64_t>(i) % server_.leaf_count());
    bool corrupted = false;
    for (auto& slot : path) {
      if (!slot.ciphertext.empty()) {
        slot.ciphertext[0] ^= 1;
        corrupted = true;
      }
    }
    server_.write_path(static_cast<uint64_t>(i) % server_.leaf_count(), std::move(path));
    if (corrupted) break;
  }
  EXPECT_THROW(client_.read(bid(1)), HardtapeError);
}

TEST_P(OramTest, SealRoundTripAndTamper) {
  Random rng(1);
  const auto key = test_key();
  const Bytes pt = rng.bytes(96);
  const SealedSlot slot = seal_slot(GetParam(), key, rng, pt);
  EXPECT_NE(slot.ciphertext, pt);  // actually encrypted
  const auto back = open_slot(GetParam(), key, slot);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pt);
  SealedSlot bad = slot;
  bad.ciphertext[5] ^= 1;
  EXPECT_FALSE(open_slot(GetParam(), key, bad).has_value());
  SealedSlot bad_tag = slot;
  bad_tag.tag[0] ^= 1;
  EXPECT_FALSE(open_slot(GetParam(), key, bad_tag).has_value());
}

TEST_P(OramTest, ReEncryptionChangesCiphertext) {
  // Reading the same block twice must leave different ciphertexts on the
  // server (randomized re-encryption) even though the data is unchanged.
  client_.write(bid(1), Bytes{1});
  auto snapshot1 = server_.read_path(0);
  client_.read(bid(1));
  client_.read(bid(1));
  auto snapshot2 = server_.read_path(0);
  // At least the root bucket (shared by all paths) must have been resealed.
  bool any_changed = false;
  for (size_t i = 0; i < 4; ++i) {  // root bucket slots
    if (snapshot1[i].ciphertext != snapshot2[i].ciphertext ||
        snapshot1[i].nonce != snapshot2[i].nonce) {
      any_changed = true;
    }
  }
  EXPECT_TRUE(any_changed);
}

TEST(OramServer, GeometryAndValidation) {
  OramServer server(OramConfig{.block_size = 32, .bucket_capacity = 4, .capacity = 100});
  EXPECT_EQ(server.leaf_count(), 128u);  // rounded up to a power of two
  EXPECT_EQ(server.depth(), 7u);
  EXPECT_EQ(server.bucket_count(), 255u);
  EXPECT_THROW(server.read_path(128), UsageError);
  EXPECT_THROW(server.write_path(0, {}), UsageError);
  EXPECT_THROW(OramServer(OramConfig{.capacity = 0}), UsageError);
}

TEST(OramClient, RejectsOversizedBlock) {
  OramServer server(OramConfig{.block_size = 32, .capacity = 16});
  OramClient client(server, test_key(), 1);
  EXPECT_THROW(client.write(bid(1), Bytes(33, 0)), UsageError);
}

TEST(OramClient, BulkRestoreRoundTripAndFollowOnAccesses) {
  OramServer server(OramConfig{.block_size = 64, .bucket_capacity = 4, .capacity = 256,
                               .max_stash_blocks = 64});
  OramClient client(server, test_key(), 42, SealMode::kChaChaHmac);
  std::vector<std::pair<BlockId, Bytes>> pages;
  for (uint64_t i = 0; i < 100; ++i) {
    pages.emplace_back(bid(i), Bytes(8, static_cast<uint8_t>(i)));
  }
  int installs = 0;
  client.set_install_hook([&](const BlockId&, BytesView, uint64_t) { ++installs; });
  client.bulk_restore(pages);
  EXPECT_EQ(installs, 0);  // a restore is not an install: nothing to journal
  EXPECT_EQ(server.access_count(), 0u);  // and not an access: no observed paths
  EXPECT_EQ(client.block_count(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    const auto data = client.read(bid(i));
    ASSERT_TRUE(data.has_value()) << "block " << i;
    EXPECT_EQ(Bytes(data->begin(), data->begin() + 8), Bytes(8, static_cast<uint8_t>(i)));
  }
  // Restored blocks stay healthy under normal accesses (evict/remap churn).
  client.write(bid(3), Bytes(8, 0xaa));
  const auto updated = client.read(bid(3));
  ASSERT_TRUE(updated.has_value());
  EXPECT_EQ(Bytes(updated->begin(), updated->begin() + 8), Bytes(8, 0xaa));
  EXPECT_FALSE(client.stash_overflowed());
}

TEST(OramClient, BulkRestoreRequiresFreshClient) {
  OramServer server(OramConfig{.block_size = 32, .capacity = 16});
  OramClient client(server, test_key(), 1, SealMode::kChaChaHmac);
  client.write(bid(1), Bytes{1});
  EXPECT_THROW(client.bulk_restore({{bid(2), Bytes{2}}}), UsageError);
}

TEST(OramServer, BulkLoadShapeValidated) {
  OramServer server(OramConfig{.block_size = 32, .bucket_capacity = 4, .capacity = 16});
  EXPECT_THROW(server.load_slots({}), UsageError);
}

TEST(OramClient, AccessHookFires) {
  OramServer server(OramConfig{.block_size = 32, .capacity = 16});
  OramClient client(server, test_key(), 1, SealMode::kChaChaHmac);
  int hooks = 0;
  client.set_access_hook([&] { ++hooks; });
  client.write(bid(1), Bytes{1});
  client.read(bid(1));
  client.read(bid(2));  // dummy access also counts
  EXPECT_EQ(hooks, 3);
}

// --- paged world state ---

Address acct(uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

TEST(PagedState, PageIdsAreDistinct) {
  const auto a = page_id(PageType::kAccountMeta, acct(1), u256{});
  const auto b = page_id(PageType::kStorageGroup, acct(1), u256{});
  const auto c = page_id(PageType::kCode, acct(1), u256{});
  const auto d = page_id(PageType::kCode, acct(1), u256{1});
  const auto e = page_id(PageType::kCode, acct(2), u256{});
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(c, d);
  EXPECT_NE(c, e);
}

TEST(PagedState, AccountMetaPageRoundTrip) {
  AccountMetaPage meta;
  meta.balance = u256::from_string("123456789123456789");
  meta.nonce = 42;
  meta.code_size = 12345;
  meta.code_hash = crypto::keccak256("code");
  const Bytes page = meta.serialize();
  EXPECT_EQ(page.size(), kPageSize);
  const AccountMetaPage back = AccountMetaPage::deserialize(page);
  EXPECT_EQ(back.balance, meta.balance);
  EXPECT_EQ(back.nonce, meta.nonce);
  EXPECT_EQ(back.code_size, meta.code_size);
  EXPECT_EQ(back.code_hash, meta.code_hash);
}

TEST(PagedState, StorageGroupPageRoundTrip) {
  StorageGroupPage group;
  for (size_t i = 0; i < kRecordsPerPage; ++i) group.values[i] = u256{i * 17};
  const Bytes page = group.serialize();
  EXPECT_EQ(page.size(), kPageSize);
  const StorageGroupPage back = StorageGroupPage::deserialize(page);
  EXPECT_EQ(back.values, group.values);
}

TEST(PagedState, BuildPagesGroupsConsecutiveKeys) {
  state::WorldState world;
  // Keys 0..40 -> groups 0 and 1. Key 1000 -> its own group.
  for (uint64_t k = 0; k <= 40; ++k) world.set_storage(acct(1), u256{k}, u256{k + 1});
  world.set_storage(acct(1), u256{1000}, u256{7});
  const PageCensus c = census(world);
  EXPECT_EQ(c.account_pages, 1u);
  EXPECT_EQ(c.storage_pages, 3u);  // groups 0, 1, 31 (1000/32)
  EXPECT_EQ(c.code_pages, 0u);
  EXPECT_EQ(build_pages(world).size(), c.total());
}

TEST(PagedState, BuildPagesSplitsCode) {
  state::WorldState world;
  world.set_code(acct(2), Bytes(2500, 0x5b));  // 3 pages
  const PageCensus c = census(world);
  EXPECT_EQ(c.code_pages, 3u);
  EXPECT_EQ(c.account_pages, 1u);
}

class OramWorldStateTest : public ::testing::Test {
 protected:
  OramWorldStateTest()
      : server_(OramConfig{.block_size = kPageSize, .capacity = 256}),
        client_(server_, test_key(), 11, SealMode::kChaChaHmac),
        oram_state_(client_) {
    world_.set_balance(acct(1), u256{5555});
    world_.set_nonce(acct(1), 3);
    world_.set_storage(acct(1), u256{7}, u256{777});
    world_.set_storage(acct(1), u256{39}, u256{3939});
    code_ = Bytes(1500, 0);
    for (size_t i = 0; i < code_.size(); ++i) code_[i] = static_cast<uint8_t>(i);
    world_.set_code(acct(1), code_);
    sync_world_state(world_, client_);
  }

  state::WorldState world_;
  OramServer server_;
  OramClient client_;
  OramWorldState oram_state_;
  Bytes code_;
};

TEST_F(OramWorldStateTest, AccountThroughOram) {
  const auto account = oram_state_.account(acct(1));
  ASSERT_TRUE(account.has_value());
  EXPECT_EQ(account->balance, u256{5555});
  EXPECT_EQ(account->nonce, 3u);
  EXPECT_FALSE(oram_state_.account(acct(9)).has_value());
}

TEST_F(OramWorldStateTest, StorageThroughOram) {
  EXPECT_EQ(oram_state_.storage(acct(1), u256{7}), u256{777});
  EXPECT_EQ(oram_state_.storage(acct(1), u256{39}), u256{3939});
  // Same group as key 7 but never written: zero.
  EXPECT_EQ(oram_state_.storage(acct(1), u256{8}), u256{});
  // Unknown group: zero (after a dummy access).
  EXPECT_EQ(oram_state_.storage(acct(1), u256{100000}), u256{});
}

TEST_F(OramWorldStateTest, CodeReassembledFromPages) {
  EXPECT_EQ(oram_state_.code(acct(1)), code_);
  EXPECT_TRUE(oram_state_.code(acct(9)).empty());
}

TEST_F(OramWorldStateTest, CodePageDirectAccess) {
  const auto page0 = oram_state_.code_page(acct(1), 0);
  ASSERT_TRUE(page0.has_value());
  EXPECT_TRUE(std::equal(code_.begin(), code_.begin() + 1024, page0->begin()));
}

TEST_F(OramWorldStateTest, QueryHookSeesUniformPages) {
  std::vector<PageType> types;
  oram_state_.set_query_hook(
      [&](PageType t, const Address&, const u256&) { types.push_back(t); });
  oram_state_.storage(acct(1), u256{7});
  oram_state_.code(acct(1));
  // storage: 1 query; code: 1 meta + 2 code pages.
  ASSERT_EQ(types.size(), 4u);
  EXPECT_EQ(types[0], PageType::kStorageGroup);
  EXPECT_EQ(types[1], PageType::kAccountMeta);
  EXPECT_EQ(types[2], PageType::kCode);
  EXPECT_EQ(types[3], PageType::kCode);
}

TEST_F(OramWorldStateTest, EveryQueryIsOnePathAccess) {
  // The uniform-response property end-to-end: each world-state query maps to
  // exactly one ORAM access (same observable shape for all types).
  const uint64_t before = server_.access_count();
  oram_state_.storage(acct(1), u256{7});
  EXPECT_EQ(server_.access_count(), before + 1);
  oram_state_.account(acct(1));
  EXPECT_EQ(server_.access_count(), before + 2);
}

// --- EpochRegistry edge cases (satellite: direct unit tests, not via the
// engine paths). The registry is the chip-side source of truth recovery must
// agree with, so its pass-lifecycle rejections have to hold standalone. ---

TEST(EpochRegistryEdge, AbortAfterTagReleasesPages) {
  EpochRegistry reg;
  reg.begin(crypto::keccak256("e0"), 1);
  reg.tag(u256{10});
  reg.tag(u256{11});
  reg.abort();
  // The aborted pass never happened: no tags, no committed epoch.
  EXPECT_FALSE(reg.page_epoch(u256{10}).has_value());
  EXPECT_FALSE(reg.page_epoch(u256{11}).has_value());
  EXPECT_EQ(reg.distinct_pages(), 0u);
  EXPECT_FALSE(reg.current().has_value());
  EXPECT_EQ(reg.store_epoch(), 0u);
  // A later committed pass is unaffected and reuses the epoch number.
  reg.begin(crypto::keccak256("e0b"), 1);
  reg.tag(u256{10});
  reg.commit();
  EXPECT_EQ(reg.page_epoch(u256{10}).value(), 0u);
  EXPECT_EQ(reg.max_page_epoch(), reg.store_epoch());
}

TEST(EpochRegistryEdge, StagedTagsInvisibleUntilCommit) {
  EpochRegistry reg;
  reg.begin(crypto::keccak256("e0"), 1);
  reg.tag(u256{5});
  // Mid-pass, the invariant max_page_epoch <= store_epoch must already hold.
  EXPECT_FALSE(reg.page_epoch(u256{5}).has_value());
  EXPECT_LE(reg.max_page_epoch(), reg.store_epoch());
  reg.commit();
  EXPECT_EQ(reg.page_epoch(u256{5}).value(), 0u);
}

TEST(EpochRegistryEdge, DoubleCommitRejected) {
  EpochRegistry reg;
  reg.begin(crypto::keccak256("e0"), 1);
  reg.commit();
  EXPECT_THROW(reg.commit(), UsageError);
  EXPECT_THROW(reg.abort(), UsageError);  // nothing open to abort either
  EXPECT_EQ(reg.store_epoch(), 0u);       // the failed calls changed nothing
}

TEST(EpochRegistryEdge, BeginWhileOpenRejected) {
  EpochRegistry reg;
  reg.begin(crypto::keccak256("e0"), 1);
  EXPECT_THROW(reg.begin(crypto::keccak256("e1"), 2), UsageError);
  // The open pass is still the original one: committing lands root e0.
  reg.commit();
  EXPECT_EQ(reg.current()->state_root, crypto::keccak256("e0"));
  EXPECT_EQ(reg.current()->block_number, 1u);
}

namespace {
struct RecordingListener final : EpochListener {
  std::vector<std::string> events;
  void on_epoch_begin(uint64_t epoch, const H256&, uint64_t) override {
    events.push_back("begin:" + std::to_string(epoch));
  }
  void on_epoch_commit(uint64_t epoch) override {
    events.push_back("commit:" + std::to_string(epoch));
  }
  void on_epoch_abort(uint64_t epoch) override {
    events.push_back("abort:" + std::to_string(epoch));
  }
};
}  // namespace

TEST(EpochRegistryEdge, ListenerSeesTransitionsInOrder) {
  EpochRegistry reg;
  RecordingListener listener;
  reg.set_listener(&listener);
  reg.begin(crypto::keccak256("e0"), 1);
  reg.commit();
  reg.begin(crypto::keccak256("e1"), 2);
  reg.abort();
  EXPECT_EQ(listener.events,
            (std::vector<std::string>{"begin:0", "commit:0", "begin:1", "abort:1"}));
}

TEST(EpochRegistryEdge, RestoreSeedsPristineRegistryOnly) {
  EpochRegistry reg;
  std::vector<EpochRegistry::Pin> history{{0, crypto::keccak256("r0"), 1},
                                          {1, crypto::keccak256("r1"), 2}};
  std::unordered_map<BlockId, uint64_t, U256Hasher> tags;
  tags[u256{1}] = 0;
  tags[u256{2}] = 1;
  reg.restore(history, tags);
  EXPECT_EQ(reg.store_epoch(), 1u);
  EXPECT_EQ(reg.page_epoch(u256{2}).value(), 1u);
  EXPECT_EQ(reg.at(0)->state_root, crypto::keccak256("r0"));
  // Restored registry continues numbering where the history left off.
  EXPECT_EQ(reg.begin(crypto::keccak256("r2"), 3), 2u);
  reg.commit();
  // A registry with any life in it refuses a restore.
  EXPECT_THROW(reg.restore(history, tags), UsageError);
  EpochRegistry used;
  used.begin(crypto::keccak256("x"), 1);
  EXPECT_THROW(used.restore(history, tags), UsageError);
}

// ---------------------------------------------------------------------------
// ShardedOramStore (PR 6: the concurrent oblivious frontend's backend)
// ---------------------------------------------------------------------------

ShardedOramStore make_sharded(size_t shards, bool pin = false) {
  auto config = ShardedOramStore::partition(
      OramConfig{.block_size = 64, .capacity = 1024, .max_stash_blocks = 128}, shards);
  config.pin_shard_assignment = pin;
  return ShardedOramStore(std::move(config), test_key(), /*rng_seed=*/42,
                          SealMode::kChaChaHmac);
}

TEST(ShardedStore, PartitionGeometryAndPowerOfTwo) {
  const auto config = ShardedOramStore::partition(
      OramConfig{.block_size = 64, .capacity = 1024, .max_stash_blocks = 128}, 8);
  EXPECT_EQ(config.shard_count, 8u);
  // 2x multinomial slack over the even split, so a random block->shard
  // assignment cannot overflow a subtree.
  EXPECT_GE(config.shard.capacity * 8, 2 * 1024u);
  EXPECT_EQ(config.shard.block_size, 64u);
  EXPECT_THROW(make_sharded(6), UsageError);   // not a power of two
  EXPECT_NO_THROW(make_sharded(1));            // degenerate single tree
}

TEST(ShardedStore, WriteReadRoundTripAcrossMigrations) {
  auto store = make_sharded(8);
  std::vector<BlockId> ids;
  for (uint64_t i = 0; i < 32; ++i) {
    ids.push_back(bid(i));
    store.write(ids.back(), Bytes(64, static_cast<uint8_t>(i + 1)));
  }
  // Repeated reads migrate blocks between shards (~7/8 of accesses redraw to
  // a different subtree); the value must ride every handoff.
  for (int round = 0; round < 8; ++round) {
    for (uint64_t i = 0; i < ids.size(); ++i) {
      const auto data = store.read(ids[i]);
      ASSERT_TRUE(data.has_value());
      EXPECT_EQ((*data)[0], static_cast<uint8_t>(i + 1));
    }
  }
  const auto stats = store.snapshot();
  EXPECT_GT(stats.total_migrations, 0u);
  uint64_t shard_walk_sum = 0;
  for (const auto& shard : stats.shards) shard_walk_sum += shard.walks;
  EXPECT_EQ(shard_walk_sum, stats.total_walks);
  EXPECT_EQ(store.observed_walks().size(), stats.total_walks);
  EXPECT_FALSE(store.stash_overflowed());
}

TEST(ShardedStore, PinnedAssignmentNeverMigrates) {
  auto store = make_sharded(8, /*pin=*/true);
  const BlockId id = bid(7);
  store.write(id, Bytes(64, 0xab));
  const uint32_t home = store.shard_of(id);
  ASSERT_NE(home, ShardedOramStore::kNoShard);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(store.read(id).has_value());
    EXPECT_EQ(store.shard_of(id), home);
  }
  EXPECT_EQ(store.snapshot().total_migrations, 0u);
}

TEST(ShardedStore, UnknownIdDummyWalksAndStaysUnknown) {
  auto store = make_sharded(4);
  const auto before = store.snapshot().total_walks;
  EXPECT_FALSE(store.read(bid(999)).has_value());
  // The miss is not free: the adversary still sees one uniform walk.
  EXPECT_EQ(store.snapshot().total_walks, before + 1);
  EXPECT_EQ(store.shard_of(bid(999)), ShardedOramStore::kNoShard);
}

TEST(ShardedStore, BulkRestorePartitionsAndServes) {
  auto store = make_sharded(8);
  std::vector<std::pair<BlockId, Bytes>> pages;
  for (uint64_t i = 0; i < 64; ++i) {
    pages.emplace_back(bid(i), Bytes(64, static_cast<uint8_t>(i)));
  }
  store.bulk_restore(pages);
  EXPECT_EQ(store.block_count(), 64u);
  for (uint64_t i = 0; i < 64; ++i) {
    const auto data = store.read(bid(i));
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ((*data)[0], static_cast<uint8_t>(i));
  }
}

TEST(ShardedStore, InstallHookFiresOnWritesNotMigrations) {
  auto store = make_sharded(8);
  std::atomic<uint64_t> installs{0};
  store.set_install_hook([&](const BlockId&, BytesView, uint64_t) { ++installs; });
  for (uint64_t i = 0; i < 16; ++i) store.write(bid(i), Bytes(64, 1));
  EXPECT_EQ(installs.load(), 16u);
  // Reads migrate blocks between shards; a cross-shard move is not a logical
  // store mutation and must not be journaled.
  for (int round = 0; round < 4; ++round) {
    for (uint64_t i = 0; i < 16; ++i) store.read(bid(i));
  }
  EXPECT_GT(store.snapshot().total_migrations, 0u);
  EXPECT_EQ(installs.load(), 16u);
}

TEST(ShardedStore, ConcurrentDistinctIdsAreLinearizable) {
  // The store's concurrency contract: distinct ids from many threads are
  // safe with no external locking. 8 threads × disjoint working sets,
  // read-modify-check loops; runs under TSan in CI (sanitize-tsan job).
  auto store = make_sharded(8);
  constexpr int kThreads = 8, kIdsPerThread = 8, kRounds = 12;
  for (uint64_t t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kIdsPerThread; ++i) {
      store.write(bid(t * 100 + i), Bytes(64, static_cast<uint8_t>(t * 16 + i)));
    }
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (uint64_t i = 0; i < kIdsPerThread; ++i) {
          const auto data = store.read(bid(t * 100 + i));
          if (!data.has_value() || (*data)[0] != static_cast<uint8_t>(t * 16 + i)) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  const auto stats = store.snapshot();
  EXPECT_EQ(stats.total_walks, store.observed_walks().size());
  EXPECT_GE(stats.max_concurrent_walks, 1u);
  EXPECT_FALSE(store.stash_overflowed());
}

TEST(ShardedStore, ObservedWalksAreGloballyOrdered) {
  auto store = make_sharded(4);
  for (uint64_t i = 0; i < 8; ++i) store.write(bid(i), Bytes(64, 1));
  for (uint64_t i = 0; i < 8; ++i) store.read(bid(i));
  const auto walks = store.observed_walks();
  EXPECT_EQ(walks.size(), 16u);
  for (const auto& [shard, leaf] : walks) {
    EXPECT_LT(shard, 4u);
    EXPECT_LT(leaf, store.leaf_count());
  }
  store.clear_observations();
  EXPECT_TRUE(store.observed_walks().empty());
  // Stats survive the observation reset (they are diagnostics, not the
  // adversary view).
  EXPECT_EQ(store.snapshot().total_walks, 16u);
}

}  // namespace
}  // namespace hardtape::oram
