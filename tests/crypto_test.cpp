// Known-answer and property tests for the crypto substrate.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/random.hpp"
#include "crypto/aes.hpp"
#include "crypto/keccak.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"

namespace hardtape::crypto {
namespace {

TEST(Keccak, KnownVectors) {
  // Ethereum-style Keccak-256 (original padding), not SHA3-256.
  EXPECT_EQ(keccak256("").hex(),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
  EXPECT_EQ(keccak256("abc").hex(),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
  EXPECT_EQ(keccak256("The quick brown fox jumps over the lazy dog").hex(),
            "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15");
}

TEST(Keccak, MultiBlockInput) {
  // > 136-byte input exercises the multi-block absorb path.
  const std::string long_input(500, 'a');
  const H256 h1 = keccak256(long_input);
  const H256 h2 = keccak256(long_input);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, keccak256(std::string(501, 'a')));
  // Boundary: exactly one rate block.
  EXPECT_NE(keccak256(std::string(136, 'x')), keccak256(std::string(135, 'x')));
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(sha256(Bytes{}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const Bytes abc = {'a', 'b', 'c'};
  EXPECT_EQ(sha256(abc).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // 56-byte input exercises the two-block padding path.
  const std::string s56(56, 'a');
  const Bytes b56(s56.begin(), s56.end());
  EXPECT_EQ(sha256(b56).hex(),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, HmacRfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string data = "Hi There";
  const Bytes msg(data.begin(), data.end());
  EXPECT_EQ(hmac_sha256(key, msg).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Sha256, HmacRfc4231Case2) {
  const std::string k = "Jefe";
  const std::string d = "what do ya want for nothing?";
  EXPECT_EQ(hmac_sha256(Bytes(k.begin(), k.end()), Bytes(d.begin(), d.end())).hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Sha256, HkdfProducesRequestedLength) {
  const Bytes ikm(22, 0x0b);
  const Bytes out = hkdf_sha256(ikm, Bytes{}, Bytes{}, 42);
  EXPECT_EQ(out.size(), 42u);
  // Deterministic.
  EXPECT_EQ(out, hkdf_sha256(ikm, Bytes{}, Bytes{}, 42));
  // Different info separates keys.
  const Bytes info = {'x'};
  EXPECT_NE(out, hkdf_sha256(ikm, Bytes{}, info, 42));
}

TEST(Aes128, Fips197Vector) {
  const Bytes key_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
  AesKey128 key;
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  uint8_t out[16];
  Aes128(key).encrypt_block(pt.data(), out);
  EXPECT_EQ(to_hex(BytesView{out, 16}), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesGcm, NistTestCase1EmptyPlaintext) {
  const AesKey128 key{};
  const GcmNonce nonce{};
  const auto result = aes_gcm_encrypt(key, nonce, Bytes{}, Bytes{});
  EXPECT_TRUE(result.ciphertext.empty());
  EXPECT_EQ(to_hex(BytesView{result.tag.data(), result.tag.size()}),
            "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcm, NistTestCase2) {
  const AesKey128 key{};
  const GcmNonce nonce{};
  const Bytes pt(16, 0);
  const auto result = aes_gcm_encrypt(key, nonce, pt, Bytes{});
  EXPECT_EQ(to_hex(result.ciphertext), "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(to_hex(BytesView{result.tag.data(), result.tag.size()}),
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(AesGcm, RoundTripWithAad) {
  AesKey128 key;
  Random rng(11);
  rng.fill(key.data(), key.size());
  GcmNonce nonce;
  rng.fill(nonce.data(), nonce.size());
  const Bytes pt = rng.bytes(1000);
  const Bytes aad = rng.bytes(37);

  const auto enc = aes_gcm_encrypt(key, nonce, pt, aad);
  const auto dec = aes_gcm_decrypt(key, nonce, enc.ciphertext, aad, enc.tag);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, pt);
}

TEST(AesGcm, TamperDetection) {
  AesKey128 key{};
  GcmNonce nonce{};
  const Bytes pt = {1, 2, 3, 4, 5};
  const Bytes aad = {9, 9};
  const auto enc = aes_gcm_encrypt(key, nonce, pt, aad);

  // Flip a ciphertext bit.
  Bytes bad_ct = enc.ciphertext;
  bad_ct[0] ^= 1;
  EXPECT_FALSE(aes_gcm_decrypt(key, nonce, bad_ct, aad, enc.tag).has_value());

  // Flip a tag bit.
  GcmTag bad_tag = enc.tag;
  bad_tag[0] ^= 1;
  EXPECT_FALSE(aes_gcm_decrypt(key, nonce, enc.ciphertext, aad, bad_tag).has_value());

  // Wrong AAD.
  const Bytes bad_aad = {9, 8};
  EXPECT_FALSE(aes_gcm_decrypt(key, nonce, enc.ciphertext, bad_aad, enc.tag).has_value());

  // Wrong key.
  AesKey128 other_key{};
  other_key[0] = 1;
  EXPECT_FALSE(aes_gcm_decrypt(other_key, nonce, enc.ciphertext, aad, enc.tag).has_value());
}

TEST(AesCtr, XorIsInvolution) {
  AesKey128 key{};
  key[5] = 0xaa;
  GcmNonce nonce{};
  nonce[0] = 7;
  const Bytes data = Random(3).bytes(777);
  const Bytes enc = aes_ctr_xor(key, nonce, data);
  EXPECT_NE(enc, data);
  EXPECT_EQ(aes_ctr_xor(key, nonce, enc), data);
}

// --- secp256k1 ---

TEST(Secp256k1, GeneratorOnCurve) {
  EXPECT_TRUE(secp256k1::is_on_curve(secp256k1::generator()));
}

TEST(Secp256k1, GroupLaws) {
  const Point g = secp256k1::generator();
  // 2G via add == 2G via double.
  EXPECT_EQ(secp256k1::add(g, g), secp256k1::dbl(g));
  // (G + 2G) == 3G.
  const Point g2 = secp256k1::dbl(g);
  const Point g3a = secp256k1::add(g, g2);
  const Point g3b = secp256k1::mul(g, u256{3});
  EXPECT_EQ(g3a, g3b);
  EXPECT_TRUE(secp256k1::is_on_curve(g3a));
  // n*G = infinity.
  EXPECT_TRUE(secp256k1::mul(g, secp256k1::group_order()).is_infinity);
  // (n-1)*G + G = infinity.
  const Point gn1 = secp256k1::mul(g, secp256k1::group_order() - u256{1});
  EXPECT_TRUE(secp256k1::add(gn1, g).is_infinity);
  // P + infinity = P.
  EXPECT_EQ(secp256k1::add(g, Point{.is_infinity = true}), g);
}

TEST(Secp256k1, ScalarMulDistributes) {
  const Point g = secp256k1::generator();
  // (a+b)G == aG + bG
  const u256 a{123456789};
  const u256 b = u256::from_string("0xfedcba9876543210");
  EXPECT_EQ(secp256k1::mul(g, a + b),
            secp256k1::add(secp256k1::mul(g, a), secp256k1::mul(g, b)));
}

TEST(Secp256k1, EthereumAddressOfKeyOne) {
  // Well-known: the address of private key 1.
  const PrivateKey key(u256{1});
  EXPECT_EQ(pubkey_to_address(key.public_key()).hex(),
            "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf");
  // And of private key 2.
  const PrivateKey key2(u256{2});
  EXPECT_EQ(pubkey_to_address(key2.public_key()).hex(),
            "0x2b5ad5c4795c026514f8317c7a215e218dccd6cf");
}

TEST(Secp256k1, KeyValidation) {
  EXPECT_THROW(PrivateKey(u256{}), UsageError);
  EXPECT_THROW(PrivateKey(secp256k1::group_order()), UsageError);
  EXPECT_NO_THROW(PrivateKey(secp256k1::group_order() - u256{1}));
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  const PrivateKey key = PrivateKey::from_seed(from_hex("aabbcc"));
  const H256 msg = keccak256("hello hardtape");
  const Signature sig = key.sign(msg);
  EXPECT_TRUE(ecdsa_verify(key.public_key(), msg, sig));
  // Wrong message fails.
  EXPECT_FALSE(ecdsa_verify(key.public_key(), keccak256("other"), sig));
  // Wrong key fails.
  const PrivateKey other = PrivateKey::from_seed(from_hex("ddeeff"));
  EXPECT_FALSE(ecdsa_verify(other.public_key(), msg, sig));
  // Tampered signature fails.
  Signature bad = sig;
  bad.s += u256{1};
  EXPECT_FALSE(ecdsa_verify(key.public_key(), msg, bad));
}

TEST(Ecdsa, DeterministicSignatures) {
  const PrivateKey key(u256{42});
  const H256 msg = keccak256("determinism");
  const Signature s1 = key.sign(msg);
  const Signature s2 = key.sign(msg);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(Ecdsa, RecoveryMatchesPublicKey) {
  Random rng(17);
  for (int i = 0; i < 5; ++i) {
    const PrivateKey key = PrivateKey::from_seed(rng.bytes(16));
    const H256 msg = keccak256(rng.bytes(40));
    const Signature sig = key.sign(msg);
    const auto recovered = ecdsa_recover(msg, sig);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, key.public_key());
  }
}

TEST(Ecdsa, RecoveryRejectsGarbage) {
  Signature sig;
  sig.r = u256{};  // r = 0 invalid
  sig.s = u256{1};
  EXPECT_FALSE(ecdsa_recover(keccak256("x"), sig).has_value());
  sig.r = secp256k1::group_order();  // r >= n invalid
  EXPECT_FALSE(ecdsa_recover(keccak256("x"), sig).has_value());
}

TEST(Ecdsa, SignatureSerializeRoundTrip) {
  const PrivateKey key(u256{7});
  const Signature sig = key.sign(keccak256("serialize"));
  const Bytes wire = sig.serialize();
  EXPECT_EQ(wire.size(), 65u);
  const auto back = Signature::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->r, sig.r);
  EXPECT_EQ(back->s, sig.s);
  EXPECT_EQ(back->recovery_id, sig.recovery_id);
  EXPECT_FALSE(Signature::deserialize(Bytes(64, 0)).has_value());
}

TEST(Ecdh, SharedSecretAgreement) {
  const PrivateKey alice = PrivateKey::from_seed(from_hex("01"));
  const PrivateKey bob = PrivateKey::from_seed(from_hex("02"));
  const H256 s1 = alice.ecdh(bob.public_key());
  const H256 s2 = bob.ecdh(alice.public_key());
  EXPECT_EQ(s1, s2);
  const PrivateKey carol = PrivateKey::from_seed(from_hex("03"));
  EXPECT_NE(s1, carol.ecdh(alice.public_key()));
}

TEST(Ecdh, RejectsInvalidPeer) {
  const PrivateKey key(u256{5});
  Point bogus{u256{1}, u256{1}, false};  // not on curve
  EXPECT_THROW(key.ecdh(bogus), UsageError);
  EXPECT_THROW(key.ecdh(Point{.is_infinity = true}), UsageError);
}

TEST(Secp256k1, LiftX) {
  const Point g = secp256k1::generator();
  const auto lifted = secp256k1::lift_x(g.x, g.y.bit(0));
  ASSERT_TRUE(lifted.has_value());
  EXPECT_EQ(*lifted, g);
  // Opposite parity gives the mirrored point.
  const auto mirrored = secp256k1::lift_x(g.x, !g.y.bit(0));
  ASSERT_TRUE(mirrored.has_value());
  EXPECT_EQ(mirrored->y, secp256k1::field_prime() - g.y);
}

TEST(Secp256k1, PointSerializeRoundTrip) {
  const Point g = secp256k1::generator();
  const auto back = point_deserialize(point_serialize(g));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
  // Infinity round-trips as zeros.
  const auto inf = point_deserialize(point_serialize(Point{.is_infinity = true}));
  ASSERT_TRUE(inf.has_value());
  EXPECT_TRUE(inf->is_infinity);
  // Off-curve points rejected.
  Bytes bad(64, 0);
  bad[31] = 1;  // x=1, y=0 not on curve
  EXPECT_FALSE(point_deserialize(bad).has_value());
}

}  // namespace
}  // namespace hardtape::crypto
