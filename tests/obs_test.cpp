// Tests for the obs subsystem: nearest-rank percentiles (the bench p99
// off-by-one regression), the unified metrics registry, trace rings, the
// obliviousness auditor's statistics, and — end to end — the determinism of
// noise-padded swap traces across worker counts (the noise_stream fix).
#include <gtest/gtest.h>

#include <sstream>

#include "memlayer/pager.hpp"
#include "obs/audit.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/percentile.hpp"
#include "obs/trace.hpp"
#include "service/engine.hpp"
#include "workload/generator.hpp"

namespace hardtape::obs {
namespace {

// --- percentile (satellite: bench_throughput p99 indexed max for n=100) ---

TEST(Percentile, NearestRankP99) {
  // rank = ceil(p/100 * n), 1-based. The bug this pins: for n=100 the old
  // bench arithmetic picked rank 100 (the max) instead of rank 99.
  EXPECT_EQ(percentile_rank(1, 99.0), 1u);
  EXPECT_EQ(percentile_rank(2, 99.0), 2u);
  EXPECT_EQ(percentile_rank(99, 99.0), 99u);
  EXPECT_EQ(percentile_rank(100, 99.0), 99u);
  EXPECT_EQ(percentile_rank(101, 99.0), 100u);
}

TEST(Percentile, NearestRankP50AndP100) {
  EXPECT_EQ(percentile_rank(100, 50.0), 50u);
  EXPECT_EQ(percentile_rank(101, 50.0), 51u);
  EXPECT_EQ(percentile_rank(100, 100.0), 100u);
  EXPECT_EQ(percentile_rank(7, 25.0), 2u);
}

TEST(Percentile, Values) {
  std::vector<uint64_t> samples;
  for (uint64_t v = 1; v <= 100; ++v) samples.push_back(101 - v);  // unsorted
  EXPECT_EQ(percentile(samples, 99.0), 99u);   // NOT 100 (the old bug)
  EXPECT_EQ(percentile(samples, 100.0), 100u);
  EXPECT_EQ(percentile(samples, 50.0), 50u);
  EXPECT_EQ(percentile(std::vector<uint64_t>{42}, 99.0), 42u);
}

TEST(Percentile, ErrorCases) {
  EXPECT_THROW(percentile_rank(0, 99.0), UsageError);
  EXPECT_THROW(percentile_rank(10, 0.0), UsageError);
  EXPECT_THROW(percentile_rank(10, 100.5), UsageError);
}

// --- metrics registry ---

TEST(Registry, CountersGaugesHistograms) {
  Registry registry;
  registry.counter("requests").add(3);
  registry.counter("requests").add(2);
  registry.gauge("depth").set(4.5);
  auto& hist = registry.histogram("latency", "bundle latency");
  for (uint64_t v = 1; v <= 100; ++v) hist.observe(v);

  EXPECT_EQ(registry.counter("requests").value(), 5u);
  EXPECT_DOUBLE_EQ(registry.gauge("depth").value(), 4.5);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.percentile(99.0), 99u);  // shared nearest-rank helper
}

TEST(Registry, KindConflictThrows) {
  Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), UsageError);
  EXPECT_THROW(registry.histogram("x"), UsageError);
}

TEST(Registry, Exposition) {
  Registry registry;
  registry.counter("hardtape_bundles_total", "bundles executed").add(7);
  registry.histogram("hardtape_latency_ns").observe(10);
  const std::string prom = registry.prometheus_text();
  EXPECT_NE(prom.find("# TYPE hardtape_bundles_total counter"), std::string::npos);
  EXPECT_NE(prom.find("hardtape_bundles_total 7"), std::string::npos);
  EXPECT_NE(prom.find("hardtape_latency_ns_count 1"), std::string::npos);
  const std::string json = registry.json();
  EXPECT_NE(json.find("\"hardtape_bundles_total\": 7"), std::string::npos);
}

// --- JSON escaping (satellite: hostile-contract bytes in exported fields) ---

TEST(JsonEscape, ControlCharactersAndQuotes) {
  // The satellite's exact adversarial bytes: '\n' splits a JSONL record in
  // two, '"' terminates the string early, 0x01 is an unescaped control byte
  // strict parsers reject.
  const std::string hostile = std::string("li\nne\"quote") + '\x01' + "end";
  const std::string escaped = json_escape(hostile);
  EXPECT_EQ(escaped, "li\\nne\\\"quote\\u0001end");
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\x01'), std::string::npos);
  EXPECT_EQ(json_escape("tab\there\rcr\\slash"), "tab\\there\\rcr\\\\slash");
  EXPECT_EQ(json_escape(std::string_view("\x00\x1f", 2)), "\\u0000\\u001f");
}

TEST(JsonEscape, ValidUtf8PassesThrough) {
  // 2-, 3- and 4-byte sequences survive untouched.
  const std::string utf8 = "caf\xc3\xa9 \xe4\xb8\xad \xf0\x9f\x94\x92";
  EXPECT_EQ(json_escape(utf8), utf8);
  EXPECT_EQ(json_escape("plain ascii"), "plain ascii");
}

TEST(JsonEscape, MalformedUtf8EscapedByteWise) {
  // Stray continuation byte, invalid lead bytes, truncated sequence, and
  // overlong encoding all become \u00XX instead of leaking raw bytes.
  EXPECT_EQ(json_escape("\x80"), "\\u0080");
  EXPECT_EQ(json_escape("\xff\xfe"), "\\u00ff\\u00fe");
  EXPECT_EQ(json_escape("\xe4\xb8"), "\\u00e4\\u00b8");      // truncated 3-byte
  EXPECT_EQ(json_escape("\xc0\xaf"), "\\u00c0\\u00af");      // overlong '/'
  EXPECT_EQ(json_escape("\xed\xa0\x80"), "\\u00ed\\u00a0\\u0080");  // surrogate
  // Resynchronizes: garbage then valid UTF-8 then garbage.
  EXPECT_EQ(json_escape("\x80ok\xc3\xa9\xff"), "\\u0080ok\xc3\xa9\\u00ff");
}

TEST(JsonEscape, RegistryNamesAreEscapedInJson) {
  Registry registry;
  registry.counter("bad\nname\"x").add(1);
  const std::string json = registry.json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("bad\\nname\\\"x"), std::string::npos);
}

// --- trace rings ---

TEST(TraceRing, SequenceAndBoundedDrop) {
  TraceSink sink({.ring_capacity = 4, .capture_wall_time = false});
  TraceRing& ring = sink.ring(0);
  for (uint64_t i = 0; i < 6; ++i) {
    ring.append(TraceCategory::kOram, static_cast<uint16_t>(TraceCode::kOramIssue), i * 10, i);
  }
  EXPECT_EQ(ring.emitted(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 2u);  // oldest two overwritten
  EXPECT_EQ(events.back().seq, 5u);
  EXPECT_EQ(events.back().a, 5u);
  EXPECT_EQ(sink.total_emitted(), 6u);
  EXPECT_EQ(sink.total_dropped(), 2u);
}

TEST(TraceRing, StableRingPerWorker) {
  TraceSink sink;
  TraceRing& a = sink.ring(3);
  TraceRing& b = sink.ring(3);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(sink.ring(-2).worker(), -2);
}

TEST(TraceSink, JsonlDeterministicFields) {
  TraceSink sink({.ring_capacity = 16, .capture_wall_time = false});
  sink.ring(1).append(TraceCategory::kSwap, static_cast<uint16_t>(TraceCode::kSwapEvict),
                      100, /*pages=*/9, /*noise=*/2, /*depth=*/3);
  sink.ring(0).append(TraceCategory::kOpcode, /*opcode=*/0x01, 50, /*pc=*/7, /*gas=*/21);
  std::ostringstream out;
  sink.write_jsonl(out);
  const std::string text = out.str();
  // Ordered by (worker, seq): the opcode line (worker 0) comes first.
  EXPECT_LT(text.find("\"op\":1"), text.find("swap_evict"));
  EXPECT_NE(text.find("\"worker\":1"), std::string::npos);
  EXPECT_NE(text.find("\"sim_ns\":100"), std::string::npos);
  EXPECT_NE(text.find("\"a\":9"), std::string::npos);
  // wall time capture disabled => deterministic zero
  EXPECT_NE(text.find("\"wall_ns\":0"), std::string::npos);
}

// --- auditor statistics ---

TEST(Audit, KsStatistic) {
  const std::vector<uint64_t> base{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(ks_statistic(base, base), 0.0);
  EXPECT_DOUBLE_EQ(ks_statistic({1, 2, 3}, {10, 11, 12}), 1.0);  // disjoint
  EXPECT_DOUBLE_EQ(ks_statistic({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ks_statistic({1}, {}), 1.0);
  const double shifted = ks_statistic({1, 2, 3, 4}, {2, 3, 4, 5});
  EXPECT_GT(shifted, 0.0);
  EXPECT_LT(shifted, 1.0);
}

SpTrace make_queries(const std::vector<std::pair<uint64_t, uint8_t>>& qs) {
  SpTrace sp;
  for (const auto& [t, type] : qs) sp.queries.push_back({t, type});
  return sp;
}

TEST(Audit, IdenticalTracesPass) {
  SpTrace sp = make_queries({{0, 1}, {10, 2}, {25, 3}, {40, 1}});
  sp.swaps = {{5, static_cast<uint16_t>(TraceCode::kSwapEvict), 8}};
  AuditConfig config;
  config.min_samples = 2;
  const auto report = audit_obliviousness(sp, sp, config);
  EXPECT_TRUE(report.pass) << report.summary();
}

TEST(Audit, TypeSequenceMismatchFails) {
  const SpTrace a = make_queries({{0, 1}, {10, 2}, {20, 3}});
  const SpTrace b = make_queries({{0, 1}, {10, 3}, {20, 2}});
  const auto report = audit_obliviousness(a, b);
  EXPECT_FALSE(report.pass);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().channel, "query_type_sequence");
  EXPECT_FALSE(report.findings.front().pass);
  EXPECT_NE(report.findings.front().detail.find("first_diff_at=1"), std::string::npos);
}

TEST(Audit, QueryCountMismatchFails) {
  const SpTrace a = make_queries({{0, 1}, {10, 1}});
  const SpTrace b = make_queries({{0, 1}, {10, 1}, {20, 1}});
  const auto report = audit_obliviousness(a, b);
  EXPECT_FALSE(report.pass);
}

TEST(Audit, ExactSwapScheduleOnlyWhenRequired) {
  SpTrace a, b;
  a.swaps = {{0, static_cast<uint16_t>(TraceCode::kSwapEvict), 4}};
  b.swaps = {{0, static_cast<uint16_t>(TraceCode::kSwapLoad), 4}};
  AuditConfig relaxed;  // default: swap channel deferred to swap_size_ks
  EXPECT_TRUE(audit_obliviousness(a, b, relaxed).pass);
  AuditConfig strict;
  strict.require_exact_swap_schedule = true;
  EXPECT_FALSE(audit_obliviousness(a, b, strict).pass);
}

TEST(Audit, SwapSizeDistributionLeakFails) {
  // Intent a always swaps 3 pages, intent b always 9: with no padding the
  // distributions are disjoint and KS = 1.
  SpTrace a, b;
  for (uint64_t i = 0; i < 32; ++i) {
    a.swaps.push_back({i, static_cast<uint16_t>(TraceCode::kSwapEvict), 3});
    b.swaps.push_back({i, static_cast<uint16_t>(TraceCode::kSwapEvict), 9});
  }
  const auto report = audit_obliviousness(a, b);
  EXPECT_FALSE(report.pass);
  bool found = false;
  for (const auto& f : report.findings) {
    if (f.channel == "swap_size_ks") {
      found = true;
      EXPECT_FALSE(f.pass);
      EXPECT_DOUBLE_EQ(f.statistic, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Audit, SessionBoundariesDoNotWrapGaps) {
  // Two sessions whose clocks both start at 0: the naive gap across the
  // boundary (5 -> 0) would wrap uint64. With the boundary marked, gaps are
  // {5, 5} per session and the KS against an identical trace is 0.
  SpTrace sp = make_queries({{0, 1}, {5, 1}, {0, 1}, {5, 1}});
  sp.session_starts = {0, 2};
  const auto gaps = sp.query_gaps();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], 5u);
  EXPECT_EQ(gaps[1], 5u);
}

TEST(Audit, ProjectExtractsSpView) {
  TraceSink sink({.capture_wall_time = false});
  TraceRing& ring = sink.ring(0);
  ring.append(TraceCategory::kBundle, static_cast<uint16_t>(TraceCode::kBundleStart), 0, 7);
  ring.append(TraceCategory::kOpcode, 0x60, 1, 0, 100);  // dropped: not SP-visible
  ring.append(TraceCategory::kOram, static_cast<uint16_t>(TraceCode::kOramIssue), 10,
              /*type=*/2);
  ring.append(TraceCategory::kOram, static_cast<uint16_t>(TraceCode::kOramComplete), 11, 0);
  ring.append(TraceCategory::kSwap, static_cast<uint16_t>(TraceCode::kSwapLoad), 12,
              /*pages=*/6, /*noise=*/1);
  const SpTrace sp = SpTrace::project(ring.events());
  ASSERT_EQ(sp.queries.size(), 1u);
  EXPECT_EQ(sp.queries[0].type, 2);
  ASSERT_EQ(sp.swaps.size(), 1u);
  EXPECT_EQ(sp.swaps[0].pages, 6u);
  ASSERT_EQ(sp.session_starts.size(), 1u);
  EXPECT_EQ(sp.session_starts[0], 0u);
}

TEST(Audit, CodeGapDispersionDetectsMetronomicCodeFetches) {
  // Demand-time signature: every code fetch trails its trigger by exactly
  // the model latency, KV gaps jitter. CV ratio ~ 0 => FAIL the channel.
  SpTrace demand;
  uint64_t t = 0;
  for (int i = 0; i < 40; ++i) {
    t += 100 + (i * 37) % 90;  // jittered KV gap
    demand.queries.push_back({t, 2});
    t += 50;  // constant code latency
    demand.queries.push_back({t, 3});
  }
  EXPECT_LT(code_gap_dispersion(demand, 3), 0.3);

  SpTrace shaped = demand;
  for (size_t i = 1; i < shaped.queries.size(); i += 2) {
    shaped.queries[i].sim_ns += (i * 53) % 70;  // prefetch-style jitter
  }
  EXPECT_GT(code_gap_dispersion(shaped, 3), 0.3);
  // Degenerate traces carry no signal.
  EXPECT_DOUBLE_EQ(code_gap_dispersion(SpTrace{}, 3), 1.0);
}

// --- per-shard audit (PR 6: sharded oblivious frontend) ---

TEST(ShardAudit, UniformKsStatistic) {
  // A perfectly balanced sample over the full support sits at 1/support.
  std::vector<uint64_t> balanced;
  for (uint64_t v = 0; v < 64; ++v) balanced.push_back(v);
  EXPECT_LE(uniform_ks_statistic(balanced, 64), 1.0 / 64 + 1e-12);
  // A point mass at 0 deviates maximally: ECDF jumps to 1 at F(0) = 1/s.
  EXPECT_NEAR(uniform_ks_statistic(std::vector<uint64_t>(32, 0), 64), 1.0 - 1.0 / 64,
              1e-12);
  EXPECT_DOUBLE_EQ(uniform_ks_statistic({}, 64), 0.0);
}

TEST(ShardAudit, UniformWalksPass) {
  // i.i.d. uniform (shard, leaf) pairs — the faithful redraw's view.
  Random rng(0x5eed);
  std::vector<std::pair<uint32_t, uint64_t>> walks;
  for (int i = 0; i < 4096; ++i) {
    walks.emplace_back(static_cast<uint32_t>(rng.uniform(8)), rng.uniform(512));
  }
  const auto report = audit_shard_obliviousness(walks, 8, 512);
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_EQ(report.findings.size(), 1u + 8u);  // balance + one KS per shard
}

TEST(ShardAudit, PinnedHotShardFailsBalance) {
  // A pinned hot page: 40% of all walks land on shard 2 (expected 12.5%).
  Random rng(0x5eed);
  std::vector<std::pair<uint32_t, uint64_t>> walks;
  for (int i = 0; i < 4096; ++i) {
    const uint32_t shard =
        i % 5 < 2 ? 2u : static_cast<uint32_t>(rng.uniform(8));
    walks.emplace_back(shard, rng.uniform(512));
  }
  const auto report = audit_shard_obliviousness(walks, 8, 512);
  EXPECT_FALSE(report.pass);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().channel, "shard_balance_z");
  EXPECT_FALSE(report.findings.front().pass);
  EXPECT_NE(report.findings.front().detail.find("worst_shard=2"), std::string::npos);
}

TEST(ShardAudit, NonUniformLeavesFailKs) {
  // Shards visited uniformly but one shard's leaves concentrate in the low
  // half of its range — a broken in-shard position map.
  Random rng(0x5eed);
  std::vector<std::pair<uint32_t, uint64_t>> walks;
  for (int i = 0; i < 4096; ++i) {
    const auto shard = static_cast<uint32_t>(rng.uniform(8));
    walks.emplace_back(shard, shard == 3 ? rng.uniform(256) : rng.uniform(512));
  }
  const auto report = audit_shard_obliviousness(walks, 8, 512);
  EXPECT_FALSE(report.pass);
  for (const auto& f : report.findings) {
    if (f.channel == "shard3_leaf_ks") {
      EXPECT_FALSE(f.pass);
    }
    if (f.channel == "shard1_leaf_ks") {
      EXPECT_TRUE(f.pass);
    }
  }
}

TEST(ShardAudit, SparseShardsAreSkippedNotFailed) {
  const std::vector<std::pair<uint32_t, uint64_t>> walks{{0, 1}, {1, 2}, {2, 3}};
  const auto report = audit_shard_obliviousness(walks, 8, 512);
  EXPECT_TRUE(report.pass) << report.summary();
}

// --- noise stream (satellite: per-session padding RNG derivation) ---

TEST(NoiseStream, KeyedOnSeedBundleAttempt) {
  const uint64_t base = memlayer::noise_stream(1, 0, 0);
  EXPECT_NE(base, memlayer::noise_stream(2, 0, 0));     // engine seed
  EXPECT_NE(base, memlayer::noise_stream(1, 1, 0));     // bundle id
  EXPECT_NE(base, memlayer::noise_stream(1, 0, 1));     // retry attempt
  EXPECT_EQ(base, memlayer::noise_stream(1, 0, 0));     // pure function
}

}  // namespace
}  // namespace hardtape::obs

// --- end-to-end: swap-trace determinism across worker counts ---

namespace hardtape::service {
namespace {

class ObsEngineTest : public ::testing::Test {
 protected:
  ObsEngineTest() {
    gen_.deploy(node_.world());
    node_.produce_block({});
  }

  EngineConfig make_config(int workers, obs::TraceSink* sink = nullptr) {
    EngineConfig config;
    config.security = SecurityConfig::full();
    config.num_hevms = workers;
    config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
    config.seal_mode = oram::SealMode::kChaChaHmac;
    config.perform_channel_crypto = false;
    // Small layer 2 so the deep router chains below actually spill — the
    // swap schedule (counts + noise padding) is then a real trace to compare.
    config.core.l2.l2_bytes = 16 * 1024;
    config.trace = sink;
    return config;
  }

  std::vector<std::vector<evm::Transaction>> make_bundles(size_t count) {
    std::vector<std::vector<evm::Transaction>> bundles;
    for (size_t i = 0; i < count; ++i) {
      evm::Transaction route;
      route.from = gen_.users()[i % gen_.users().size()];
      route.to = gen_.routers()[i % gen_.routers().size()];
      route.data = workload::router_route(3 + i % 4, gen_.tokens()[0],
                                          gen_.users()[(i + 1) % gen_.users().size()],
                                          u256{5});
      route.gas_limit = 5'000'000;
      bundles.push_back({route});
    }
    return bundles;
  }

  std::vector<SessionOutcome> run(int workers, obs::TraceSink* sink,
                                  const std::vector<std::vector<evm::Transaction>>& bundles) {
    PreExecutionEngine engine(node_, make_config(workers, sink));
    EXPECT_EQ(engine.synchronize(), Status::kOk);
    engine.start();
    for (const auto& bundle : bundles) engine.submit(bundle);
    return engine.drain();
  }

  node::NodeSimulator node_;
  workload::WorkloadGenerator gen_{workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 2}};
};

// The noise_stream satellite fix: swap padding derives from (seed, bundle,
// attempt), so the noisy swap schedule of every bundle is identical whether
// 1 or 8 workers ran it — the property the leakage auditor depends on.
TEST_F(ObsEngineTest, SwapTracesIdenticalAtOneVsEightWorkers) {
  const auto bundles = make_bundles(16);
  const auto one = run(1, nullptr, bundles);
  const auto eight = run(8, nullptr, bundles);
  ASSERT_EQ(one.size(), eight.size());
  size_t bundles_with_swaps = 0;
  for (size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i].bundle_id, eight[i].bundle_id);
    const auto& a = one[i].report.swap_events;
    const auto& b = eight[i].report.swap_events;
    ASSERT_EQ(a.size(), b.size()) << "bundle " << i;
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].kind, b[j].kind) << "bundle " << i << " event " << j;
      EXPECT_EQ(a[j].pages, b[j].pages) << "bundle " << i << " event " << j;
      EXPECT_EQ(a[j].noise_pages, b[j].noise_pages) << "bundle " << i << " event " << j;
    }
    if (!a.empty()) ++bundles_with_swaps;
  }
  // The comparison must not be vacuous.
  EXPECT_GT(bundles_with_swaps, 0u);
}

// Tracing is observation-only: a traced run computes bit-identical outcomes
// to an untraced one, and the traced swap events mirror the pager's report.
TEST_F(ObsEngineTest, TracingDoesNotPerturbOutcomes) {
  const auto bundles = make_bundles(8);
  const auto plain = run(1, nullptr, bundles);
  obs::TraceSink sink({.ring_capacity = 1 << 16});
  const auto traced = run(1, &sink, bundles);
  ASSERT_EQ(plain.size(), traced.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_TRUE(outcomes_bit_identical(plain[i], traced[i])) << "bundle " << i;
  }
  // The traced kSwap events carry the same observed page counts the report
  // records (append happens beside events_.push_back, never instead of it).
  uint64_t report_swaps = 0;
  for (const auto& outcome : traced) report_swaps += outcome.report.swap_events.size();
  uint64_t ring_swaps = 0;
  for (const auto& event : sink.ring(0).events()) {
    if (event.category == obs::TraceCategory::kSwap) ++ring_swaps;
  }
  EXPECT_EQ(ring_swaps, report_swaps);
  EXPECT_EQ(sink.total_dropped(), 0u);
}

}  // namespace
}  // namespace hardtape::service

// --- audit-trace symmetry (satellite: EXTCODECOPY source-side kCode read) ---
//
// The obliviousness auditor consumes the observer's memory-access stream; a
// copy opcode that reads code without reporting the kCode touch is a hole in
// the audit trace. CODECOPY and EXTCODECOPY move the same kind of data
// (code region -> frame memory), so they must emit the same event shape:
// one kCode read of the source range, then one kMemory write of the
// destination range.

#include "evm/assembler.hpp"
#include "evm/interpreter.hpp"
#include "state/overlay.hpp"
#include "state/world_state.hpp"

namespace hardtape::evm {
namespace {

struct MemEvent {
  MemoryLike region;
  uint64_t offset;
  uint64_t size;
  bool is_write;
};

class MemAccessRecorder : public ExecutionObserver {
 public:
  void on_memory_access(MemoryLike region, uint64_t offset, uint64_t size,
                        bool is_write) override {
    events.push_back({region, offset, size, is_write});
  }
  std::vector<MemEvent> events;
};

// Runs `source` at a contract whose state also holds `ext_code` at address
// 0x..EE, returning every memory-access event the copy emitted.
std::vector<MemEvent> copy_events(const std::string& source) {
  Address contract{};
  contract.bytes[19] = 0xCC;
  Address ext{};
  ext.bytes[19] = 0xEE;

  state::InMemoryState base;
  base.put_code(contract, assemble(source));
  base.put_code(ext, assemble("PUSH1 0x2a PUSH1 0x00 MSTORE"));
  state::OverlayState overlay(base);
  Interpreter interp(overlay, BlockContext{});
  MemAccessRecorder recorder;
  interp.set_observer(&recorder);

  Interpreter::Message msg;
  msg.code_address = contract;
  msg.recipient = contract;
  msg.gas = 1'000'000;
  msg.depth = 1;
  const CallResult result = interp.call(msg);
  EXPECT_EQ(result.status, VmStatus::kSuccess);
  return recorder.events;
}

TEST(AuditTrace, ExtcodecopyEmitsSameEventShapeAsCodecopy) {
  // Both programs copy 7 bytes from source offset 2 to memory offset 5.
  const auto codecopy =
      copy_events("PUSH1 0x07 PUSH1 0x02 PUSH1 0x05 CODECOPY STOP");
  const auto extcodecopy = copy_events(
      "PUSH1 0x07 PUSH1 0x02 PUSH1 0x05 PUSH1 0xEE EXTCODECOPY STOP");

  // CODECOPY is the reference shape: kCode read of [2, 2+7), then kMemory
  // write of [5, 5+7).
  ASSERT_EQ(codecopy.size(), 2u);
  EXPECT_EQ(codecopy[0].region, MemoryLike::kCode);
  EXPECT_EQ(codecopy[0].offset, 2u);
  EXPECT_EQ(codecopy[0].size, 7u);
  EXPECT_FALSE(codecopy[0].is_write);
  EXPECT_EQ(codecopy[1].region, MemoryLike::kMemory);
  EXPECT_EQ(codecopy[1].offset, 5u);
  EXPECT_EQ(codecopy[1].size, 7u);
  EXPECT_TRUE(codecopy[1].is_write);

  // EXTCODECOPY must be symmetric: the external code read may not vanish
  // from the audit trace just because the bytes came from another account.
  ASSERT_EQ(extcodecopy.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(extcodecopy[i].region, codecopy[i].region) << "event " << i;
    EXPECT_EQ(extcodecopy[i].offset, codecopy[i].offset) << "event " << i;
    EXPECT_EQ(extcodecopy[i].size, codecopy[i].size) << "event " << i;
    EXPECT_EQ(extcodecopy[i].is_write, codecopy[i].is_write) << "event " << i;
  }
}

TEST(AuditTrace, ExtcodecopyZeroLengthEmitsNoMemoryEvents) {
  // len == 0 copies nothing and, like CODECOPY, must stay silent.
  const auto events = copy_events(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0xEE EXTCODECOPY STOP");
  EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace hardtape::evm
