// Node simulator and block-synchronization tests (threat A6: fake on-chain
// data must be rejected at sync time).
#include <gtest/gtest.h>

#include "node/node.hpp"
#include "node/sync.hpp"
#include "workload/contracts.hpp"
#include "workload/generator.hpp"

namespace hardtape::node {
namespace {

Address addr(uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

crypto::AesKey128 key() {
  crypto::AesKey128 k{};
  k[5] = 9;
  return k;
}

TEST(Node, GenesisChain) {
  NodeSimulator node;
  EXPECT_EQ(node.chain().size(), 1u);
  EXPECT_EQ(node.head().number, 0u);
}

TEST(Node, ProduceBlockAdvancesChainAndState) {
  NodeSimulator node;
  node.world().set_balance(addr(1), u256{1'000'000});
  evm::Transaction tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = u256{500};
  tx.gas_limit = 30'000;
  tx.gas_price = u256{};

  const H256 root_before = node.world().state_root();
  const BlockHeader header = node.produce_block({tx});
  EXPECT_EQ(header.number, 1u);
  EXPECT_EQ(node.head().number, 1u);
  EXPECT_NE(header.state_root, root_before);
  EXPECT_EQ(header.parent_hash, node.chain()[0].hash());
  EXPECT_EQ(node.world().account(addr(2))->balance, u256{500});
  ASSERT_EQ(node.last_receipts().size(), 1u);
  EXPECT_EQ(node.last_receipts()[0].status, evm::VmStatus::kSuccess);
  // Mainnet cadence.
  EXPECT_EQ(header.timestamp, node.chain()[0].timestamp + 12);
}

TEST(Node, BlockExecutionCommitsContractEffects) {
  NodeSimulator node;
  node.world().set_balance(addr(1), u256{1} << 64);
  node.world().set_code(addr(0x10), workload::erc20_code());
  node.world().set_storage(addr(0x10), addr(1).to_u256(), u256{1000});

  evm::Transaction tx;
  tx.from = addr(1);
  tx.to = addr(0x10);
  tx.data = workload::erc20_transfer(addr(2), u256{400});
  tx.gas_limit = 500'000;
  tx.gas_price = u256{};
  node.produce_block({tx});
  EXPECT_EQ(node.world().storage(addr(0x10), addr(2).to_u256()), u256{400});
  EXPECT_EQ(node.world().storage(addr(0x10), addr(1).to_u256()), u256{600});
}

TEST(Node, HeaderHashCoversContents) {
  BlockHeader a;
  a.number = 5;
  BlockHeader b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.gas_used = 1;
  EXPECT_NE(a.hash(), b.hash());
}

// --- chain integrity (PR 4 satellite) ---

TEST(Node, ChainLinkageHoldsAcrossBlocks) {
  NodeSimulator node;
  node.world().set_balance(addr(1), u256{1} << 32);
  for (int i = 0; i < 5; ++i) {
    evm::Transaction tx;
    tx.from = addr(1);
    tx.to = addr(2);
    tx.value = u256{static_cast<uint64_t>(i + 1)};
    tx.gas_limit = 30'000;
    node.produce_block({tx});
  }
  const auto chain = node.chain();
  ASSERT_EQ(chain.size(), 6u);
  for (size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i].number, i) << "block " << i;
    if (i > 0) {
      EXPECT_EQ(chain[i].parent_hash, chain[i - 1].hash()) << "block " << i;
      EXPECT_EQ(chain[i].timestamp, chain[i - 1].timestamp + 12);
    }
  }
}

TEST(Node, StateRootProgressesWithStateAndRepeatsWithoutIt) {
  NodeSimulator node;
  node.world().set_balance(addr(1), u256{1} << 32);
  evm::Transaction tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = u256{7};
  tx.gas_limit = 30'000;
  const BlockHeader b1 = node.produce_block({tx});
  const BlockHeader b2 = node.produce_block({});  // empty: state unchanged
  tx.value = u256{9};
  const BlockHeader b3 = node.produce_block({tx});
  EXPECT_NE(b1.state_root, node.chain()[0].state_root);
  EXPECT_EQ(b2.state_root, b1.state_root);
  EXPECT_NE(b3.state_root, b2.state_root);
  // Headers still diverge even when roots repeat (parent hash, timestamp).
  EXPECT_NE(b2.hash(), b1.hash());
}

// Golden value: pins the RLP header encoding. If this changes, every
// previously trusted block hash changes meaning — bump it only with a
// deliberate, documented format change.
TEST(Node, HeaderHashGoldenValue) {
  BlockHeader header;
  header.number = 7;
  header.parent_hash = crypto::keccak256("parent");
  header.state_root = crypto::keccak256("state");
  header.tx_root = crypto::keccak256("txs");
  header.timestamp = 1'700'000'084;
  header.gas_used = 21'000;
  EXPECT_EQ(header.hash().hex(), "ecec6bb8ec6da430a6ce57a1e636e2cd3ff95f4fca930ca60188946e3a65adaa");
}

// --- live-chain schedule: tick() and reorgs (PR 4 tentpole) ---

evm::Transaction simple_transfer(uint8_t from_tag, uint8_t to_tag, uint64_t value) {
  evm::Transaction tx;
  tx.from = addr(from_tag);
  tx.to = addr(to_tag);
  tx.value = u256{value};
  tx.gas_limit = 30'000;
  return tx;
}

TEST(NodeSchedule, TickRequiresSchedule) {
  NodeSimulator node;
  EXPECT_THROW(node.tick({}), UsageError);
}

TEST(NodeSchedule, DeterministicReplay) {
  // Two nodes with the same seed and the same per-tick transactions build
  // bit-identical chains, reorgs included.
  const ChainSchedule schedule{.seed = 42, .reorg_rate = 0.3, .max_reorg_depth = 3};
  NodeSimulator a, b;
  for (NodeSimulator* node : {&a, &b}) {
    node->world().set_balance(addr(1), u256{1} << 40);
    node->set_schedule(schedule);
  }
  for (int i = 0; i < 40; ++i) {
    const auto txs = {simple_transfer(1, 2, 10 + static_cast<uint64_t>(i))};
    const auto ra = a.tick(txs);
    const auto rb = b.tick(txs);
    EXPECT_EQ(ra.reorged, rb.reorged) << "tick " << i;
    EXPECT_EQ(ra.depth, rb.depth) << "tick " << i;
    EXPECT_EQ(ra.head.hash(), rb.head.hash()) << "tick " << i;
  }
  EXPECT_EQ(a.reorgs(), b.reorgs());
  EXPECT_GT(a.reorgs(), 0u);
  EXPECT_EQ(a.head().hash(), b.head().hash());
}

TEST(NodeSchedule, TickAdvancesHeadByOneEvenThroughReorgs) {
  NodeSimulator node;
  node.world().set_balance(addr(1), u256{1} << 40);
  node.set_schedule({.seed = 7, .reorg_rate = 1.0, .max_reorg_depth = 2});
  node.produce_block({simple_transfer(1, 2, 5)});
  const uint64_t start = node.head_number();
  for (int i = 0; i < 6; ++i) {
    const auto result = node.tick({simple_transfer(1, 2, 100 + static_cast<uint64_t>(i))});
    EXPECT_TRUE(result.reorged);
    EXPECT_EQ(node.head_number(), start + static_cast<uint64_t>(i) + 1);
  }
  EXPECT_EQ(node.reorgs(), 6u);
  EXPECT_GT(node.orphaned_blocks(), 0u);
}

TEST(NodeSchedule, ReorgOrphansRootButKeepsSnapshotAnswerable) {
  NodeSimulator node;
  node.world().set_balance(addr(1), u256{1} << 40);
  node.set_schedule({.seed = 3, .reorg_rate = 1.0, .max_reorg_depth = 1});
  const BlockHeader doomed = node.produce_block({simple_transfer(1, 2, 50)});
  ASSERT_TRUE(node.is_canonical_root(doomed.state_root));

  // The forced reorg replaces `doomed` with a sibling running a different
  // transaction, so the fork's state genuinely diverges.
  const auto result = node.tick({simple_transfer(1, 3, 51)});
  ASSERT_TRUE(result.reorged);
  EXPECT_FALSE(node.is_canonical_root(doomed.state_root));
  EXPECT_TRUE(node.is_canonical_root(node.head().state_root));

  // The orphaned snapshot is still pinned and still proves its own history:
  // the trusted side discovers the orphaning, it does not lose the data.
  const auto old_world = node.world_at(doomed.state_root);
  ASSERT_NE(old_world, nullptr);
  EXPECT_EQ(old_world->account(addr(2))->balance, u256{50});
  const auto response = node.fetch_account(addr(2), doomed.state_root);
  const auto check = trie::MerklePatriciaTrie::verify_proof(
      doomed.state_root, crypto::keccak256(addr(2).view()).view(), response.proof);
  EXPECT_TRUE(check.valid);
  // While the new canonical chain never credited addr(2).
  EXPECT_EQ(node.world().storage(addr(2), u256{}), u256{});
  EXPECT_FALSE(node.world().account(addr(2)).has_value());
}

TEST(NodeSchedule, PinnedQueriesUnknownRootFailClosed) {
  NodeSimulator node;
  node.produce_block({});
  const H256 bogus = crypto::keccak256("never a block");
  EXPECT_EQ(node.world_at(bogus), nullptr);
  const auto response = node.fetch_account(addr(1), bogus);
  EXPECT_TRUE(response.proof.empty());  // empty proof: verification rejects
  const auto check = trie::MerklePatriciaTrie::verify_proof(
      bogus, crypto::keccak256(addr(1).view()).view(), response.proof);
  EXPECT_FALSE(check.valid);
}

TEST(NodeSchedule, PinnedHeadSeesSetupMutations) {
  // Test/bench setup mutates world() after construction; pinned_head() must
  // re-pin genesis to that state instead of the empty construction-time one.
  NodeSimulator node;
  node.world().set_balance(addr(9), u256{123});
  const PinnedBlock pin = node.pinned_head();
  ASSERT_NE(pin.world, nullptr);
  EXPECT_EQ(pin.header.state_root, node.world().state_root());
  EXPECT_EQ(pin.world->account(addr(9))->balance, u256{123});
}

class SyncTest : public ::testing::Test {
 protected:
  SyncTest()
      : server_(oram::OramConfig{.block_size = oram::kPageSize, .capacity = 512}),
        client_(server_, key(), 3, oram::SealMode::kChaChaHmac) {
    node_.world().set_balance(addr(1), u256{777});
    node_.world().set_code(addr(2), workload::erc20_code());
    node_.world().set_storage(addr(2), u256{5}, u256{55});
    node_.world().set_storage(addr(2), u256{37}, u256{3737});
    node_.produce_block({});
  }

  NodeSimulator node_;
  oram::OramServer server_;
  oram::OramClient client_;
};

TEST_F(SyncTest, HonestNodeSyncsAndServes) {
  BlockSynchronizer sync(node_, node_.head().state_root);
  ASSERT_EQ(sync.sync_all(client_), Status::kOk);
  EXPECT_EQ(sync.verified_accounts(), 2u);
  EXPECT_EQ(sync.verified_slots(), 2u);
  EXPECT_GT(sync.installed_pages(), 3u);

  // The installed pages serve correct data through the ORAM.
  oram::OramWorldState oram_state(client_);
  EXPECT_EQ(oram_state.account(addr(1))->balance, u256{777});
  EXPECT_EQ(oram_state.storage(addr(2), u256{5}), u256{55});
  EXPECT_EQ(oram_state.storage(addr(2), u256{37}), u256{3737});
  EXPECT_EQ(oram_state.code(addr(2)), node_.world().code(addr(2)));
}

TEST_F(SyncTest, DishonestNodeRejected) {
  node_.set_dishonest(true);
  BlockSynchronizer sync(node_, node_.head().state_root);
  EXPECT_EQ(sync.sync_account(addr(1), {}, client_), Status::kBadProof);
  // Nothing was installed.
  oram::OramWorldState oram_state(client_);
  EXPECT_FALSE(oram_state.account(addr(1)).has_value());
}

TEST_F(SyncTest, DishonestStorageRejected) {
  node_.set_dishonest(true);
  BlockSynchronizer sync(node_, node_.head().state_root);
  EXPECT_EQ(sync.sync_account(addr(2), {u256{5}}, client_), Status::kBadProof);
}

TEST_F(SyncTest, WrongTrustedRootRejectsEverything) {
  BlockSynchronizer sync(node_, crypto::keccak256("some other chain"));
  EXPECT_EQ(sync.sync_account(addr(1), {}, client_), Status::kBadProof);
}

TEST_F(SyncTest, AbsentAccountSyncsAsAbsent) {
  BlockSynchronizer sync(node_, node_.head().state_root);
  EXPECT_EQ(sync.sync_account(addr(0x99), {}, client_), Status::kOk);
  oram::OramWorldState oram_state(client_);
  const auto account = oram_state.account(addr(0x99));
  // Installed as an empty-meta page: balance zero, no code.
  ASSERT_TRUE(account.has_value());
  EXPECT_EQ(account->balance, u256{});
}

// Fail-closed regression (PR 4 satellite): a proof failure on the SECOND
// storage group must leave the ORAM without ANYTHING from that account —
// not even the already-verified meta page or first group. A partial install
// would mix verified and unverifiable state under one account.
TEST_F(SyncTest, StorageGroupProofFailureInstallsNothingFromAccount) {
  BlockSynchronizer sync(node_, node_.head().state_root);
  // Keys {5, 37} span storage groups 0 and 1; corrupt only group 1's proof.
  sync.set_storage_proof_tamper(
      [](const Address&, const u256& key) { return key == u256{37}; });
  EXPECT_EQ(sync.sync_account(addr(2), {u256{5}, u256{37}}, client_),
            Status::kBadProof);
  oram::OramWorldState oram_state(client_);
  EXPECT_FALSE(oram_state.account(addr(2)).has_value());
  EXPECT_EQ(oram_state.storage(addr(2), u256{5}), u256{});
  EXPECT_EQ(sync.installed_pages(), 0u);
}

// --- incremental (delta) sync + epoch tagging (PR 4 tentpole) ---

class DeltaSyncTest : public ::testing::Test {
 protected:
  DeltaSyncTest()
      : server_(oram::OramConfig{.block_size = oram::kPageSize, .capacity = 1024}),
        client_(server_, key(), 11, oram::SealMode::kChaChaHmac) {
    node_.world().set_balance(addr(1), u256{1} << 40);
    node_.world().set_code(addr(0x10), workload::erc20_code());
    node_.world().set_storage(addr(0x10), addr(1).to_u256(), u256{1000});
    // A slot in a far-away group the delta must NOT have to re-verify.
    node_.world().set_storage(addr(0x10), u256{200}, u256{77});
    node_.produce_block({});

    BlockSynchronizer sync(node_, node_.head().state_root);
    registry_.begin(node_.head().state_root, node_.head().number);
    sync.set_epoch_registry(&registry_);
    EXPECT_EQ(sync.sync_all(client_), Status::kOk);
    registry_.commit();
    old_root_ = node_.head().state_root;
    old_world_ = node_.world_at(old_root_);

    // Block 2: an ERC20 transfer rewrites slots 1 and 2 (both in group 0).
    evm::Transaction tx;
    tx.from = addr(1);
    tx.to = addr(0x10);
    tx.data = workload::erc20_transfer(addr(2), u256{400});
    tx.gas_limit = 500'000;
    node_.produce_block({tx});
  }

  NodeSimulator node_;
  oram::OramServer server_;
  oram::OramClient client_;
  oram::EpochRegistry registry_;
  H256 old_root_;
  std::shared_ptr<const state::WorldState> old_world_;
};

TEST_F(DeltaSyncTest, DeltaReverifiesOnlyChangesAndServesNewState) {
  BlockSynchronizer delta(node_, node_.head().state_root);
  registry_.begin(node_.head().state_root, node_.head().number);
  delta.set_epoch_registry(&registry_);
  BlockSynchronizer::DeltaReport report;
  ASSERT_EQ(delta.sync_delta(*old_world_, client_, &report), Status::kOk);
  registry_.commit();

  EXPECT_GE(report.accounts_changed, 1u);
  // Only the changed group's slots were re-proven; the untouched group-6
  // slot (key 200) was not.
  EXPECT_EQ(report.slots_reverified, 2u);
  EXPECT_GT(report.pages_installed, 0u);

  oram::OramWorldState oram_state(client_);
  EXPECT_EQ(oram_state.storage(addr(0x10), addr(1).to_u256()), u256{600});
  EXPECT_EQ(oram_state.storage(addr(0x10), addr(2).to_u256()), u256{400});
  // Untouched pages survive at their older epoch and still serve.
  EXPECT_EQ(oram_state.storage(addr(0x10), u256{200}), u256{77});

  // Epoch accounting: the second pass advanced the store epoch, and no page
  // claims an epoch newer than it.
  EXPECT_EQ(registry_.store_epoch(), 1u);
  EXPECT_LE(registry_.max_page_epoch(), registry_.store_epoch());
  const auto group0 =
      oram::page_id(oram::PageType::kStorageGroup, addr(0x10), u256{});
  EXPECT_EQ(registry_.page_epoch(group0).value(), 1u);
  const auto group6 =
      oram::page_id(oram::PageType::kStorageGroup, addr(0x10), u256{6});
  EXPECT_EQ(registry_.page_epoch(group6).value(), 0u);
}

TEST_F(DeltaSyncTest, MidDeltaProofFailureInstallsNothing) {
  BlockSynchronizer delta(node_, node_.head().state_root);
  // Accounts are processed in address order, so addr(1)'s meta verifies and
  // stages BEFORE the token's storage proof fails — atomicity means even
  // that already-verified page must not land.
  delta.set_storage_proof_tamper(
      [](const Address&, const u256& key) { return key == addr(2).to_u256(); });
  EXPECT_EQ(delta.sync_delta(*old_world_, client_), Status::kBadProof);

  oram::OramWorldState oram_state(client_);
  // The store still serves the OLD state, wholesale: fail closed.
  EXPECT_EQ(oram_state.storage(addr(0x10), addr(1).to_u256()), u256{1000});
  EXPECT_EQ(oram_state.storage(addr(0x10), addr(2).to_u256()), u256{});
  EXPECT_EQ(oram_state.account(addr(1))->nonce, old_world_->account(addr(1))->nonce);
}

TEST_F(DeltaSyncTest, DeltaAgainstUnknownRootIsNotFound) {
  BlockSynchronizer delta(node_, crypto::keccak256("no such block"));
  EXPECT_EQ(delta.sync_delta(*old_world_, client_), Status::kNotFound);
}

TEST(EpochRegistry, TracksPassesAndPageTags) {
  oram::EpochRegistry reg;
  EXPECT_EQ(reg.store_epoch(), 0u);
  EXPECT_FALSE(reg.current().has_value());

  reg.begin(crypto::keccak256("r0"), 1);
  EXPECT_THROW(reg.begin(crypto::keccak256("r1"), 2), UsageError);
  reg.tag(u256{1});
  reg.tag(u256{2});
  reg.commit();
  EXPECT_EQ(reg.store_epoch(), 0u);
  EXPECT_EQ(reg.current()->block_number, 1u);

  reg.begin(crypto::keccak256("r1"), 2);
  reg.tag(u256{2});
  reg.commit();
  EXPECT_EQ(reg.store_epoch(), 1u);
  EXPECT_EQ(reg.page_epoch(u256{1}).value(), 0u);  // untouched: older tag
  EXPECT_EQ(reg.page_epoch(u256{2}).value(), 1u);  // re-installed: new tag
  EXPECT_FALSE(reg.page_epoch(u256{9}).has_value());
  EXPECT_EQ(reg.max_page_epoch(), reg.store_epoch());
  EXPECT_EQ(reg.distinct_pages(), 2u);
  EXPECT_EQ(reg.pages_tagged(), 3u);
  EXPECT_EQ(reg.at(0)->state_root, crypto::keccak256("r0"));
  EXPECT_THROW(reg.tag(u256{3}), UsageError);  // no pass open
}

TEST(SyncIntegration, FullWorkloadWorldSyncs) {
  // End-to-end: deploy the full workload population, produce a block, sync
  // everything, and spot-check through the ORAM.
  NodeSimulator node;
  workload::WorkloadGenerator gen(workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 1});
  gen.deploy(node.world());
  node.produce_block({});

  oram::OramServer server(
      oram::OramConfig{.block_size = oram::kPageSize, .capacity = 2048});
  oram::OramClient client(server, key(), 5, oram::SealMode::kChaChaHmac);
  BlockSynchronizer sync(node, node.head().state_root);
  ASSERT_EQ(sync.sync_all(client), Status::kOk);

  oram::OramWorldState oram_state(client);
  const Address& token = gen.tokens()[0];
  const Address& user = gen.users()[0];
  EXPECT_EQ(oram_state.storage(token, user.to_u256()),
            node.world().storage(token, user.to_u256()));
  EXPECT_EQ(oram_state.code(token), node.world().code(token));
}

}  // namespace
}  // namespace hardtape::node
