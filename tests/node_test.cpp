// Node simulator and block-synchronization tests (threat A6: fake on-chain
// data must be rejected at sync time).
#include <gtest/gtest.h>

#include "node/node.hpp"
#include "node/sync.hpp"
#include "workload/contracts.hpp"
#include "workload/generator.hpp"

namespace hardtape::node {
namespace {

Address addr(uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

crypto::AesKey128 key() {
  crypto::AesKey128 k{};
  k[5] = 9;
  return k;
}

TEST(Node, GenesisChain) {
  NodeSimulator node;
  EXPECT_EQ(node.chain().size(), 1u);
  EXPECT_EQ(node.head().number, 0u);
}

TEST(Node, ProduceBlockAdvancesChainAndState) {
  NodeSimulator node;
  node.world().set_balance(addr(1), u256{1'000'000});
  evm::Transaction tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = u256{500};
  tx.gas_limit = 30'000;
  tx.gas_price = u256{};

  const H256 root_before = node.world().state_root();
  const BlockHeader header = node.produce_block({tx});
  EXPECT_EQ(header.number, 1u);
  EXPECT_EQ(node.head().number, 1u);
  EXPECT_NE(header.state_root, root_before);
  EXPECT_EQ(header.parent_hash, node.chain()[0].hash());
  EXPECT_EQ(node.world().account(addr(2))->balance, u256{500});
  ASSERT_EQ(node.last_receipts().size(), 1u);
  EXPECT_EQ(node.last_receipts()[0].status, evm::VmStatus::kSuccess);
  // Mainnet cadence.
  EXPECT_EQ(header.timestamp, node.chain()[0].timestamp + 12);
}

TEST(Node, BlockExecutionCommitsContractEffects) {
  NodeSimulator node;
  node.world().set_balance(addr(1), u256{1} << 64);
  node.world().set_code(addr(0x10), workload::erc20_code());
  node.world().set_storage(addr(0x10), addr(1).to_u256(), u256{1000});

  evm::Transaction tx;
  tx.from = addr(1);
  tx.to = addr(0x10);
  tx.data = workload::erc20_transfer(addr(2), u256{400});
  tx.gas_limit = 500'000;
  tx.gas_price = u256{};
  node.produce_block({tx});
  EXPECT_EQ(node.world().storage(addr(0x10), addr(2).to_u256()), u256{400});
  EXPECT_EQ(node.world().storage(addr(0x10), addr(1).to_u256()), u256{600});
}

TEST(Node, HeaderHashCoversContents) {
  BlockHeader a;
  a.number = 5;
  BlockHeader b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.gas_used = 1;
  EXPECT_NE(a.hash(), b.hash());
}

class SyncTest : public ::testing::Test {
 protected:
  SyncTest()
      : server_(oram::OramConfig{.block_size = oram::kPageSize, .capacity = 512}),
        client_(server_, key(), 3, oram::SealMode::kChaChaHmac) {
    node_.world().set_balance(addr(1), u256{777});
    node_.world().set_code(addr(2), workload::erc20_code());
    node_.world().set_storage(addr(2), u256{5}, u256{55});
    node_.world().set_storage(addr(2), u256{37}, u256{3737});
    node_.produce_block({});
  }

  NodeSimulator node_;
  oram::OramServer server_;
  oram::OramClient client_;
};

TEST_F(SyncTest, HonestNodeSyncsAndServes) {
  BlockSynchronizer sync(node_, node_.head().state_root);
  ASSERT_EQ(sync.sync_all(client_), Status::kOk);
  EXPECT_EQ(sync.verified_accounts(), 2u);
  EXPECT_EQ(sync.verified_slots(), 2u);
  EXPECT_GT(sync.installed_pages(), 3u);

  // The installed pages serve correct data through the ORAM.
  oram::OramWorldState oram_state(client_);
  EXPECT_EQ(oram_state.account(addr(1))->balance, u256{777});
  EXPECT_EQ(oram_state.storage(addr(2), u256{5}), u256{55});
  EXPECT_EQ(oram_state.storage(addr(2), u256{37}), u256{3737});
  EXPECT_EQ(oram_state.code(addr(2)), node_.world().code(addr(2)));
}

TEST_F(SyncTest, DishonestNodeRejected) {
  node_.set_dishonest(true);
  BlockSynchronizer sync(node_, node_.head().state_root);
  EXPECT_EQ(sync.sync_account(addr(1), {}, client_), Status::kBadProof);
  // Nothing was installed.
  oram::OramWorldState oram_state(client_);
  EXPECT_FALSE(oram_state.account(addr(1)).has_value());
}

TEST_F(SyncTest, DishonestStorageRejected) {
  node_.set_dishonest(true);
  BlockSynchronizer sync(node_, node_.head().state_root);
  EXPECT_EQ(sync.sync_account(addr(2), {u256{5}}, client_), Status::kBadProof);
}

TEST_F(SyncTest, WrongTrustedRootRejectsEverything) {
  BlockSynchronizer sync(node_, crypto::keccak256("some other chain"));
  EXPECT_EQ(sync.sync_account(addr(1), {}, client_), Status::kBadProof);
}

TEST_F(SyncTest, AbsentAccountSyncsAsAbsent) {
  BlockSynchronizer sync(node_, node_.head().state_root);
  EXPECT_EQ(sync.sync_account(addr(0x99), {}, client_), Status::kOk);
  oram::OramWorldState oram_state(client_);
  const auto account = oram_state.account(addr(0x99));
  // Installed as an empty-meta page: balance zero, no code.
  ASSERT_TRUE(account.has_value());
  EXPECT_EQ(account->balance, u256{});
}

TEST(SyncIntegration, FullWorkloadWorldSyncs) {
  // End-to-end: deploy the full workload population, produce a block, sync
  // everything, and spot-check through the ORAM.
  NodeSimulator node;
  workload::WorkloadGenerator gen(workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 1});
  gen.deploy(node.world());
  node.produce_block({});

  oram::OramServer server(
      oram::OramConfig{.block_size = oram::kPageSize, .capacity = 2048});
  oram::OramClient client(server, key(), 5, oram::SealMode::kChaChaHmac);
  BlockSynchronizer sync(node, node.head().state_root);
  ASSERT_EQ(sync.sync_all(client), Status::kOk);

  oram::OramWorldState oram_state(client);
  const Address& token = gen.tokens()[0];
  const Address& user = gen.users()[0];
  EXPECT_EQ(oram_state.storage(token, user.to_u256()),
            node.world().storage(token, user.to_u256()));
  EXPECT_EQ(oram_state.code(token), node.world().code(token));
}

}  // namespace
}  // namespace hardtape::node
