// Tests for the recursive position map ORAM (paper §II-C).
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "oram/recursive.hpp"

namespace hardtape::oram {
namespace {

crypto::AesKey128 key() {
  crypto::AesKey128 k{};
  k[7] = 0x55;
  return k;
}

RecursiveOramConfig small_config() {
  return RecursiveOramConfig{.block_size = 64,
                             .capacity = 512,
                             .bucket_capacity = 4,
                             .max_stash_blocks = 256,
                             .map_entries_per_block = 32};
}

TEST(RecursiveOram, WriteReadRoundTrip) {
  RecursiveOramClient client(small_config(), key(), 11);
  client.write(7, Bytes{1, 2, 3});
  const auto back = client.read(7);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::equal(back->begin(), back->begin() + 3, Bytes{1, 2, 3}.begin()));
  EXPECT_FALSE(client.read(8).has_value());
}

TEST(RecursiveOram, EveryOperationCostsOneMapPlusOneDataAccess) {
  RecursiveOramClient client(small_config(), key(), 3);
  const uint64_t d0 = client.data_accesses();
  const uint64_t m0 = client.map_accesses();
  client.write(1, Bytes{1});
  EXPECT_EQ(client.data_accesses(), d0 + 1);
  EXPECT_EQ(client.map_accesses(), m0 + 1);
  client.read(1);
  EXPECT_EQ(client.data_accesses(), d0 + 2);
  EXPECT_EQ(client.map_accesses(), m0 + 2);
  // Miss costs exactly the same as a hit (uniform by construction).
  client.read(2);
  EXPECT_EQ(client.data_accesses(), d0 + 3);
  EXPECT_EQ(client.map_accesses(), m0 + 3);
}

TEST(RecursiveOram, OnchipStateIsSmall) {
  // The whole point of recursion: the on-chip position map covers only the
  // map ORAM's (capacity/entries_per_block) blocks, not all data blocks.
  RecursiveOramClient client(small_config(), key(), 5);
  for (uint64_t i = 0; i < 256; ++i) client.write(i, Bytes{static_cast<uint8_t>(i)});
  EXPECT_LE(client.onchip_position_entries(), 512u / 32 + 1);
  EXPECT_LT(client.stash_high_water(), 64u);
}

TEST(RecursiveOram, SurvivesChurn) {
  RecursiveOramClient client(small_config(), key(), 17);
  Random rng(8);
  std::unordered_map<uint64_t, uint8_t> expected;
  for (uint64_t i = 0; i < 128; ++i) {
    const auto v = static_cast<uint8_t>(rng.next_u64());
    client.write(i, Bytes{v});
    expected[i] = v;
  }
  for (int round = 0; round < 400; ++round) {
    const uint64_t i = rng.uniform(128);
    if (rng.uniform(2) == 0) {
      const auto v = static_cast<uint8_t>(rng.next_u64());
      client.write(i, Bytes{v});
      expected[i] = v;
    } else {
      const auto back = client.read(i);
      ASSERT_TRUE(back.has_value()) << "lost block " << i << " at round " << round;
      ASSERT_EQ((*back)[0], expected[i]) << "stale block " << i;
    }
  }
  for (const auto& [i, v] : expected) {
    const auto back = client.read(i);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ((*back)[0], v);
  }
}

TEST(RecursiveOram, BothTreesObserveUniformPaths) {
  RecursiveOramClient client(small_config(), key(), 23);
  client.write(1, Bytes{1});
  // Hammer one block; both the map tree and the data tree must show spread
  // (not fixed) leaf sequences.
  for (int i = 0; i < 300; ++i) client.read(1);
  auto spread = [](const std::vector<uint64_t>& leaves) {
    std::unordered_map<uint64_t, int> histogram;
    for (uint64_t leaf : leaves) histogram[leaf]++;
    return histogram.size();
  };
  EXPECT_GT(spread(client.data_server().observed_leaves()), 50u);
  // The map block for index 1 is also remapped on every access.
  EXPECT_GT(spread(client.map_server().observed_leaves()), 20u);
}

TEST(RecursiveOram, RejectsBadUsage) {
  RecursiveOramClient client(small_config(), key(), 1);
  EXPECT_THROW(client.read(512), UsageError);
  EXPECT_THROW(client.write(512, Bytes{1}), UsageError);
  EXPECT_THROW(client.write(1, Bytes(65, 0)), UsageError);
}

}  // namespace
}  // namespace hardtape::oram
