// Tests for the 3-layer memory model: L1 LRU partitions, the L2 call-stack
// ring pager with noisy swaps (threat A5), and AES-GCM-sealed L3 (threat A4).
#include <gtest/gtest.h>

#include <cmath>

#include "evm/assembler.hpp"
#include "evm/interpreter.hpp"
#include "memlayer/observer.hpp"

namespace hardtape::memlayer {
namespace {

crypto::AesKey128 session_key() {
  crypto::AesKey128 key{};
  key[0] = 0x42;
  return key;
}

// --- Layer 3 ---

TEST(Layer3, StoreLoadRoundTrip) {
  Layer3Memory l3(session_key(), 1);
  const Bytes page(1024, 0xab);
  l3.store(7, page);
  const auto back = l3.load(7);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, page);
  EXPECT_FALSE(l3.load(8).has_value());
  EXPECT_EQ(l3.page_count(), 1u);
}

TEST(Layer3, TamperDetected) {
  Layer3Memory l3(session_key(), 1);
  l3.store(1, Bytes(64, 1));
  ASSERT_TRUE(l3.tamper(1));
  EXPECT_FALSE(l3.load(1).has_value());  // A4: modification detected
}

TEST(Layer3, ReplayAcrossSlotsDetected) {
  // A sealed page moved to a different slot must fail authentication
  // because the slot number is bound as AAD.
  Layer3Memory l3(session_key(), 1);
  l3.store(1, Bytes(64, 1));
  ASSERT_TRUE(l3.replay(1, 2));
  EXPECT_TRUE(l3.load(1).has_value());
  EXPECT_FALSE(l3.load(2).has_value());
}

TEST(Layer3, DifferentSessionKeysCannotRead) {
  Layer3Memory l3a(session_key(), 1);
  l3a.store(1, Bytes(64, 1));
  // Simulate an adversary with last session's pages and a fresh key: the
  // overwrite uses a new key, the old sealed page cannot be faked. (We model
  // by loading through a pager with a different key below; here just confirm
  // erase.)
  l3a.erase(1);
  EXPECT_FALSE(l3a.load(1).has_value());
}

// --- Pager ---

MemLayerConfig small_config(size_t l2_pages = 16, size_t noise = 4, uint64_t seed = 9) {
  MemLayerConfig config;
  config.page_size = 1024;
  config.l2_bytes = l2_pages * 1024;
  config.max_noise_pages = noise;
  config.rng_seed = seed;
  return config;
}

TEST(Pager, FramesFitWithoutSwapping) {
  CallStackPager pager(small_config(), session_key());
  EXPECT_EQ(pager.push_frame(3), Status::kOk);
  EXPECT_EQ(pager.push_frame(4), Status::kOk);
  EXPECT_EQ(pager.depth(), 2);
  EXPECT_EQ(pager.total_pages(), 7u);
  EXPECT_TRUE(pager.swap_events().empty());
  pager.pop_frame();
  EXPECT_EQ(pager.total_pages(), 3u);
}

TEST(Pager, OverflowRuleAtHalfCapacity) {
  CallStackPager pager(small_config(16), session_key());
  // Limit is l2_pages/2 = 8: a single frame of 8+ pages is an attack.
  EXPECT_EQ(pager.push_frame(8), Status::kMemoryOverflow);
  EXPECT_EQ(pager.push_frame(7), Status::kOk);
  EXPECT_EQ(pager.grow_frame(8), Status::kMemoryOverflow);
  EXPECT_EQ(pager.grow_frame(7), Status::kOk);
}

TEST(Pager, DeepStackSpillsBottomPages) {
  CallStackPager pager(small_config(16, /*noise=*/0), session_key());
  for (int i = 0; i < 5; ++i) ASSERT_EQ(pager.push_frame(4), Status::kOk);
  // 20 pages total, 16 resident max -> at least 4 spilled.
  EXPECT_GE(pager.swapped_pages(), 4u);
  EXPECT_LE(pager.resident_pages(), 16u);
  EXPECT_FALSE(pager.swap_events().empty());
  EXPECT_EQ(pager.swap_events()[0].kind, SwapEvent::Kind::kEvict);
  // Current frame always fully resident.
  EXPECT_EQ(pager.current_frame_pages(), 4u);
}

TEST(Pager, ReturnReloadsCallerPages) {
  CallStackPager pager(small_config(16, 0), session_key());
  for (int i = 0; i < 5; ++i) ASSERT_EQ(pager.push_frame(4), Status::kOk);
  const size_t spilled = pager.swapped_pages();
  ASSERT_GT(spilled, 0u);
  // Popping all the way back must reload everything (invariant: the top
  // frame is always fully on-chip).
  while (pager.depth() > 0) pager.pop_frame();
  EXPECT_EQ(pager.swapped_pages(), 0u);
  EXPECT_EQ(pager.layer3().page_count(), 0u);
  EXPECT_EQ(pager.total_loaded_pages(), pager.total_evicted_pages());
}

TEST(Pager, GrowTriggersSwap) {
  CallStackPager pager(small_config(16, 0), session_key());
  ASSERT_EQ(pager.push_frame(6), Status::kOk);
  ASSERT_EQ(pager.push_frame(6), Status::kOk);
  ASSERT_EQ(pager.push_frame(2), Status::kOk);  // 14 resident
  ASSERT_EQ(pager.grow_frame(7), Status::kOk);  // 19 total -> 3 spilled
  EXPECT_EQ(pager.swapped_pages(), 3u);
  EXPECT_EQ(pager.current_frame_pages(), 7u);
}

TEST(Pager, NoiseDecorrelatesObservedSwapSizes) {
  // Two bundles with *identical* true frame sizes but different RNG seeds
  // must produce different observed swap-size sequences, and the noise
  // component must actually be nonzero somewhere.
  auto run_with_seed = [](uint64_t seed) {
    CallStackPager pager(small_config(16, 6, seed), session_key());
    for (int i = 0; i < 6; ++i) EXPECT_EQ(pager.push_frame(4), Status::kOk);
    while (pager.depth() > 0) pager.pop_frame();
    std::vector<uint64_t> observed;
    uint64_t total_noise = 0;
    for (const SwapEvent& e : pager.swap_events()) {
      observed.push_back(e.pages);
      total_noise += e.noise_pages;
    }
    return std::pair(observed, total_noise);
  };
  const auto [seq1, noise1] = run_with_seed(1);
  const auto [seq2, noise2] = run_with_seed(2);
  const auto [seq3, noise3] = run_with_seed(3);
  EXPECT_TRUE(seq1 != seq2 || seq2 != seq3) << "swap sizes fully determined by frame sizes";
  EXPECT_GT(noise1 + noise2 + noise3, 0u);
}

TEST(Pager, NoiseNeverEvictsCurrentFrame) {
  // Property sweep: under heavy churn the current frame must stay resident
  // and accounting must balance.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    CallStackPager pager(small_config(16, 8, seed), session_key());
    Random action_rng(seed * 31 + 7);
    for (int step = 0; step < 200; ++step) {
      const uint64_t action = action_rng.uniform(3);
      if (action == 0 || pager.depth() == 0) {
        ASSERT_EQ(pager.push_frame(1 + action_rng.uniform(6)), Status::kOk);
      } else if (action == 1) {
        const size_t grown = pager.current_frame_pages() + action_rng.uniform(3);
        if (grown < pager.config().frame_page_limit()) {
          ASSERT_EQ(pager.grow_frame(grown), Status::kOk);
        }
      } else {
        pager.pop_frame();
      }
      ASSERT_LE(pager.resident_pages(), pager.config().l2_pages());
      ASSERT_EQ(pager.swapped_pages(), pager.layer3().page_count());
      if (pager.depth() > 0) {
        // Invariant: top frame entirely resident.
        ASSERT_GE(pager.resident_pages(), pager.current_frame_pages());
      }
    }
  }
}

TEST(Pager, ResetClearsEverything) {
  CallStackPager pager(small_config(), session_key());
  ASSERT_EQ(pager.push_frame(4), Status::kOk);
  pager.reset();
  EXPECT_EQ(pager.depth(), 0);
  EXPECT_EQ(pager.total_pages(), 0u);
  EXPECT_TRUE(pager.swap_events().empty());
}

TEST(Pager, UsageErrors) {
  CallStackPager pager(small_config(), session_key());
  EXPECT_THROW(pager.pop_frame(), UsageError);
  EXPECT_THROW(pager.grow_frame(1), UsageError);
  MemLayerConfig tiny;
  tiny.l2_bytes = 1024;
  EXPECT_THROW(CallStackPager(tiny, session_key()), UsageError);
}

// --- L1 cache ---

TEST(L1Cache, LruEviction) {
  LruPageCache cache(2);
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
  EXPECT_TRUE(cache.access(1));   // hit, promotes 1
  EXPECT_FALSE(cache.access(3));  // evicts 2
  EXPECT_FALSE(cache.access(2));  // miss again
  EXPECT_TRUE(cache.access(3));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(L1Cache, PaperPartitionSizes) {
  const L1Config config;
  EXPECT_EQ(config.code_pages(), 64u);
  EXPECT_EQ(config.memlike_pages(), 4u);
  EXPECT_EQ(config.worldstate_records, 64u);
}

// --- end-to-end with the interpreter ---

TEST(MemLayerObserver, TracksRealExecution) {
  state::InMemoryState base;
  Address contract;
  contract.bytes[19] = 0xCC;
  Address caller;
  caller.bytes[19] = 0xAA;
  // A loop writing 6 KB of memory: forces L1 Memory-partition misses (4 KB
  // partition) and layer-2 growth.
  base.put_code(contract, evm::assemble(R"(
    PUSH0
  loop:
    JUMPDEST
    DUP1 DUP1 MSTORE        ; mem[i] = i
    PUSH1 0x20 ADD
    DUP1 PUSH2 0x1800 GT    ; i < 6144 ?
    PUSH @loop JUMPI
    STOP
  )"));
  state::OverlayState overlay(base);
  evm::Interpreter interp(overlay, evm::BlockContext{});

  MemLayerObserver mem({}, MemLayerConfig{.rng_seed = 5}, session_key());
  interp.set_observer(&mem);

  evm::Interpreter::Message msg;
  msg.code_address = contract;
  msg.recipient = contract;
  msg.sender = caller;
  msg.gas = 1'000'000;
  msg.depth = 1;
  const auto result = interp.call(msg);
  EXPECT_EQ(result.status, evm::VmStatus::kSuccess);

  EXPECT_EQ(mem.stats().frames_entered, 1u);
  EXPECT_GT(mem.stats().l1_hits, 0u);
  EXPECT_GT(mem.stats().l1_misses, 0u);
  // 6 KB frame memory -> at least 7 pages in the current frame.
  EXPECT_GE(mem.pager().peak_total_pages(), 7u);
  mem.reset();
  EXPECT_EQ(mem.pager().depth(), 0);
}

TEST(MemLayerObserver, NestedCallsBalanceFrames) {
  state::InMemoryState base;
  Address a, b, caller;
  a.bytes[19] = 0x11;
  b.bytes[19] = 0x12;
  caller.bytes[19] = 0xAA;
  base.put_code(b, evm::assemble("PUSH1 1 PUSH1 0 MSTORE STOP"));
  base.put_code(a, evm::assemble(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH20 0x0000000000000000000000000000000000000012
    PUSH3 0xffffff
    CALL
    STOP
  )"));
  state::OverlayState overlay(base);
  evm::Interpreter interp(overlay, evm::BlockContext{});
  MemLayerObserver mem({}, MemLayerConfig{.rng_seed = 6}, session_key());
  interp.set_observer(&mem);

  evm::Interpreter::Message msg;
  msg.code_address = a;
  msg.recipient = a;
  msg.sender = caller;
  msg.gas = 1'000'000;
  msg.depth = 1;
  EXPECT_EQ(interp.call(msg).status, evm::VmStatus::kSuccess);
  EXPECT_EQ(mem.stats().frames_entered, 2u);
  EXPECT_EQ(mem.pager().depth(), 0);  // all frames popped
}

}  // namespace
}  // namespace hardtape::memlayer
