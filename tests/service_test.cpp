// End-to-end integration tests of the pre-execution service (paper Fig. 3).
#include <gtest/gtest.h>

#include "service/pre_execution.hpp"
#include "workload/generator.hpp"

namespace hardtape::service {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() {
    gen_.deploy(node_.world());
    node_.produce_block({});
  }

  PreExecutionService::Config make_config(SecurityConfig security) {
    PreExecutionService::Config config;
    config.security = security;
    config.oram = oram::OramConfig{.block_size = oram::kPageSize, .capacity = 4096};
    config.seal_mode = oram::SealMode::kChaChaHmac;
    config.perform_channel_crypto = false;  // keep tests fast; crypto has its own tests
    return config;
  }

  std::vector<evm::Transaction> small_bundle() {
    evm::Transaction tx;
    tx.from = gen_.users()[0];
    tx.to = gen_.tokens()[0];
    tx.data = workload::erc20_transfer(gen_.users()[1], u256{10});
    tx.gas_limit = 500'000;
    return {tx};
  }

  node::NodeSimulator node_;
  workload::WorkloadGenerator gen_{workload::GeneratorConfig{
      .user_accounts = 8, .erc20_contracts = 2, .dex_pairs = 1, .routers = 1}};
};

TEST_F(ServiceTest, RawConfigExecutesBundle) {
  PreExecutionService service(node_, make_config(SecurityConfig::raw()));
  ASSERT_EQ(service.synchronize(), Status::kOk);
  const auto outcome = service.pre_execute(small_bundle());
  EXPECT_EQ(outcome.status, Status::kOk);
  ASSERT_EQ(outcome.report.transactions.size(), 1u);
  EXPECT_EQ(outcome.report.transactions[0].status, evm::VmStatus::kSuccess);
  EXPECT_GT(outcome.end_to_end_ns, 0u);
  EXPECT_EQ(outcome.query_stats.oram_queries, 0u);  // all local in -raw
  EXPECT_GT(outcome.query_stats.local_reads, 0u);
  EXPECT_EQ(outcome.crypto_time_ns, 0u);
}

TEST_F(ServiceTest, FullConfigRoutesThroughOram) {
  PreExecutionService service(node_, make_config(SecurityConfig::full()));
  ASSERT_EQ(service.synchronize(), Status::kOk);
  const auto outcome = service.pre_execute(small_bundle());
  EXPECT_EQ(outcome.status, Status::kOk);
  EXPECT_EQ(outcome.report.transactions[0].status, evm::VmStatus::kSuccess);
  EXPECT_GT(outcome.query_stats.kv_queries, 0u);
  EXPECT_GT(outcome.query_stats.code_queries, 0u);
  EXPECT_GT(outcome.query_stats.oram_time_ns, 0u);
  // The observed timeline covers all demand queries.
  EXPECT_EQ(outcome.observed_timeline.size(), outcome.query_stats.demand_timeline.size());
  // ORAM server actually served paths.
  EXPECT_GT(service.oram_server().access_count(), 0u);
}

TEST_F(ServiceTest, ResultsIdenticalAcrossConfigs) {
  // Security features must not change execution semantics: same traces,
  // same gas, same storage writes under -raw and -full.
  PreExecutionService raw_service(node_, make_config(SecurityConfig::raw()));
  PreExecutionService full_service(node_, make_config(SecurityConfig::full()));
  ASSERT_EQ(full_service.synchronize(), Status::kOk);

  const auto raw = raw_service.pre_execute(small_bundle());
  const auto full = full_service.pre_execute(small_bundle());
  ASSERT_EQ(raw.report.transactions.size(), full.report.transactions.size());
  const auto& r = raw.report.transactions[0];
  const auto& f = full.report.transactions[0];
  EXPECT_EQ(r.status, f.status);
  EXPECT_EQ(r.gas_used, f.gas_used);
  EXPECT_EQ(r.return_data, f.return_data);
  ASSERT_EQ(r.storage_writes.size(), f.storage_writes.size());
  for (size_t i = 0; i < r.storage_writes.size(); ++i) {
    EXPECT_EQ(r.storage_writes[i].value, f.storage_writes[i].value);
  }
}

TEST_F(ServiceTest, SecurityLaddersMonotonicallySlower) {
  // Fig. 4's qualitative shape: each added protection costs time.
  uint64_t previous = 0;
  for (const SecurityConfig config :
       {SecurityConfig::raw(), SecurityConfig::E(), SecurityConfig::ES(),
        SecurityConfig::ESO(), SecurityConfig::full()}) {
    PreExecutionService service(node_, make_config(config));
    ASSERT_EQ(service.synchronize(), Status::kOk);
    const auto outcome = service.pre_execute(small_bundle());
    EXPECT_EQ(outcome.status, Status::kOk) << config.name();
    EXPECT_GT(outcome.end_to_end_ns, previous)
        << config.name() << " not slower than the previous tier";
    previous = outcome.end_to_end_ns;
  }
}

TEST_F(ServiceTest, PreExecutionNeverPersists) {
  PreExecutionService service(node_, make_config(SecurityConfig::raw()));
  const H256 root_before = node_.world().state_root();
  service.pre_execute(small_bundle());
  EXPECT_EQ(node_.world().state_root(), root_before);
}

TEST_F(ServiceTest, BundleTransactionsShareState) {
  // Two transfers in one bundle: the second sees the first's effects.
  evm::Transaction tx1 = small_bundle()[0];
  evm::Transaction tx2 = tx1;
  PreExecutionService service(node_, make_config(SecurityConfig::raw()));
  const auto outcome = service.pre_execute({tx1, tx2});
  ASSERT_EQ(outcome.report.transactions.size(), 2u);
  EXPECT_EQ(outcome.report.transactions[1].status, evm::VmStatus::kSuccess);
  // Final balances show both transfers (20 total moved).
  bool found = false;
  for (const auto& write : outcome.report.transactions[1].storage_writes) {
    if (write.key == gen_.users()[1].to_u256()) {
      EXPECT_EQ(write.value, u256{1'000'000'020});  // pre-mint + 2 transfers
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ServiceTest, OramQueriesDominateFullConfigTime) {
  PreExecutionService service(node_, make_config(SecurityConfig::full()));
  ASSERT_EQ(service.synchronize(), Status::kOk);
  const auto outcome = service.pre_execute(small_bundle());
  // In -full, ORAM stalls should be the dominant execution component
  // (paper: "the performance bottleneck lies in the security features").
  EXPECT_GT(outcome.query_stats.oram_time_ns, outcome.hevm_time_ns / 2);
}

TEST_F(ServiceTest, RealChannelCryptoPath) {
  auto config = make_config(SecurityConfig::ES());
  config.perform_channel_crypto = true;
  PreExecutionService service(node_, config);
  const auto outcome = service.pre_execute(small_bundle());
  EXPECT_EQ(outcome.status, Status::kOk);
  EXPECT_GT(outcome.crypto_time_ns, 0u);
}

TEST_F(ServiceTest, DeepCallBundleThroughFullStack) {
  evm::Transaction tx;
  tx.from = gen_.users()[0];
  tx.to = gen_.routers()[0];
  tx.data = workload::router_route(4, gen_.tokens()[0], gen_.users()[2], u256{5});
  tx.gas_limit = 5'000'000;
  PreExecutionService service(node_, make_config(SecurityConfig::full()));
  ASSERT_EQ(service.synchronize(), Status::kOk);
  const auto outcome = service.pre_execute({tx});
  EXPECT_EQ(outcome.report.transactions[0].status, evm::VmStatus::kSuccess);
  // Multiple contracts' code fetched through the ORAM.
  EXPECT_GT(outcome.query_stats.code_queries, 2u);
}

TEST_F(ServiceTest, ThroughputFormula) {
  PreExecutionService service(node_, make_config(SecurityConfig::full()));
  // Paper §VI-D: 3 cores at 164 ms/tx ~= 18 tx/s.
  EXPECT_NEAR(service.throughput_tx_per_s(164'400'000), 18.2, 0.5);
}

}  // namespace
}  // namespace hardtape::service
